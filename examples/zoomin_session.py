"""Figure 3 scenario: zoom-in query processing over a prior result.

Reproduces both commands of Figure 3 against a refute/approve classifier
and a snippet instance:

* retrieve the *refuting* annotations on the tuples of a previous result
  (``ON NaiveBayesClass INDEX 1`` — index 1 is the "refute" label);
* retrieve the complete article attached to one tuple
  (``ON TextSummary INDEX 2``).

Also shows the result cache at work: the second zoom-in against the same
QID is a cache hit.
"""

from repro import InsightNotes
from repro.gate.render import render_result, render_zoomin


def main() -> None:
    notes = InsightNotes()
    notes.create_table("T", ["C1", "C2", "C3"])
    r1 = notes.insert("T", ("x", "y", 5))
    r2 = notes.insert("T", ("x", "y", 10))

    notes.define_classifier(
        "NaiveBayesClass",
        labels=["refute", "approve"],
        training=[
            ("value is wrong needs correction", "refute"),
            ("invalid experiment reject this entry", "refute"),
            ("needs verification before publishing", "refute"),
            ("confirmed by a second observer", "approve"),
            ("looks correct and consistent", "approve"),
            ("verified against the archive", "approve"),
        ],
    )
    notes.define_snippet("TextSummary", max_sentences=1)
    notes.link("NaiveBayesClass", "T")
    notes.link("TextSummary", "T")

    # Figure 3's annotations: one refuting note on r1, two on r2, several
    # approvals, plus two documents on r1.
    notes.add_annotation("value 5 is wrong", table="T", row_id=r1)
    notes.add_annotation("needs verification", table="T", row_id=r2)
    notes.add_annotation("invalid experiment", table="T", row_id=r2)
    for _ in range(6):
        notes.add_annotation("confirmed by a second observer looks correct",
                             table="T", row_id=r1)
    notes.add_annotation(
        "Experiment E measured the value repeatedly. The setup is described "
        "in the appendix. Results were stable across trials.",
        table="T", row_id=r1, document=True, title="Experiment E notes",
    )
    notes.add_annotation(
        "This Wikipedia article covers the measured quantity. It summarizes "
        "the standard methodology. See also the references section.",
        table="T", row_id=r1, document=True, title="Wikipedia article",
    )

    result = notes.query("SELECT C1, C2, C3 FROM T")
    print(render_result(result))
    print()

    # Figure 3(a): the refuting annotations on r1 and r2.
    zoom_a = notes.zoomin(
        f"ZOOMIN REFERENCE QID = {result.qid} WHERE C1 = 'x' "
        f"ON NaiveBayesClass INDEX 1"
    )
    print(render_zoomin(zoom_a))
    print()

    # Figure 3(b): the complete Wikipedia article attached to r1.
    zoom_b = notes.zoomin(
        f"ZOOMIN REFERENCE QID = {result.qid} WHERE C3 = 5 "
        f"ON TextSummary INDEX 2"
    )
    print(render_zoomin(zoom_b))
    full_article = zoom_b.matches[0].annotations[0]
    print()
    print("Full article body retrieved by the zoom-in:")
    print(" ", full_article.text)
    print()
    print(f"cache stats: {notes.cache.stats.hits} hits, "
          f"{notes.cache.stats.misses} misses")
    notes.close()


if __name__ == "__main__":
    main()
