"""Quickstart: annotate a table, query with summaries, zoom in.

Run with ``python examples/quickstart.py``.  Walks the smallest possible
InsightNotes workflow: one table, one classifier and one cluster instance,
a few annotations, a summary-carrying query, and a zoom-in back to the
raw annotation text.
"""

from repro import InsightNotes
from repro.gate.render import render_result, render_summaries, render_zoomin


def main() -> None:
    notes = InsightNotes()

    # 1. Base data.
    notes.create_table("birds", ["name", "species", "weight"])
    goose = notes.insert("birds", ("Swan Goose", "Anser cygnoides", 3.2))
    swan = notes.insert("birds", ("Mute Swan", "Cygnus olor", 10.5))

    # 2. Summary instances: a classifier trained on a few examples, and a
    #    content-similarity cluster.  Linking them to the table makes every
    #    annotation on a birds row flow into both summaries.
    notes.define_classifier(
        "ClassBird1",
        labels=["Behavior", "Disease", "Anatomy", "Other"],
        training=[
            ("observed feeding on stonewort beds at dawn", "Behavior"),
            ("seen foraging among pond weeds near the shore", "Behavior"),
            ("shows symptoms of avian influenza on the left wing", "Disease"),
            ("displays lesions consistent with avian pox", "Disease"),
            ("has an unusually large bill compared to the species norm", "Anatomy"),
            ("exhibits an elongated neck typical of older males", "Anatomy"),
            ("great sighting worth sharing with the group", "Other"),
            ("routine update for the monthly log", "Other"),
        ],
    )
    notes.link("ClassBird1", "birds")
    notes.define_cluster("SimCluster", threshold=0.3)
    notes.link("SimCluster", "birds")

    # 3. Annotations arrive; summaries update incrementally.
    notes.add_annotation("observed feeding on stonewort at dawn",
                         table="birds", row_id=goose, author="aria")
    notes.add_annotation("seen feeding on stonewort beds again",
                         table="birds", row_id=goose, author="ben")
    notes.add_annotation("shows symptoms of avian pox around the beak",
                         table="birds", row_id=goose, author="carla")
    notes.add_annotation("has an unusually large bill for a juvenile",
                         table="birds", row_id=goose,
                         columns=["weight"], author="aria")
    notes.add_annotation("routine update nothing unusual otherwise",
                         table="birds", row_id=swan, author="ben")

    # 4. Query: the result tuples carry summary objects, not raw text.
    result = notes.query("SELECT name, species FROM birds")
    print(render_result(result))
    print()
    for row in result.tuples:
        print(f"Summaries for {row.values[0]!r}:")
        print(render_summaries(row))
        print()

    # Note the projection semantics: the 'unusually large bill' annotation
    # attaches only to the weight column, which this query projects out,
    # so its effect is absent from the reported summaries.

    # 5. Zoom in: expand the Behavior label back into raw annotations.
    zoom = notes.zoomin(
        f"ZOOMIN REFERENCE QID = {result.qid} "
        f"WHERE name = 'Swan Goose' ON ClassBird1 INDEX 1"
    )
    print(render_zoomin(zoom))

    notes.close()


if __name__ == "__main__":
    main()
