"""Figure 5 scenario: a scripted InsightNotesGate session.

Replays the GUI demonstration flow through the terminal front-end: load
the demo dataset, run a QBE query and an explicit SQL query, visualize a
row's annotation summaries, add an annotation (watching the summaries
refresh), zoom in, and inspect the under-the-hood operator trace.

Run with ``python examples/gate_session.py`` — or interactively via the
``insightnotes-gate`` console script.
"""

from repro.gate.cli import run_script

SESSION = [
    "\\demo",
    "\\tables",
    "\\instances",
    # QBE section: fill-in fields, select-project only.
    "\\qbe birds region=midwest",
    # Explicit SQL: joins and aggregation.
    "SELECT b.species, count(*), avg(s.count) FROM birds b, sightings s "
    "WHERE b.species = s.species GROUP BY b.species ORDER BY count(*) DESC",
    # Visualize Annotation Summaries for row 0 of the first query (QID 101).
    "\\summaries 101 0",
    # Add Annotation, then re-visualize: the summaries refresh.
    "\\annotate birds 1 shows symptoms of avian pox around the beak",
    "SELECT name, species FROM birds WHERE name = 'Swan Goose'",
    "\\summaries 103 0",
    # Zoom-In button on a classifier label.
    "ZOOMIN REFERENCE QID = 103 ON ClassBird1 INDEX 2",
    # Under-the-hood execution on the query tree.
    "\\trace",
    "SELECT b.name, s.observer FROM birds b, sightings s "
    "WHERE b.species = s.species AND s.count > 60",
    "\\quit",
]


def main() -> None:
    for line, output in zip(SESSION, run_script(SESSION)):
        print(f"insightnotes> {line}")
        if output:
            print(output)
        print()


if __name__ == "__main__":
    main()
