"""Figure 2 walkthrough: summary propagation through an SPJ query.

Recreates the paper's worked example step by step:

    SELECT r.a, r.b, s.z FROM R r, S s WHERE r.a = s.x AND r.b = 2

Tuple ``r`` carries four summary objects (two classifiers, a snippet, a
cluster); tuple ``s`` carries two.  The normalized plan projects out the
un-needed annotations first (step 1), the selection passes summaries
unchanged (step 2), the join merges counterpart objects without double
counting shared annotations (step 3), and the final projection drops the
join column (step 4).  Run with tracing on to watch each operator's
intermediate tuples.
"""

from repro import CellRef, InsightNotes
from repro.gate.render import render_trace


def build_session() -> InsightNotes:
    notes = InsightNotes()
    notes.create_table("R", ["a", "b", "c", "d"])
    notes.create_table("S", ["x", "y", "z"])
    r = notes.insert("R", (1, 2, "c-value", "d-value"))
    s = notes.insert("S", (1, "y-value", "z-value"))

    notes.define_classifier(
        "ClassBird1",
        labels=["Behavior", "Disease", "Anatomy", "Other"],
        training=[
            ("observed feeding on stonewort beds", "Behavior"),
            ("shows symptoms of avian influenza", "Disease"),
            ("has an unusually large bill", "Anatomy"),
            ("routine update for the log", "Other"),
        ],
    )
    notes.define_classifier(
        "ClassBird2",
        labels=["Provenance", "Comment", "Question"],
        training=[
            ("record imported from the archive", "Provenance"),
            ("great sighting worth sharing", "Comment"),
            ("can anyone confirm this value", "Question"),
        ],
    )
    notes.define_cluster("SimCluster", threshold=0.3)
    notes.define_snippet("TextSummary1", max_sentences=1)
    for instance in ("ClassBird1", "ClassBird2", "SimCluster", "TextSummary1"):
        notes.link(instance, "R")
    for instance in ("ClassBird2", "SimCluster"):
        notes.link(instance, "S")

    # Annotations on r: some on kept columns (a, b), some only on the
    # projected-out columns (c, d) whose effect must disappear in step 1.
    notes.add_annotation("observed feeding on stonewort near dawn",
                         table="R", row_id=r, columns=["a"])
    notes.add_annotation("observed feeding on stonewort at dusk",
                         table="R", row_id=r, columns=["b"])
    notes.add_annotation("shows symptoms of avian influenza",
                         table="R", row_id=r, columns=["c"])
    notes.add_annotation("record imported from the archive batch",
                         table="R", row_id=r, columns=["a"])
    notes.add_annotation(
        "The experiment tracked 40 individuals. Results indicate a shift. "
        "Sample sizes remain modest.",
        table="R", row_id=r, columns=["a"], document=True,
        title="Experiment E report",
    )
    notes.add_annotation(
        "The article summarizes wetland conservation. It lists raw counts. "
        "Follow-up work will extend the transects.",
        table="R", row_id=r, columns=["d"], document=True,
        title="Wikipedia article",
    )

    # Annotations on s, including one attached to the dropped column y.
    notes.add_annotation("great sighting worth sharing today",
                         table="S", row_id=s, columns=["x"])
    notes.add_annotation("can anyone confirm this value please",
                         table="S", row_id=s, columns=["y"])

    # One annotation attached to BOTH r and s — the join merge must count
    # it once, the paper's double-counting case.
    notes.add_annotation(
        "record imported from station logbook 47",
        cells=[CellRef("R", r, "a"), CellRef("S", s, "x")],
    )
    return notes


def main() -> None:
    notes = build_session()
    sql = "SELECT r.a, r.b, s.z FROM R r, S s WHERE r.a = s.x AND r.b = 2"
    print("Query:", sql)
    print()
    print("Normalized plan (projections pushed before the merge):")
    print(notes.explain(sql))
    print()
    result = notes.query(sql, trace=True)
    print("Under-the-hood propagation (compare with Figure 2):")
    assert result.trace is not None
    print(render_trace(result.trace))
    print()
    row = result.tuples[0]
    print("Final output tuple:", row.values)
    for name in sorted(row.summaries):
        print(" ", row.summaries[name].render())
    shared_once = row.summaries["ClassBird2"].counts()
    print()
    print(f"ClassBird2 after the dedup-aware merge: {shared_once} "
          f"(the annotation attached to both r and s is counted once)")
    notes.close()


if __name__ == "__main__":
    main()
