"""Domain portability: the biological-database scenario.

Section 2.3 of the paper motivates extensibility with exactly this
contrast: a biological database classifies gene annotations into
FunctionPrediction / Provenance / Comment, while an ornithological one
uses Behavior / Disease / Anatomy.  This example runs the *same engine*
on the genomics domain profile — different relations, different label
sets, different vocabulary, no engine changes:

* generate an annotated ``genes``/``assays`` database;
* run a summary-carrying join + aggregation;
* filter genes by experimental evidence with a summary predicate;
* zoom in to read the underlying experiment notes.
"""

from repro.gate.render import render_result, render_summaries, render_zoomin
from repro.workloads import WorkloadConfig, build_genomics_workload


def main() -> None:
    workload = build_genomics_workload(
        WorkloadConfig(
            num_birds=6,          # interpreted as gene count
            num_sightings=10,     # interpreted as assay count
            annotations_per_row=25,
            document_fraction=0.05,
            seed=19,
        )
    )
    session = workload.session

    result = session.query("SELECT symbol, organism, chromosome FROM genes")
    print(render_result(result))
    print()
    print("Summaries on the first gene:")
    print(render_summaries(result.tuples[0]))
    print()

    evidence = session.query(
        "SELECT symbol, organism FROM genes "
        "WHERE SUMMARY_COUNT('GeneClasses', 'Experiment') >= 3 "
        "ORDER BY SUMMARY_COUNT('GeneClasses', 'Experiment') DESC"
    )
    print("Genes with substantial experimental evidence:")
    print(render_result(evidence))
    print()

    if evidence.tuples:
        zoom = session.zoomin(
            f"ZOOMIN REFERENCE QID = {evidence.qid} "
            f"WHERE symbol = '{evidence.tuples[0].values[0]}' "
            f"ON GeneClasses INDEX 2"  # index 2 = the Experiment label
        )
        print(render_zoomin(zoom))

    per_organism = session.query(
        "SELECT g.organism, count(*), avg(a.reads) FROM genes g, assays a "
        "WHERE g.organism = a.organism GROUP BY g.organism "
        "ORDER BY count(*) DESC"
    )
    print()
    print("Assay coverage per organism (summaries merged per group):")
    print(render_result(per_organism))
    session.close()


if __name__ == "__main__":
    main()
