"""Figure 1 scenario: a tuple with hundreds of raw annotations vs. its
annotation summaries.

Reproduces the paper's motivating picture on the AKN-style synthetic
workload: one Swan Goose tuple accumulates hundreds of free-text
observations plus attached documents.  The left-hand side of Figure 1 is
the raw list (unreadable); the right-hand side is what InsightNotes
reports — two classifier objects, a cluster object, and a snippet object.

Run with ``python examples/ornithology.py``.
"""

from repro.gate.render import render_summaries
from repro.workloads import WorkloadConfig, build_workload


def main() -> None:
    # 250x is the AKN annotation ratio the introduction quotes.
    workload = build_workload(
        WorkloadConfig(
            num_birds=3,
            num_sightings=0,
            annotations_per_row=250,
            document_fraction=0.02,
            seed=42,
        )
    )
    session = workload.session

    result = session.query("SELECT name, species, region, weight FROM birds")
    row = result.tuples[0]
    raw_count = len(row.attachments)

    print("=" * 70)
    print(f"L.H.S of Figure 1 — tuple {row.values[:2]} carries "
          f"{raw_count} raw annotations:")
    print("=" * 70)
    zoom = session.zoomin(
        f"ZOOMIN REFERENCE QID = {result.qid} "
        f"WHERE name = '{row.values[0]}' ON SimCluster"
    )
    shown = 0
    for match in zoom.matches:
        for annotation in match.annotations:
            if shown >= 8:
                break
            print(f"  A{annotation.annotation_id}: {annotation.text}")
            shown += 1
    print(f"  ... and {raw_count - shown} more — beyond what a scientist "
          f"can read per tuple.")
    print()
    print("=" * 70)
    print("R.H.S of Figure 1 — the same tuple under InsightNotes:")
    print("=" * 70)
    rendered = render_summaries(row)
    print(rendered)
    print()
    raw_bytes = sum(
        len(a.text)
        for m in zoom.matches
        for a in m.annotations
    )
    print(f"the scientist reads ~{len(rendered)} characters of summaries "
          f"instead of ~{raw_bytes} characters of raw annotations "
          f"({raw_bytes / max(1, len(rendered)):.1f}x less to read)")


if __name__ == "__main__":
    main()
