"""Figure 4 scenario: extensibility and the summarization hierarchy.

Demonstrates all three levels:

1. **Summary Types** — registering a brand-new type (an author-histogram
   summarizer) alongside the built-in Classifier/Cluster/Snippet;
2. **Summary Instances** — defining domain-specific instances (the
   biological FunctionPrediction/Provenance/Comment classifier vs. the
   ornithological Behavior/Disease/Anatomy/Other one) with their invariant
   properties;
3. **Summary Objects** — linking instances to relations at runtime and
   watching existing annotations get summarized under the new instance.
"""

from collections.abc import Mapping, Set
from typing import Any

from repro import InsightNotes
from repro.model.annotation import Annotation
from repro.summaries.base import (
    InstanceProperties,
    SummaryInstance,
    SummaryObject,
    SummaryType,
    ZoomComponent,
)
from repro.summaries.registry import default_registry


class AuthorSummary(SummaryObject):
    """Custom level-3 object: per-author annotation counts."""

    type_name = "AuthorHistogram"

    def __init__(self, instance_name: str) -> None:
        super().__init__(instance_name)
        self.by_author: dict[str, set[int]] = {}

    def annotation_ids(self) -> frozenset[int]:
        ids: set[int] = set()
        for members in self.by_author.values():
            ids |= members
        return frozenset(ids)

    def copy(self) -> "AuthorSummary":
        clone = AuthorSummary(self.instance_name)
        clone.by_author = {a: set(m) for a, m in self.by_author.items()}
        return clone

    def remove_annotations(self, ids: Set[int]) -> None:
        for author in list(self.by_author):
            self.by_author[author] -= ids
            if not self.by_author[author]:
                del self.by_author[author]

    def merge(self, other: SummaryObject) -> "AuthorSummary":
        assert isinstance(other, AuthorSummary)
        merged = self.copy()
        for author, members in other.by_author.items():
            merged.by_author.setdefault(author, set()).update(members)
        return merged

    def zoom_components(self) -> list[ZoomComponent]:
        return [
            ZoomComponent(index=i, label=author,
                          annotation_ids=tuple(sorted(members)))
            for i, (author, members) in enumerate(
                sorted(self.by_author.items()), start=1)
        ]

    def size_estimate(self) -> int:
        return sum(len(a) + 8 * len(m) for a, m in self.by_author.items())

    def to_json(self) -> dict[str, Any]:
        return {
            "type": self.type_name,
            "instance": self.instance_name,
            "by_author": {a: sorted(m) for a, m in self.by_author.items()},
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "AuthorSummary":
        obj = cls(data["instance"])
        obj.by_author = {a: set(m) for a, m in data["by_author"].items()}
        return obj

    def render(self) -> str:
        body = ", ".join(f"({a}, {len(m)})" for a, m in sorted(self.by_author.items()))
        return f"{self.instance_name} [{body}]"


class AuthorInstance(SummaryInstance):
    """Custom level-2 instance (no configuration needed)."""

    type_name = "AuthorHistogram"

    def __init__(self, name: str) -> None:
        super().__init__(name, InstanceProperties(True, True))

    def new_object(self) -> AuthorSummary:
        return AuthorSummary(self.name)

    def analyze(self, annotation: Annotation) -> str:
        return annotation.author

    def add_to(self, obj: SummaryObject, annotation: Annotation,
               contribution: str) -> None:
        assert isinstance(obj, AuthorSummary)
        obj.by_author.setdefault(contribution, set()).add(
            annotation.annotation_id
        )

    def config(self) -> dict[str, Any]:
        return {}


class AuthorHistogramType(SummaryType):
    """Custom level-1 type registration."""

    name = "AuthorHistogram"

    def create_instance(self, instance_name: str,
                        config: Mapping[str, Any]) -> AuthorInstance:
        return AuthorInstance(instance_name)

    def object_from_json(self, data: Mapping[str, Any]) -> AuthorSummary:
        return AuthorSummary.from_json(data)


def main() -> None:
    # Level 1: register the custom type next to the built-ins.
    registry = default_registry()
    registry.register(AuthorHistogramType())
    notes = InsightNotes(registry=registry)
    print("Registered summary types:", registry.type_names())
    print()

    notes.create_table("genes", ["symbol", "organism", "length"])
    g1 = notes.insert("genes", ("BRCA1", "human", 81189))
    notes.insert("genes", ("tp53", "mouse", 11541))

    # Level 2: two domain-specific classifier instances over the same type.
    notes.define_classifier(
        "GeneClasses",
        labels=["FunctionPrediction", "Provenance", "Comment"],
        training=[
            ("predicted to regulate dna repair pathways", "FunctionPrediction"),
            ("likely involved in tumor suppression function", "FunctionPrediction"),
            ("record imported from the consortium release", "Provenance"),
            ("entry curated by the annotation team", "Provenance"),
            ("interesting gene worth a closer look", "Comment"),
            ("general note about this locus", "Comment"),
        ],
    )
    notes.define_instance("AuthorHistogram", "WhoAnnotated", {})
    for instance in notes.catalog.instance_names():
        print("Defined instance:", notes.catalog.get_instance(instance).describe())
    print()

    # Annotations arrive BEFORE any instance is linked.
    notes.add_annotation("predicted to regulate dna repair in cells",
                         table="genes", row_id=g1, author="curatorA")
    notes.add_annotation("record imported from the consortium release",
                         table="genes", row_id=g1, author="pipeline")
    notes.add_annotation("interesting gene worth a closer look",
                         table="genes", row_id=g1, author="curatorA")

    # Level 3: linking summarizes the existing annotations immediately.
    notes.link("GeneClasses", "genes")
    notes.link("WhoAnnotated", "genes")
    result = notes.query("SELECT symbol, organism FROM genes")
    row = result.tuples[0]
    print("After linking both instances:")
    for name in sorted(row.summaries):
        print(" ", row.summaries[name].render())
    print()

    # Unlinking drops the instance's objects for that relation.
    notes.unlink("WhoAnnotated", "genes")
    result2 = notes.query("SELECT symbol FROM genes")
    print("After unlinking WhoAnnotated:",
          sorted(result2.tuples[0].summaries))
    notes.close()


if __name__ == "__main__":
    main()
