"""A data-curation workflow driven by belief annotations.

The intro's motivating use case beyond browsing: curators annotate
suspicious values, and the *summaries* — not the raw notes — drive the
cleaning process.  This example:

1. loads a measurements table annotated with approve/refute beliefs
   (after the belief-annotation line of work the paper cites);
2. finds contested rows with a **summary predicate** — more refutations
   than approvals — without reading any annotation text;
3. zooms into the refutations of the worst row to see the evidence;
4. applies the curators' verdict: corrects one value (the annotation text
   is *updated* and re-summarized) and deletes a fabricated row (its
   annotations cascade away);
5. prints the session statistics dashboard.
"""

from repro import InsightNotes
from repro.gate.render import render_result, render_zoomin


def build_session() -> InsightNotes:
    notes = InsightNotes()
    notes.create_table("measurements", ["station", "quantity", "value"])
    rows = {
        "ok": notes.insert("measurements", ("north-7", "wing_span_cm", 58)),
        "typo": notes.insert("measurements", ("north-7", "weight_kg", 95)),
        "fabricated": notes.insert("measurements", ("ghost-0", "weight_kg", 4)),
    }
    notes.define_classifier(
        "Beliefs",
        labels=["refute", "approve"],
        training=[
            ("this value is wrong and must be corrected", "refute"),
            ("impossible measurement reject it", "refute"),
            ("no such station exists fabricated entry", "refute"),
            ("confirmed by a second observer", "approve"),
            ("value matches the instrument log", "approve"),
            ("looks plausible and consistent", "approve"),
        ],
    )
    notes.link("Beliefs", "measurements")

    notes.add_annotation("confirmed by a second observer",
                         table="measurements", row_id=rows["ok"], author="ana")
    notes.add_annotation("value matches the instrument log",
                         table="measurements", row_id=rows["ok"], author="bo")

    notes.add_annotation("this value is wrong, surely 9.5 not 95",
                         table="measurements", row_id=rows["typo"],
                         columns=["value"], author="ana")
    notes.add_annotation("impossible measurement for this species",
                         table="measurements", row_id=rows["typo"],
                         columns=["value"], author="bo")
    notes.add_annotation("looks plausible and consistent",
                         table="measurements", row_id=rows["typo"],
                         author="cleo")

    notes.add_annotation("no such station exists, fabricated entry",
                         table="measurements", row_id=rows["fabricated"],
                         author="ana")
    notes.add_annotation("reject it, station list has no ghost-0",
                         table="measurements", row_id=rows["fabricated"],
                         author="bo")
    return notes


def main() -> None:
    notes = build_session()

    # 2. Summary-predicate triage: contested rows, most-refuted first.
    contested = notes.query(
        "SELECT station, quantity, value FROM measurements "
        "WHERE SUMMARY_COUNT('Beliefs', 'refute') > "
        "SUMMARY_COUNT('Beliefs', 'approve') "
        "ORDER BY SUMMARY_COUNT('Beliefs', 'refute') DESC"
    )
    print("Contested measurements (refutes > approvals):")
    print(render_result(contested))
    print()

    # 3. Zoom into the evidence on the worst offender.
    zoom = notes.zoomin(
        f"ZOOMIN REFERENCE QID = {contested.qid} "
        f"WHERE station = 'ghost-0' ON Beliefs INDEX 1"
    )
    print(render_zoomin(zoom))
    print()

    # 4a. The typo verdict: fix the value, and soften the refutation so
    #     the record's history reflects the correction.
    typo_row = next(
        row for row in contested.tuples if row.values[0] == "north-7"
    )
    refuting_id = typo_row.summaries["Beliefs"].members("refute")
    first_refute = min(refuting_id)
    notes.update_annotation(
        first_refute,
        text="value matches the instrument log after correcting 95 to 9.5",
    )
    print(f"annotation #{first_refute} updated and re-summarized")

    # 4b. The fabrication verdict: delete the row; its annotations cascade.
    ghost_row_id = next(
        row_id for row_id, values in notes.db.rows("measurements")
        if values[0] == "ghost-0"
    )
    notes.delete_row("measurements", ghost_row_id)
    print("fabricated row deleted (annotations cascaded)")
    print()

    after = notes.query(
        "SELECT station, quantity, value FROM measurements "
        "WHERE SUMMARY_COUNT('Beliefs', 'refute') > "
        "SUMMARY_COUNT('Beliefs', 'approve')"
    )
    print(f"contested rows remaining: {len(after)}")
    print()

    # 5. Operational dashboard.
    print("Session statistics:")
    for key, value in notes.statistics().items():
        print(f"  {key}: {value}")
    notes.close()


if __name__ == "__main__":
    main()
