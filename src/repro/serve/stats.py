"""Per-request and aggregate statistics for the annotation server.

Every admitted request gets a :class:`RequestContext` — the server-side
"session" of that request: identity (request id, operation name, lane),
timing (admitted / started / finished on the worker thread), and, for
query-shaped work, the :class:`~repro.engine.operators.ExecutionStats`
counters the engine populated while executing it.  Contexts are folded
into one :class:`ServerStats` aggregate that a long-running process
exposes for dashboards — the same shape the lint CLI's ``--format
json`` reports use.

Latencies are kept in a bounded ring per operation class, so a server
that has handled millions of requests still answers a stats probe in
O(window); percentiles are computed over that window at snapshot time.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.concurrency import make_lock

#: How many recent request latencies each operation class retains for
#: percentile estimation.  Old entries age out; counters never do.
DEFAULT_LATENCY_WINDOW = 8192


def percentile(samples: list[float], fraction: float) -> float:
    """The ``fraction``-quantile of ``samples`` by nearest-rank.

    Nearest-rank on the sorted sample — the convention load-testing
    tools report (p99 of 100 samples is the 99th largest), chosen over
    interpolation so a single catastrophic outlier cannot be averaged
    away.  ``samples`` must be non-empty.
    """
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(fraction * len(ordered)) - 1))
    return ordered[rank]


@dataclass
class RequestContext:
    """One request's server-side session record.

    Created at admission, carried through the executor bridge, and
    folded into :class:`ServerStats` when the request leaves the system
    (completed, failed, or timed out).  ``engine_stats`` holds the
    ``ExecutionStats.to_json()`` payload for operations that produce
    one (queries), so per-request observability reaches down to rows
    scanned / hydrated without re-deriving anything.
    """

    request_id: int
    op: str
    lane: str
    admitted_at: float = field(default_factory=time.perf_counter)
    started_at: float | None = None
    finished_at: float | None = None
    outcome: str = "pending"
    engine_stats: dict[str, Any] | None = None

    def mark_started(self) -> None:
        self.started_at = time.perf_counter()

    def mark_finished(self) -> None:
        self.finished_at = time.perf_counter()

    @property
    def queue_seconds(self) -> float:
        """Time spent between admission and the worker picking it up."""
        if self.started_at is None:
            return 0.0
        return self.started_at - self.admitted_at

    @property
    def service_seconds(self) -> float:
        """Time spent executing on the worker thread."""
        if self.started_at is None or self.finished_at is None:
            return 0.0
        return self.finished_at - self.started_at

    @property
    def total_seconds(self) -> float:
        """Admission-to-finish latency (what a client observes)."""
        if self.finished_at is None:
            return 0.0
        return self.finished_at - self.admitted_at


class _LaneStats:
    """Counters and a bounded latency window for one operation class."""

    def __init__(self, window: int) -> None:
        self.admitted = 0
        self.completed = 0
        self.failed = 0
        self.timed_out = 0
        self.rejected_overload = 0
        self.rejected_closed = 0
        self.queue_seconds = 0.0
        self.busy_seconds = 0.0
        self.latencies: deque[float] = deque(maxlen=window)

    def snapshot(self) -> dict[str, Any]:
        samples = list(self.latencies)
        payload: dict[str, Any] = {
            "admitted": self.admitted,
            "completed": self.completed,
            "failed": self.failed,
            "timed_out": self.timed_out,
            "rejected_overload": self.rejected_overload,
            "rejected_closed": self.rejected_closed,
            "queue_seconds": round(self.queue_seconds, 6),
            "busy_seconds": round(self.busy_seconds, 6),
        }
        if samples:
            payload["latency_ms"] = {
                "p50": round(percentile(samples, 0.50) * 1000, 3),
                "p99": round(percentile(samples, 0.99) * 1000, 3),
                "max": round(max(samples) * 1000, 3),
                "window": len(samples),
            }
        return payload


class ServerStats:
    """Thread-safe aggregate of every request the server has seen.

    Lane counters (reader/writer) cover admission outcomes and latency;
    the engine totals accumulate the per-query ``ExecutionStats``
    counters so the served system reports the same rows-scanned /
    rows-hydrated trajectory the library benchmarks gate on.
    """

    def __init__(self, window: int = DEFAULT_LATENCY_WINDOW) -> None:
        self._lock = make_lock("serve.stats")
        self._window = window
        self._lanes: dict[str, _LaneStats] = {}
        self._engine_totals: dict[str, int] = {}

    def _lane(self, name: str) -> _LaneStats:
        lane = self._lanes.get(name)
        if lane is None:
            lane = self._lanes[name] = _LaneStats(self._window)
        return lane

    # -- recording ------------------------------------------------------

    def record_admitted(self, lane: str) -> None:
        with self._lock:
            self._lane(lane).admitted += 1

    def record_rejected(self, lane: str, closed: bool) -> None:
        with self._lock:
            stats = self._lane(lane)
            if closed:
                stats.rejected_closed += 1
            else:
                stats.rejected_overload += 1

    def record_finished(self, context: RequestContext) -> None:
        """Fold one finished request context into the aggregate."""
        with self._lock:
            stats = self._lane(context.lane)
            if context.outcome == "completed":
                stats.completed += 1
            elif context.outcome == "timed_out":
                stats.timed_out += 1
            else:
                stats.failed += 1
            stats.queue_seconds += context.queue_seconds
            stats.busy_seconds += context.service_seconds
            if context.total_seconds:
                stats.latencies.append(context.total_seconds)
            if context.engine_stats:
                for key, value in context.engine_stats.items():
                    if isinstance(value, int):
                        self._engine_totals[key] = (
                            self._engine_totals.get(key, 0) + value
                        )

    # -- reporting ------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A JSON-able point-in-time view of every counter."""
        with self._lock:
            return {
                "lanes": {
                    name: lane.snapshot()
                    for name, lane in sorted(self._lanes.items())
                },
                "engine": dict(self._engine_totals),
            }
