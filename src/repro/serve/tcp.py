"""The asyncio TCP front end: JSON lines over a socket.

:class:`TcpAnnotationServer` binds an :class:`AnnotationServer` to a
listening socket.  Each connection is one client session: the
connection task reads request lines and spawns one asyncio task per
request, so a client may pipeline — a slow analytical query does not
block the quick ping behind it; responses carry the request ``id`` for
correlation and are written atomically under a per-connection lock.

Backpressure composes across layers: the admission queues bound how
much *work* is in flight (excess requests get a 429-style error
payload, cheaply, without touching a worker thread), while the
transport bounds how many *request tasks* one connection may have
parked waiting for admission-level verdicts
(``MAX_PIPELINED_REQUESTS``; beyond it the reader loop stops consuming
and TCP flow control pushes back on the client).
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Any

from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_request,
    encode_response,
    error_response,
    handle_request,
)
from repro.serve.server import AnnotationServer

#: How many in-flight request tasks one connection may hold before the
#: server stops reading further lines from it.
MAX_PIPELINED_REQUESTS = 64


class TcpAnnotationServer:
    """Serve an :class:`AnnotationServer` over a TCP socket.

    >>> server = TcpAnnotationServer(AnnotationServer(path="notes.db"))
    >>> # inside a coroutine:
    >>> #   await server.start("127.0.0.1", 8765)
    >>> #   await server.serve_forever()   # until stop() or cancellation
    """

    def __init__(self, server: AnnotationServer) -> None:
        self.server = server
        self._tcp: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.Task[None]] = set()

    @property
    def address(self) -> tuple[str, int] | None:
        """The bound ``(host, port)``, once started."""
        if self._tcp is None or not self._tcp.sockets:
            return None
        host, port = self._tcp.sockets[0].getsockname()[:2]
        return host, port

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Bind and listen; returns the bound address (port 0 = ephemeral)."""
        await self.server.start()
        self._tcp = await asyncio.start_server(
            self._serve_connection, host, port, limit=MAX_LINE_BYTES
        )
        address = self.address
        assert address is not None
        return address

    async def serve_forever(self) -> None:
        """Serve until cancelled (the CLI wires signals to cancel this)."""
        if self._tcp is None:
            raise RuntimeError("start() the server before serve_forever()")
        async with self._tcp:
            await self._tcp.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, close connections, drain the annotation server."""
        if self._tcp is not None:
            self._tcp.close()
            await self._tcp.wait_closed()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        await self.server.stop()

    # -- connection handling --------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        write_lock = asyncio.Lock()
        pending: set[asyncio.Task[None]] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.LimitOverrunError):
                    break
                except asyncio.CancelledError:
                    # stop() cancelling this connection is a normal way
                    # for the session to end; finishing cleanly (instead
                    # of staying "cancelled") keeps asyncio's stream
                    # bookkeeping from logging the cancellation as an
                    # unhandled error.
                    break
                if not line:
                    break
                if line.strip() == b"":
                    continue
                while len(pending) >= MAX_PIPELINED_REQUESTS:
                    _, pending = await asyncio.wait(
                        pending, return_when=asyncio.FIRST_COMPLETED
                    )
                request_task = asyncio.create_task(
                    self._serve_request(line, writer, write_lock)
                )
                pending.add(request_task)
                request_task.add_done_callback(pending.discard)
        finally:
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
            self._connections.discard(task)

    async def _serve_request(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        """Decode, dispatch, and answer one pipelined request."""
        try:
            request = decode_request(line)
        except ProtocolError as exc:
            response: dict[str, Any] = error_response(
                _best_effort_id(line), exc
            )
        else:
            response = await handle_request(self.server, request)
        async with write_lock:
            writer.write(encode_response(response))
            with contextlib.suppress(ConnectionResetError):
                await writer.drain()


def _best_effort_id(line: bytes) -> Any:
    """Recover a request id from an undecodable line when possible."""
    import json

    try:
        decoded = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if isinstance(decoded, dict):
        return decoded.get("id")
    return None
