"""CLI entry point: run the annotation server as a process.

Usage::

    PYTHONPATH=src python -m repro.serve --path notes.db \
        [--host 127.0.0.1] [--port 8765] [--readers 4] [--writers 1] \
        [--shards N] [--request-timeout 30] [--quiet]

Listens for JSON-lines requests (see :mod:`repro.serve.protocol`) until
SIGINT/SIGTERM, then drains in-flight requests, flushes the summary
writer, and exits 0.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys

from repro.serve.server import AnnotationServer, ServerConfig
from repro.serve.tcp import TcpAnnotationServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--path", default=":memory:",
                        help="SQLite database path (default in-memory)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8765,
                        help="listening port (0 picks an ephemeral one)")
    parser.add_argument("--readers", type=int, default=4,
                        help="reader-lane worker threads")
    parser.add_argument("--writers", type=int, default=1,
                        help="writer-lane worker threads")
    parser.add_argument("--read-queue", type=int, default=32,
                        help="reader admission queue depth")
    parser.add_argument("--write-queue", type=int, default=16,
                        help="writer admission queue depth")
    parser.add_argument("--shards", type=int, default=1,
                        help="storage shard count (file-backed paths only)")
    parser.add_argument("--request-timeout", type=float, default=30.0,
                        help="per-request deadline in seconds")
    parser.add_argument("--drain-timeout", type=float, default=30.0,
                        help="graceful-shutdown drain budget in seconds")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the startup/shutdown lines")
    return parser


async def run(args: argparse.Namespace) -> int:
    config = ServerConfig(
        readers=args.readers,
        writers=args.writers,
        read_queue_depth=args.read_queue,
        write_queue_depth=args.write_queue,
        request_timeout_s=args.request_timeout,
        drain_timeout_s=args.drain_timeout,
    )
    server = TcpAnnotationServer(
        AnnotationServer(config=config, path=args.path, shards=args.shards)
    )
    host, port = await server.start(args.host, args.port)
    if not args.quiet:
        print(f"annotation server listening on {host}:{port} "
              f"(db={args.path!r}, readers={args.readers}, "
              f"writers={args.writers}, shards={args.shards})")
    loop = asyncio.get_running_loop()
    stopping = asyncio.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(signum, stopping.set)
    serve_task = asyncio.create_task(server.serve_forever())
    stop_task = asyncio.create_task(stopping.wait())
    try:
        await asyncio.wait(
            {serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
        )
    finally:
        serve_task.cancel()
        stop_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await serve_task
        with contextlib.suppress(asyncio.CancelledError):
            await stop_task
        await server.stop()
        if not args.quiet:
            print("annotation server drained and stopped")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(run(args))
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())
