"""JSON-lines wire protocol of the annotation server.

One request per line, one response per line, both UTF-8 JSON objects.
A request names an operation and its parameters and may carry an ``id``
the response echoes back, so clients can pipeline requests over one
connection and correlate out-of-order completions::

    -> {"id": 7, "op": "query", "sql": "SELECT name FROM birds"}
    <- {"id": 7, "ok": true, "result": {"qid": 3, "columns": [...], ...}}

Errors come back structured, with an HTTP-shaped status code so clients
can implement backoff without parsing messages::

    <- {"id": 8, "ok": false,
        "error": {"code": 429, "type": "ServerOverloadedError",
                  "message": "server overloaded: ..."}}

``code`` semantics: ``400`` malformed request or engine rejection
(syntax, unknown table, ...), ``408`` per-request deadline exceeded,
``429`` admission queue full (back off and retry), ``500`` unexpected
server fault, ``503`` server draining or stopped.

The dispatcher (:func:`handle_request`) is transport-agnostic — the TCP
front end feeds it decoded lines, and tests drive it directly.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import (
    InsightNotesError,
    RequestTimeoutError,
    ServeError,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.serve.server import AnnotationServer

#: Maximum accepted request-line length (bytes).  A malformed client
#: streaming an unbounded line must not balloon server memory.
MAX_LINE_BYTES = 8 * 1024 * 1024

#: Operations a request may name.
OPERATIONS = (
    "add_annotations",
    "execute",
    "insert",
    "ping",
    "query",
    "stats",
    "trace",
    "zoomin",
)


class ProtocolError(ServeError):
    """A request line could not be decoded or validated (code 400)."""


def decode_request(line: bytes | str) -> dict[str, Any]:
    """Parse one request line into a validated request dict."""
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(
                f"request line exceeds {MAX_LINE_BYTES} bytes"
            )
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"request is not valid UTF-8: {exc}") from exc
    try:
        request = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(request, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(request).__name__}"
        )
    op = request.get("op")
    if op not in OPERATIONS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {', '.join(OPERATIONS)}"
        )
    return request


def encode_response(response: dict[str, Any]) -> bytes:
    """Serialize one response dict to a newline-terminated JSON line."""
    return (json.dumps(response, separators=(",", ":")) + "\n").encode()


def error_code(exc: BaseException) -> int:
    """The HTTP-shaped status code for an exception."""
    if isinstance(exc, ServerOverloadedError):
        return 429
    if isinstance(exc, RequestTimeoutError):
        return 408
    if isinstance(exc, ServerClosedError):
        return 503
    if isinstance(exc, (ProtocolError, InsightNotesError)):
        return 400
    return 500


def error_response(
    request_id: Any, exc: BaseException
) -> dict[str, Any]:
    """A structured error response for ``exc``."""
    return {
        "id": request_id,
        "ok": False,
        "error": {
            "code": error_code(exc),
            "type": type(exc).__name__,
            "message": str(exc),
        },
    }


def _require(request: dict[str, Any], key: str, kind: type) -> Any:
    value = request.get(key)
    if not isinstance(value, kind):
        raise ProtocolError(
            f"op {request['op']!r} needs {key!r} of type {kind.__name__}"
        )
    return value


async def handle_request(
    server: AnnotationServer, request: dict[str, Any]
) -> dict[str, Any]:
    """Dispatch one decoded request against ``server``.

    Always returns a response dict — engine and admission failures are
    converted to structured error payloads, never raised through the
    transport loop.  Unexpected faults (``code`` 500) are also captured;
    a served process must answer every request it admitted.
    """
    request_id = request.get("id")
    op = request["op"]
    try:
        result = await _dispatch(server, op, request)
    except Exception as exc:
        # Boundary conversion, not swallowing: every fault becomes a
        # structured payload the client can act on.  CancelledError is a
        # BaseException and still propagates, so task teardown works.
        return error_response(request_id, exc)
    return {"id": request_id, "ok": True, "result": result}


async def _dispatch(
    server: AnnotationServer, op: str, request: dict[str, Any]
) -> Any:
    if op == "ping":
        return {"pong": True, "state": server.state}
    if op == "query":
        result = await server.query(_require(request, "sql", str))
        return result.to_json()
    if op == "zoomin":
        zoom = await server.zoomin(_require(request, "command", str))
        return zoom.to_json()
    if op == "add_annotations":
        specs = _require(request, "specs", list)
        stored = await server.add_annotations(specs)
        return {
            "count": len(stored),
            "annotation_ids": [a.annotation_id for a in stored],
        }
    if op == "insert":
        table = _require(request, "table", str)
        rows = _require(request, "rows", list)
        row_ids = await server.insert_many(table, rows)
        return {"row_ids": row_ids}
    if op == "stats":
        return await server.statistics()
    if op == "trace":
        qid = _require(request, "qid", int)
        trace = await server.trace(qid)
        return {"qid": qid, "found": trace is not None, "trace": trace}
    # op == "execute" (decode_request already validated membership)
    value = await server.execute(_require(request, "statement", str))
    if hasattr(value, "to_json"):
        return value.to_json()
    return {"status": str(value)}
