"""The long-running annotation server.

:class:`AnnotationServer` wraps one shared :class:`InsightNotes` session
behind an asyncio front end.  Coroutines submit work; the work itself
runs on plain threads, because the whole engine below is synchronous
SQLite — the bridge is ``loop.run_in_executor`` over two dedicated
:class:`~concurrent.futures.ThreadPoolExecutor` lanes:

* the **reader lane** (``readers`` threads) serves queries, zoom-ins,
  and stats probes.  Each worker thread checks out its own pooled
  read-only WAL connection (:mod:`repro.storage.pool`), so a request's
  execution *is* a per-request session over a consistent committed
  snapshot;
* the **writer lane** (``writers`` threads, default 1) serves
  annotation ingest and DML.  With the single-file backend one thread
  matches the engine's single-writer model exactly; with a sharded
  backend (``InsightNotes(shards=N)``) extra writer threads let
  per-shard writers commit concurrently.

**Admission** is bounded per lane: at most ``workers + queue_depth``
requests may be in flight (running or queued inside the executor).  A
request beyond that is rejected *immediately* with
:class:`~repro.errors.ServerOverloadedError` — the 429-style
backpressure signal — instead of growing an unbounded queue whose tail
latency nobody can meet.  Admission bookkeeping runs entirely on the
event-loop thread, so it needs no locks.

**Timeouts**: every request carries a deadline
(``config.request_timeout_s``).  When it expires the *caller* gets
:class:`~repro.errors.RequestTimeoutError`; the worker thread cannot be
interrupted and runs its statement to completion (CPython threads are
not cancellable), still occupying its lane slot until it finishes —
which is why admission counts it until the thread actually returns.

**Shutdown** (:meth:`stop`) flips the server to ``draining`` — new
requests are refused with :class:`~repro.errors.ServerClosedError` —
waits for both lanes to drain (bounded by ``drain_timeout_s``), flushes
the deferred summary writer, and closes the session.  In-flight
requests admitted before the flip complete normally.
"""

from __future__ import annotations

import asyncio
import itertools
from collections.abc import Callable, Mapping, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, TypeVar

from repro.engine.results import QueryResult
from repro.engine.session import InsightNotes
from repro.errors import (
    RequestTimeoutError,
    ServeError,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.model.annotation import Annotation
from repro.serve.stats import RequestContext, ServerStats
from repro.zoomin.command import ZoomInCommand
from repro.zoomin.executor import ZoomInResult

T = TypeVar("T")

#: Server lifecycle states.
RUNNING = "running"
DRAINING = "draining"
STOPPED = "stopped"

#: Lane names.
READ = "read"
WRITE = "write"


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of one :class:`AnnotationServer`.

    Parameters
    ----------
    readers:
        Reader-lane thread count (concurrent queries / zoom-ins).
    writers:
        Writer-lane thread count.  Leave at 1 for a single-file backend
        (writes serialize on the storage write lock anyway); raise it
        for sharded backends where per-shard writers commit in parallel.
    read_queue_depth / write_queue_depth:
        How many admitted requests may *wait* per lane beyond the ones
        actively running.  ``in_flight > workers + depth`` is the
        overload condition that triggers 429-style rejection.
    request_timeout_s:
        Per-request deadline; ``None`` disables deadlines.
    drain_timeout_s:
        How long :meth:`AnnotationServer.stop` waits for in-flight work
        before closing the session anyway; ``None`` waits forever.
    """

    readers: int = 4
    writers: int = 1
    read_queue_depth: int = 32
    write_queue_depth: int = 16
    request_timeout_s: float | None = 30.0
    drain_timeout_s: float | None = 30.0

    def __post_init__(self) -> None:
        if self.readers < 1 or self.writers < 1:
            raise ServeError("server needs at least one reader and writer")
        if self.read_queue_depth < 0 or self.write_queue_depth < 0:
            raise ServeError("queue depths must be >= 0")
        for name in ("request_timeout_s", "drain_timeout_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ServeError(f"{name} must be positive or None")


class _Lane:
    """One admission-bounded executor lane (readers or writers)."""

    def __init__(self, name: str, workers: int, queue_depth: int) -> None:
        self.name = name
        self.capacity = workers + queue_depth
        self.in_flight = 0
        self.executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix=f"serve-{name}"
        )
        #: Set when in_flight returns to zero — what drain waits on.
        self.idle = asyncio.Event()
        self.idle.set()


class AnnotationServer:
    """An asyncio facade serving one shared annotation session.

    Construct with either an open :class:`InsightNotes` session (the
    server takes ownership and closes it on :meth:`stop`) or keyword
    arguments forwarded to :class:`InsightNotes`.  All public request
    methods are coroutines and must run on the event loop that called
    :meth:`start` (or first submitted work).

    >>> server = AnnotationServer(path=":memory:")
    >>> # inside a coroutine:
    >>> #   await server.start()
    >>> #   result = await server.query("SELECT name FROM birds")
    >>> #   await server.stop()
    """

    def __init__(
        self,
        session: InsightNotes | None = None,
        config: ServerConfig | None = None,
        **session_kwargs: Any,
    ) -> None:
        if session is not None and session_kwargs:
            raise ServeError(
                "pass either an InsightNotes session or its keyword "
                "arguments, not both"
            )
        self.config = config or ServerConfig()
        self.session = session or InsightNotes(**session_kwargs)
        self.stats = ServerStats()
        self._state = RUNNING
        self._request_ids = itertools.count(1)
        self._lanes: dict[str, _Lane] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None

    # -- lifecycle ------------------------------------------------------

    @property
    def state(self) -> str:
        """``running``, ``draining``, or ``stopped``."""
        return self._state

    def _ensure_lanes(self) -> dict[str, _Lane]:
        """Create the executor lanes lazily, pinned to the running loop.

        The ``asyncio.Event`` used for drain tracking binds to the loop
        that creates it, so lanes come into existence on first use from
        inside a coroutine rather than in ``__init__`` (which may run
        with no loop at all).
        """
        if self._lanes is None:
            config = self.config
            self._loop = asyncio.get_running_loop()
            self._lanes = {
                READ: _Lane(READ, config.readers, config.read_queue_depth),
                WRITE: _Lane(
                    WRITE, config.writers, config.write_queue_depth
                ),
            }
        return self._lanes

    async def start(self) -> "AnnotationServer":
        """Bind the lanes to the current event loop (optional but
        recommended — the first request does it implicitly)."""
        self._ensure_lanes()
        return self

    async def __aenter__(self) -> "AnnotationServer":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    async def stop(self) -> None:
        """Graceful shutdown: drain, flush the writer, close (idempotent).

        New requests are refused the moment this is called; requests
        already admitted finish and are waited for — readers first, then
        writers, so a write admitted before the flip is never flushed
        away.  If the drain exceeds ``drain_timeout_s`` the session is
        closed anyway and any still-running statement fails with the
        pool's post-close ``RuntimeError`` (a documented hard stop, not
        a hang).
        """
        if self._state == STOPPED:
            return
        self._state = DRAINING
        if self._lanes is not None:
            try:
                await asyncio.wait_for(
                    self._drain(), timeout=self.config.drain_timeout_s
                )
            except asyncio.TimeoutError:
                pass
            for lane in self._lanes.values():
                lane.executor.shutdown(wait=False)
        # Flush deferred summary state and release every connection.
        # After a timed-out drain a worker may still be mid-statement;
        # closing is the documented hard stop for that case.
        self.session.close()
        self._state = STOPPED

    async def _drain(self) -> None:
        """Wait until both lanes report zero in-flight requests."""
        assert self._lanes is not None
        for name in (READ, WRITE):
            await self._lanes[name].idle.wait()

    # -- admission + bridge ---------------------------------------------

    async def submit(
        self,
        lane_name: str,
        op: str,
        fn: Callable[[], T],
        timeout_s: float | None = None,
        extract_stats: Callable[[T], dict[str, Any] | None] | None = None,
    ) -> T:
        """Admit, execute, and account one request.

        The low-level entry every public operation routes through (and
        the seam tests use to inject slow or failing work): ``fn`` runs
        on a ``lane_name`` worker thread; the awaiting coroutine gets
        its return value, its exception, or a timeout.
        ``extract_stats``, when given, maps the result to a counter dict
        recorded on the request context (queries pass the engine's
        ``ExecutionStats`` payload through it).

        Raises
        ------
        ServerClosedError
            The server is draining or stopped.
        ServerOverloadedError
            The lane already has ``workers + queue_depth`` requests in
            flight.
        RequestTimeoutError
            The deadline passed before the worker finished.
        """
        if self._state != RUNNING:
            self.stats.record_rejected(lane_name, closed=True)
            raise ServerClosedError(self._state)
        lane = self._ensure_lanes()[lane_name]
        if lane.in_flight >= lane.capacity:
            self.stats.record_rejected(lane_name, closed=False)
            raise ServerOverloadedError(lane_name, lane.capacity)
        context = RequestContext(
            request_id=next(self._request_ids), op=op, lane=lane_name
        )
        self.stats.record_admitted(lane_name)
        lane.in_flight += 1
        lane.idle.clear()
        assert self._loop is not None
        future = self._loop.run_in_executor(
            lane.executor, self._run_request, context, fn, extract_stats
        )
        future.add_done_callback(
            lambda done: self._request_left(lane, context, done)
        )
        if timeout_s is None:
            timeout_s = self.config.request_timeout_s
        try:
            return await asyncio.wait_for(
                asyncio.shield(future), timeout=timeout_s
            )
        except asyncio.TimeoutError:
            context.outcome = "timed_out"
            raise RequestTimeoutError(op, timeout_s or 0.0) from None

    @staticmethod
    def _run_request(
        context: RequestContext,
        fn: Callable[[], T],
        extract_stats: Callable[[T], dict[str, Any] | None] | None,
    ) -> T:
        """Executor-side wrapper: stamp the context around the work.

        ``context`` is owned by exactly one worker thread while this
        runs; the loop-side done callback that publishes it into the
        aggregate happens-after the thread returns, so the unlocked
        attribute writes here are race-free by construction.
        """
        context.mark_started()
        try:
            result = fn()
            if extract_stats is not None:
                context.engine_stats = extract_stats(result)
            return result
        finally:
            context.mark_finished()

    def _request_left(
        self,
        lane: _Lane,
        context: RequestContext,
        future: "asyncio.Future[Any]",
    ) -> None:
        """Loop-side bookkeeping when the worker thread is truly done.

        Runs as the executor future's done callback *on the event loop*,
        so ``in_flight`` only decrements once the thread has returned —
        a timed-out request keeps holding its slot until then, which is
        exactly the capacity picture admission must see.  Retrieving
        ``future.exception()`` here also claims the exception of a
        request whose caller already gave up (timeout), so abandoned
        work never logs "exception was never retrieved".
        """
        lane.in_flight -= 1
        if lane.in_flight == 0:
            lane.idle.set()
        failed = (
            not future.cancelled() and future.exception() is not None
        )
        if context.outcome == "pending":
            context.outcome = "failed" if failed else "completed"
        self.stats.record_finished(context)

    # -- read operations ------------------------------------------------

    @staticmethod
    def _query_stats(result: QueryResult) -> dict[str, Any] | None:
        return result.stats.to_json() if result.stats is not None else None

    async def query(
        self, sql: str, timeout_s: float | None = None
    ) -> QueryResult:
        """Run a summary-aware SQL query on the reader lane."""
        return await self.submit(
            READ,
            "query",
            lambda: self.session.query(sql),
            timeout_s,
            extract_stats=self._query_stats,
        )

    async def zoomin(
        self, command: str | ZoomInCommand, timeout_s: float | None = None
    ) -> ZoomInResult:
        """Run a ZOOMIN command on the reader lane."""
        return await self.submit(
            READ, "zoomin", lambda: self.session.zoomin(command), timeout_s
        )

    async def statistics(self) -> dict[str, Any]:
        """Session counters plus the server's own request statistics."""

        def run() -> dict[str, Any]:
            return self.session.statistics()

        payload = await self.submit(READ, "statistics", run)
        payload["server"] = self.stats.snapshot()
        return payload

    async def trace(
        self, qid: int, timeout_s: float | None = None
    ) -> dict[str, Any] | None:
        """The structured trace of query ``qid`` (reader lane).

        None when the qid was never executed here or its trace aged out
        of the session's bounded history.
        """
        return await self.submit(
            READ, "trace", lambda: self.session.trace(qid), timeout_s
        )

    # -- write operations -----------------------------------------------

    async def add_annotations(
        self,
        specs: Sequence[Mapping[str, Any]],
        timeout_s: float | None = None,
    ) -> list[Annotation]:
        """Bulk-ingest annotations on the writer lane."""
        return await self.submit(
            WRITE,
            "add_annotations",
            lambda: self.session.add_annotations(specs),
            timeout_s,
        )

    async def insert_many(
        self,
        table: str,
        rows: Sequence[Sequence[Any]],
        timeout_s: float | None = None,
    ) -> list[int]:
        """Bulk-insert base rows on the writer lane."""
        return await self.submit(
            WRITE,
            "insert_many",
            lambda: self.session.insert_many(table, rows),
            timeout_s,
        )

    async def execute(
        self, statement: str, timeout_s: float | None = None
    ) -> Any:
        """Run any supported statement, routed to the right lane.

        SELECT and ZOOMIN go to the reader lane; DDL/DML (CREATE TABLE,
        INSERT INTO, DELETE FROM, ...) go to the writer lane.  The
        classification is lexical on the first keyword, mirroring
        :meth:`InsightNotes.execute`'s dispatch.
        """
        head = statement.lstrip().split(None, 1)
        keyword = head[0].upper() if head else ""
        lane = READ if keyword in ("SELECT", "ZOOMIN") else WRITE
        return await self.submit(
            lane,
            f"execute:{keyword.lower() or 'empty'}",
            lambda: self.session.execute(statement),
            timeout_s,
        )
