"""The annotation service layer.

Runs the :class:`~repro.engine.session.InsightNotes` library as a
long-lived served system: an asyncio request front end bridged to the
synchronous engine over bounded thread-pool lanes, with reader/writer
admission control, per-request deadlines, structured request
statistics, and graceful drain-and-flush shutdown.  A JSON-lines TCP
transport (:mod:`repro.serve.tcp`) and a CLI entry point
(``python -m repro.serve``) make it a standalone process; the
:class:`AnnotationServer` facade alone embeds in any asyncio
application.  See DESIGN.md §12.
"""

from repro.errors import (
    RequestTimeoutError,
    ServeError,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.serve.server import AnnotationServer, ServerConfig
from repro.serve.stats import RequestContext, ServerStats
from repro.serve.tcp import TcpAnnotationServer

__all__ = [
    "AnnotationServer",
    "RequestContext",
    "RequestTimeoutError",
    "ServeError",
    "ServerClosedError",
    "ServerConfig",
    "ServerOverloadedError",
    "ServerStats",
    "TcpAnnotationServer",
]
