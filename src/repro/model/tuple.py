"""The extended tuple of InsightNotes' data model.

Every tuple flowing through the summary-aware query engine carries:

* its attribute ``values`` under the current operator schema,
* its ``summaries`` — one summary object per summary instance linked to the
  originating relation(s), and
* an ``attachments`` map recording, for each raw annotation that contributed
  to those summaries, which of the tuple's *current* columns the annotation
  is attached to.

The attachments map is what makes the extended projection semantics
(Theorems 1–2 of the engine paper) computable anywhere in the plan: when a
projection drops columns, every annotation whose remaining attachment set
becomes empty has its effect removed from the tuple's summary objects —
without ever fetching the raw annotation text.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.summaries.base import SummaryObject


@dataclass(slots=True)
class AnnotatedTuple:
    """A tuple plus its annotation summaries.

    Parameters
    ----------
    values:
        Attribute values, positionally aligned with the operator's output
        schema (the operator owns the column-name list).
    summaries:
        Mapping of summary-instance name to the summary object describing
        this tuple's annotations under that instance.
    attachments:
        Mapping of annotation id to the frozenset of column names (in the
        current schema) the annotation is attached to.  Only annotations
        whose effect is still present in ``summaries`` appear here.
    source_rows:
        ``(table, row_id)`` pairs of the base rows this tuple derives from.
        Used by zoom-in execution and the under-the-hood operator log.
    """

    values: tuple[Any, ...]
    summaries: dict[str, "SummaryObject"] = field(default_factory=dict)
    attachments: dict[int, frozenset[str]] = field(default_factory=dict)
    source_rows: frozenset[tuple[str, int]] = field(default_factory=frozenset)

    def copy(self) -> "AnnotatedTuple":
        """Deep-enough copy: summary objects are copied, values shared."""
        return AnnotatedTuple(
            values=self.values,
            summaries={name: obj.copy() for name, obj in self.summaries.items()},
            attachments=dict(self.attachments),
            source_rows=self.source_rows,
        )

    def annotation_ids(self) -> frozenset[int]:
        """Ids of all annotations still contributing to this tuple."""
        return frozenset(self.attachments)

    def annotations_on_columns(self, columns: Iterable[str]) -> set[int]:
        """Annotation ids attached to at least one of ``columns``."""
        wanted = set(columns)
        return {
            annotation_id
            for annotation_id, cols in self.attachments.items()
            if cols & wanted
        }

    def restrict_attachments(self, kept_columns: Sequence[str]) -> set[int]:
        """Narrow attachments to ``kept_columns``; return dropped ids.

        For every annotation, the attachment set is intersected with the
        kept columns.  Annotations whose intersection is empty are removed
        from the map and their ids returned — the caller is responsible for
        removing their effect from the summary objects.
        """
        kept = set(kept_columns)
        dropped: set[int] = set()
        narrowed: dict[int, frozenset[str]] = {}
        for annotation_id, cols in self.attachments.items():
            remaining = cols & kept
            if remaining:
                narrowed[annotation_id] = frozenset(remaining)
            else:
                dropped.add(annotation_id)
        self.attachments = narrowed
        return dropped

    def rename_attachment_columns(self, mapping: Mapping[str, str]) -> None:
        """Rewrite attachment column names through ``mapping``.

        Columns absent from the mapping keep their name.  Used when an
        operator renames its output schema (e.g. alias-qualified join
        output).
        """
        self.attachments = {
            annotation_id: frozenset(mapping.get(col, col) for col in cols)
            for annotation_id, cols in self.attachments.items()
        }

    def total_summary_size(self) -> int:
        """Sum of the size estimates of all attached summary objects."""
        return sum(obj.size_estimate() for obj in self.summaries.values())
