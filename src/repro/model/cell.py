"""Cell and column references.

Annotations in InsightNotes attach at *cell granularity*: one annotation may
cover a single cell, several cells of one tuple, or whole rows (every cell
of the tuple).  Projection semantics depend on this: when a query projects
out column ``c``, the effect of every annotation attached **only** to cells
of ``c`` (and other projected-out columns) must be removed from the tuple's
summary objects.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class ColumnRef:
    """A ``table.column`` reference."""

    table: str
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}"


@dataclass(frozen=True, slots=True)
class CellRef:
    """A single cell: a column of one stored row.

    ``row_id`` is the storage-level rowid of the base tuple; summaries and
    annotations are keyed off it, so it must be stable across queries.
    """

    table: str
    row_id: int
    column: str

    @property
    def column_ref(self) -> ColumnRef:
        """The column this cell belongs to."""
        return ColumnRef(self.table, self.column)

    def __str__(self) -> str:
        return f"{self.table}[{self.row_id}].{self.column}"
