"""Extended data model of InsightNotes.

The paper's model attaches free-text **annotations** to sets of table cells
(:class:`~repro.model.cell.CellRef`), and extends every tuple flowing
through the query engine into an :class:`~repro.model.tuple.AnnotatedTuple`
that carries its attribute values *plus* the summary objects describing the
raw annotations on those values.
"""

from repro.model.annotation import Annotation, AnnotationKind
from repro.model.cell import CellRef, ColumnRef
from repro.model.tuple import AnnotatedTuple

__all__ = [
    "Annotation",
    "AnnotationKind",
    "AnnotatedTuple",
    "CellRef",
    "ColumnRef",
]
