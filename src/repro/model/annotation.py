"""The raw annotation object.

An annotation is free text (possibly a large attached document) created by
a user over a set of cells.  InsightNotes never ships these through the
query pipeline — that is the whole point — but they remain the ground truth
that summaries are computed from and that zoom-in queries drill back into.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class AnnotationKind(enum.Enum):
    """Coarse physical kind of an annotation payload.

    ``COMMENT`` covers ordinary free-text values; ``DOCUMENT`` marks
    large-object annotations (attached articles, reports) that the Snippet
    type summarizes.  The kind is physical, not semantic — semantic
    categories (Behavior, Provenance, ...) are produced by Classifier
    summary instances.
    """

    COMMENT = "comment"
    DOCUMENT = "document"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class Annotation:
    """An immutable raw annotation.

    Parameters
    ----------
    annotation_id:
        Storage-assigned unique id (positive integer).
    text:
        The annotation body.  For ``DOCUMENT`` annotations this is the full
        document text.
    author:
        Free-form author identifier (bird watcher, scientist, curator).
    created_at:
        Seconds-since-epoch timestamp assigned at insert time.  Stored
        rather than derived so replays are deterministic.
    kind:
        Physical kind, see :class:`AnnotationKind`.
    title:
        Optional short title for ``DOCUMENT`` annotations ("Wikipedia
        article ...", "Experiment E ...").
    """

    annotation_id: int
    text: str
    author: str = "anonymous"
    created_at: float = 0.0
    kind: AnnotationKind = AnnotationKind.COMMENT
    title: str = ""

    def __post_init__(self) -> None:
        if self.annotation_id <= 0:
            raise ValueError(
                f"annotation_id must be positive, got {self.annotation_id}"
            )

    @property
    def is_document(self) -> bool:
        """True for large-object annotations handled by the Snippet type."""
        return self.kind is AnnotationKind.DOCUMENT

    def display_title(self) -> str:
        """Title if present, otherwise a truncated body preview."""
        if self.title:
            return self.title
        if len(self.text) <= 60:
            return self.text
        return self.text[:57] + "..."
