"""The named-lock registry — one factory for every engine lock.

Every ``threading.Lock`` / ``threading.RLock`` the engine creates goes
through :func:`make_lock` / :func:`make_rlock` with a **stable dotted
name** (``"pool.write"``, ``"zoomin.tiered"``).  The name is the shared
vocabulary of the two lock-discipline enforcement layers:

* **insightlint** (static) reads the ``make_lock("...")`` call sites to
  map lock attributes to names, so IN001/IN007/IN008 findings and the
  DESIGN.md §15 lock inventory all speak in the same identifiers;
* **insightsan** (runtime, ``INSIGHT_SANITIZE=1``) swaps the factory for
  instrumented wrappers that feed a per-thread held-lock stack and a
  global acquisition-order graph — its inversion and
  blocking-under-lock reports name the same locks the static findings
  do.

``guards_io=True`` marks the documented exceptions that exist precisely
to serialize blocking work (SQL transactions, writer checkout): the
single-writer lock, the annotation id sequence, the zoom-in store's
transaction mutex, and the summary manager's write-path re-entrant lock
(DESIGN.md §9/§11/§14).  Both enforcement layers skip
blocking-under-lock diagnostics for them; lock-order tracking still
applies.

The registry records every name ever constructed in this process
(:func:`lock_inventory`), which the tests pin against the documented
inventory so a new lock cannot appear without a name and a review of
its place in the acquisition order.
"""

from __future__ import annotations

import os
import re
import threading
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any, Protocol

#: Lock names are dotted lowercase identifiers — stable across releases,
#: greppable, and legal JSON keys in sanitizer reports.
_NAME_PATTERN = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")


class LockLike(Protocol):
    """What the engine requires of a lock: context manager + acquire."""

    def acquire(self, blocking: bool = ..., timeout: float = ...) -> bool: ...

    def release(self) -> None: ...

    def __enter__(self) -> bool: ...

    def __exit__(self, *exc_info: object) -> Any: ...


@dataclass(frozen=True)
class LockSpec:
    """One registered lock name."""

    name: str
    kind: str  # "lock" | "rlock"
    guards_io: bool


#: Every name constructed in this process, for inventory introspection.
_registry: dict[str, LockSpec] = {}
_registry_guard = threading.Lock()

#: Installed by the sanitizer; None means plain threading locks.
_factory: Callable[[LockSpec], LockLike] | None = None


def sanitize_requested() -> bool:
    """True when the ``INSIGHT_SANITIZE`` environment variable is set."""
    return os.environ.get("INSIGHT_SANITIZE", "").lower() in (
        "1",
        "true",
        "on",
        "yes",
    )


def install_lock_factory(
    factory: Callable[[LockSpec], LockLike] | None,
) -> None:
    """Swap the lock construction hook (the sanitizer's entry point).

    ``None`` restores plain ``threading`` locks.  Locks already handed
    out keep whatever behaviour they were built with — enable the
    sanitizer before constructing the sessions under test.
    """
    global _factory
    _factory = factory


def _register(name: str, kind: str, guards_io: bool) -> LockSpec:
    if not _NAME_PATTERN.match(name):
        raise ValueError(
            f"lock name {name!r} must be a dotted lowercase identifier "
            "(e.g. 'pool.write')"
        )
    spec = LockSpec(name=name, kind=kind, guards_io=guards_io)
    with _registry_guard:
        known = _registry.get(name)
        if known is not None and known != spec:
            raise ValueError(
                f"lock name {name!r} re-registered with a different "
                f"shape: {known} vs {spec}"
            )
        _registry[name] = spec
    return spec


def _build(spec: LockSpec) -> LockLike:
    factory = _factory
    if factory is None and sanitize_requested():
        # Lazily wire the sanitizer up on first construction, so
        # INSIGHT_SANITIZE=1 works without anyone importing it first.
        from repro.analysis.sanitizer import enable

        enable()
        factory = _factory
    if factory is not None:
        return factory(spec)
    if spec.kind == "rlock":
        return threading.RLock()
    return threading.Lock()


def make_lock(name: str, *, guards_io: bool = False) -> LockLike:
    """A named, non-reentrant mutex.

    ``guards_io=True`` documents (and exempts from blocking-under-lock
    diagnostics) a lock whose very purpose is to serialize blocking
    work — see the module docstring for the sanctioned list.
    """
    return _build(_register(name, "lock", guards_io))


def make_rlock(name: str, *, guards_io: bool = False) -> LockLike:
    """A named re-entrant mutex (same contract as :func:`make_lock`)."""
    return _build(_register(name, "rlock", guards_io))


def lock_inventory() -> dict[str, LockSpec]:
    """Every lock name constructed so far, keyed by name."""
    with _registry_guard:
        return dict(_registry)


def held_locks() -> tuple[str, ...]:
    """Names of instrumented locks the calling thread holds (sanitizer
    active), or ``()`` — a debugging/assertion hook for tests."""
    if _factory is None:
        return ()
    from repro.analysis.sanitizer.runtime import current_state

    return current_state().held_names()


__all__ = [
    "LockLike",
    "LockSpec",
    "held_locks",
    "install_lock_factory",
    "lock_inventory",
    "make_lock",
    "make_rlock",
    "sanitize_requested",
]
