"""Recompute-from-scratch maintenance baseline.

The naive alternative to incremental maintenance: whenever an annotation
arrives, rebuild the affected rows' summary objects from *all* their raw
annotations.  Its cost grows with the number of annotations already on the
row, while the incremental path's cost is per-annotation — the gap the
EXP-M1 benchmark measures.

The standalone :func:`rebuild_row` / :func:`rebuild_table` helpers are also
used legitimately: to bootstrap a newly linked instance and to repair state
after non-invertible changes (e.g. retraining a classifier model).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.model.annotation import Annotation
from repro.model.cell import CellRef
from repro.storage.annotations import AnnotationStore
from repro.storage.catalog import SummaryCatalog
from repro.storage.database import Database
from repro.summaries.base import SummaryInstance, SummaryObject


def rebuild_row(
    annotations: AnnotationStore,
    catalog: SummaryCatalog,
    instance: SummaryInstance,
    table: str,
    row_id: int,
    persist: bool = True,
) -> SummaryObject | None:
    """Rebuild one row's summary object from its raw annotations.

    Annotations are applied in id order, which makes rebuilds reproducible
    (order matters for clustering).  Returns the fresh object, or None —
    with any persisted object deleted — when the row has no annotations.
    """
    pairs = annotations.annotations_for_row(table, row_id)
    if not pairs:
        if persist:
            catalog.delete_object(instance.name, table, row_id)
        return None
    obj = instance.new_object()
    for annotation, _columns in pairs:  # already id-ordered by the store
        instance.add_to(obj, annotation, instance.analyze(annotation))
    if persist:
        catalog.save_object(instance.name, table, row_id, obj)
    return obj


def rebuild_table(
    database: Database,
    annotations: AnnotationStore,
    catalog: SummaryCatalog,
    instance_name: str,
    table: str,
) -> int:
    """Rebuild every row of ``table`` for one instance; returns row count."""
    instance = catalog.get_instance(instance_name)
    rebuilt = 0
    for row_id, _values in database.rows(table):
        if rebuild_row(annotations, catalog, instance, table, row_id) is not None:
            rebuilt += 1
    return rebuilt


class RebuildMaintainer:
    """Drop-in maintenance strategy that rebuilds instead of updating.

    Exposes the same ``on_annotation_added`` entry point as
    :class:`~repro.maintenance.incremental.SummaryManager` so benchmarks
    can swap strategies without changing the driving loop.
    """

    def __init__(
        self,
        database: Database,
        annotations: AnnotationStore,
        catalog: SummaryCatalog,
    ) -> None:
        self._db = database
        self._annotations = annotations
        self._catalog = catalog

    def on_annotation_added(
        self, annotation: Annotation, cells: Iterable[CellRef]
    ) -> int:
        """Rebuild the summaries of every row the annotation touches."""
        rows: dict[tuple[str, int], None] = {}
        for cell in cells:
            rows.setdefault((cell.table, cell.row_id), None)
        rebuilt = 0
        for table, row_id in rows:
            for instance in self._catalog.instances_for_table(table):
                rebuild_row(self._annotations, self._catalog, instance, table, row_id)
                rebuilt += 1
        return rebuilt

    def on_annotation_deleted(self, annotation_id: int) -> int:
        """Rebuild the summaries of every row the annotation touched."""
        affected = self._annotations.rows_for_annotation(annotation_id)
        rebuilt = 0
        for table, row_id in sorted(affected):
            for instance in self._catalog.instances_for_table(table):
                rebuild_row(self._annotations, self._catalog, instance, table, row_id)
                rebuilt += 1
        return rebuilt

    def flush(self) -> int:
        """No deferred state; present for interface parity."""
        return 0
