"""Incremental summary maintenance.

:class:`SummaryManager` is the single write path for summary state.  When
an annotation is inserted it:

1. groups the annotation's attached cells by base row,
2. for every summary instance linked to an affected table, loads (or
   creates) the row's summary object,
3. obtains the annotation's contribution — through the summarize-once
   cache when the instance's invariant properties allow — and folds it in,
4. persists the updated object (write-through by default; deferrable for
   bulk loads).

:meth:`SummaryManager.add_annotations` is the batched form of the same
contract — the ingest mirror of the scan pipeline's block prefetch.  A
whole batch is grouped by (table, row) up front, linked instances are
resolved once per table, touched objects are bulk-loaded through the
catalog's block reader, contributions are computed at most once per
(instance, annotation) batch-wide, folding goes through the summary
types' ``fold_many`` hooks, and the write-back is a single
``executemany`` transaction.

Deletion reverses the effect: ids are removed from the objects, and cluster
groups re-elect representatives from their heavy state.

The manager keeps a bounded in-memory object cache so a burst of
annotations on the same hot rows does not round-trip JSON through SQLite
for every insert.

The manager is shared across concurrent queries.  One re-entrant lock
guards every piece of mutable state (object cache, dirty set,
attachments LRU, stats, contribution memo): write paths hold it end to
end — they are serialized anyway by the storage layer's single-writer
lock — while the read paths (:meth:`objects_for_rows`,
:meth:`attachments_for_rows`) probe the caches under the lock, run SQL
with the lock *released*, and re-acquire it to fill, so parallel
hydration workers never serialize on each other's fetches.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.concurrency import make_rlock
from repro.maintenance.invariants import ContributionCache
from repro.model.annotation import Annotation
from repro.model.cell import CellRef
from repro.storage.annotations import AnnotationStore
from repro.storage.catalog import SummaryCatalog
from repro.storage.database import Database
from repro.summaries.base import SummaryInstance, SummaryObject
from repro.summaries.cluster import ClusterSummary


@dataclass
class MaintenanceStats:
    """Counters exposed to the maintenance benchmarks.

    ``objects_updated`` counts *persisted* object writes — an object
    folded many times between flushes in deferred mode counts once, when
    it actually reaches storage.  The batch counters describe the bulk
    ingestion path: ``batches`` / ``batch_rows`` give the ingest shape
    (``rows_per_batch`` in :meth:`as_dict` is their ratio), and
    ``folds_saved`` counts contribution analyses the batch skipped
    because the same annotation had already been analyzed for another
    tuple — the summarize-once guarantee applied batch-wide.
    """

    annotations_processed: int = 0
    objects_updated: int = 0
    objects_created: int = 0
    object_cache_hits: int = 0
    object_cache_misses: int = 0
    batches: int = 0
    batch_rows: int = 0
    folds_saved: int = 0

    @property
    def rows_per_batch(self) -> float:
        """Mean number of distinct base rows touched per ingest batch."""
        return self.batch_rows / self.batches if self.batches else 0.0

    def as_dict(self) -> dict[str, int | float]:
        """Plain-dict view for reporting."""
        return {
            "annotations_processed": self.annotations_processed,
            "objects_updated": self.objects_updated,
            "objects_created": self.objects_created,
            "object_cache_hits": self.object_cache_hits,
            "object_cache_misses": self.object_cache_misses,
            "batches": self.batches,
            "batch_rows": self.batch_rows,
            "rows_per_batch": round(self.rows_per_batch, 3),
            "folds_saved": self.folds_saved,
        }


class SummaryManager:
    """Keeps persisted summary objects current under annotation traffic.

    Parameters
    ----------
    database, annotations, catalog:
        The shared storage stack.
    write_through:
        Persist each updated object immediately (default).  Bulk loaders
        may disable this and call :meth:`flush` once at the end.
    object_cache_size:
        Maximum number of summary objects kept hot in memory.
    attachments_cache_size:
        Maximum number of per-row attachment maps kept hot — a separate
        bound, because attachment maps are far smaller than summary
        objects and the scan path touches one per base row.
    """

    #: Default bound of the per-row attachments LRU.
    DEFAULT_ATTACHMENTS_CACHE_SIZE = 16384

    def __init__(
        self,
        database: Database,
        annotations: AnnotationStore,
        catalog: SummaryCatalog,
        write_through: bool = True,
        object_cache_size: int = 4096,
        attachments_cache_size: int = DEFAULT_ATTACHMENTS_CACHE_SIZE,
    ) -> None:
        if object_cache_size < 1:
            raise ValueError(
                f"object_cache_size must be >= 1, got {object_cache_size}"
            )
        if attachments_cache_size < 1:
            raise ValueError(
                "attachments_cache_size must be >= 1, "
                f"got {attachments_cache_size}"
            )
        self._db = database
        self._annotations = annotations
        self._catalog = catalog
        self.write_through = write_through
        self.contributions = ContributionCache()
        self.stats = MaintenanceStats()
        # Re-entrant: flush() runs inside add_annotations' locked region.
        # guards_io: the write-through path intentionally persists
        # summary objects while this lock serializes maintenance.
        self._lock = make_rlock("maintenance.summary_manager", guards_io=True)
        self._object_cache_size = object_cache_size
        self._attachments_cache_size = attachments_cache_size
        # (instance, table, row_id) -> object; OrderedDict gives LRU order.
        self._objects: OrderedDict[tuple[str, str, int], SummaryObject] = OrderedDict()
        self._dirty: set[tuple[str, str, int]] = set()
        # (table, row_id) -> annotation id -> columns; the scan hot path.
        self._attachments: OrderedDict[
            tuple[str, int], dict[int, frozenset[str]]
        ] = OrderedDict()

    # -- object cache ---------------------------------------------------

    def _get_object(
        self, instance: SummaryInstance, table: str, row_id: int
    ) -> SummaryObject:
        key = (instance.name, table, row_id)
        if key in self._objects:
            self._objects.move_to_end(key)
            self.stats.object_cache_hits += 1
            return self._objects[key]
        self.stats.object_cache_misses += 1
        obj = self._catalog.load_object(instance.name, table, row_id)
        if obj is None:
            obj = instance.new_object()
            self.stats.objects_created += 1
        self._objects[key] = obj
        self._evict_if_needed()
        return obj

    def _evict_if_needed(self) -> None:
        while len(self._objects) > self._object_cache_size:
            key, obj = self._objects.popitem(last=False)
            if key in self._dirty:
                self._catalog.save_object(key[0], key[1], key[2], obj)
                self.stats.objects_updated += 1
                self._dirty.discard(key)

    def _mark_updated(self, key: tuple[str, str, int]) -> None:
        # ``objects_updated`` counts persisted writes, not folds — in
        # deferred mode the counter moves at flush/eviction time instead.
        obj = self._objects[key]
        if self.write_through:
            self._catalog.save_object(key[0], key[1], key[2], obj)
            self.stats.objects_updated += 1
        else:
            self._dirty.add(key)

    def flush(self) -> int:
        """Persist all deferred updates; returns how many were written.

        All dirty objects go out through the catalog's bulk upsert — one
        transaction regardless of how many objects the deferred window
        accumulated.
        """
        with self._lock:
            entries = [
                (key[0], key[1], key[2], obj)
                for key in sorted(self._dirty)
                if (obj := self._objects.get(key)) is not None
            ]
            written = self._catalog.save_objects(entries)
            self.stats.objects_updated += written
            self._dirty.clear()
            return written

    def drop_caches(self) -> None:
        """Flush and empty the object cache (tests, memory pressure)."""
        with self._lock:
            self.flush()
            self._objects.clear()
            self._attachments.clear()

    # -- attachment cache ---------------------------------------------

    def attachments_for_row(
        self, table: str, row_id: int
    ) -> dict[int, frozenset[str]]:
        """Cached annotation-to-columns map for one base row.

        The scan operator asks for this once per row per query; caching it
        here keeps repeated querying off SQLite for rows whose annotations
        have not changed.  Invalidated by every write-path entry point.
        """
        key = (table, row_id)
        with self._lock:
            cached = self._attachments.get(key)
            if cached is not None:
                self._attachments.move_to_end(key)
                return cached
        attachments = self._annotations.attachments_for_row(table, row_id)
        with self._lock:
            self._attachments[key] = attachments
            self._evict_attachments_if_needed()
        return attachments

    def attachments_for_rows(
        self, table: str, row_ids: Iterable[int]
    ) -> dict[int, dict[int, frozenset[str]]]:
        """Attachment maps for a block of base rows, cache-aware.

        Rows already in the attachments LRU are served from memory; the
        misses go to the store in one bulk round-trip and are cached on
        the way out (including empty maps — absence is worth caching).
        """
        result: dict[int, dict[int, frozenset[str]]] = {}
        missing: list[int] = []
        with self._lock:
            for row_id in row_ids:
                key = (table, row_id)
                cached = self._attachments.get(key)
                if cached is not None:
                    self._attachments.move_to_end(key)
                    result[row_id] = cached
                else:
                    missing.append(row_id)
        if missing:
            fetched = self._annotations.attachments_for_rows(table, missing)
            with self._lock:
                for row_id, attachments in fetched.items():
                    self._attachments[(table, row_id)] = attachments
                    result[row_id] = attachments
                self._evict_attachments_if_needed()
        return result

    def _evict_attachments_if_needed(self) -> None:
        while len(self._attachments) > self._attachments_cache_size:
            self._attachments.popitem(last=False)

    def _invalidate_attachments(self, table: str, row_id: int) -> None:
        self._attachments.pop((table, row_id), None)

    # -- write path -------------------------------------------------------

    def on_annotation_added(
        self, annotation: Annotation, cells: Iterable[CellRef]
    ) -> int:
        """Fold a newly stored annotation into all affected summaries.

        Returns the number of summary objects updated.
        """
        with self._lock:
            self.stats.annotations_processed += 1
            rows: dict[tuple[str, int], None] = {}
            for cell in cells:
                rows.setdefault((cell.table, cell.row_id), None)
            updated = 0
            for table, row_id in rows:
                self._invalidate_attachments(table, row_id)
                for instance in self._catalog.instances_for_table(table):
                    obj = self._get_object(instance, table, row_id)
                    if annotation.annotation_id in obj.annotation_ids():
                        continue  # idempotent replay
                    contribution = self.contributions.analyze(instance, annotation)
                    instance.add_to(obj, annotation, contribution)
                    self._mark_updated((instance.name, table, row_id))
                    updated += 1
            return updated

    def add_annotations(
        self, batch: Sequence[tuple[Annotation, Sequence[CellRef]]]
    ) -> int:
        """Fold a batch of newly stored annotations into all summaries.

        The bulk counterpart of :meth:`on_annotation_added`, and the
        engine's ingest hot path.  Per affected table it resolves the
        linked instances **once**, bulk-loads every touched summary
        object through the catalog's block reader, analyzes each
        annotation at most once per instance (batch-wide summarize-once),
        folds per-object through the types' :meth:`fold_many` hooks, and
        persists all updated objects with one ``executemany``
        transaction.  Internally the batch always runs in deferred-write
        mode; with :attr:`write_through` enabled the deferred updates are
        flushed before returning, so callers observe the same durability
        as the single-annotation path.

        Returns the number of summary objects that received new
        contributions.  Folding order matches a loop of single adds, so
        the resulting summary state is identical (order matters for
        non-annotation-invariant types such as clustering).
        """
        batch = [(annotation, list(cells)) for annotation, cells in batch]
        if not batch:
            return 0
        with self._lock:
            self.stats.batches += 1
            self.stats.annotations_processed += len(batch)
            # table -> row_id -> annotations in arrival order (deduplicated:
            # an annotation attached to several cells of a row folds once).
            by_table: dict[str, dict[int, list[Annotation]]] = {}
            for annotation, cells in batch:
                rows_of_annotation: set[tuple[str, int]] = set()
                for cell in cells:
                    target = (cell.table, cell.row_id)
                    if target in rows_of_annotation:
                        continue
                    rows_of_annotation.add(target)
                    by_table.setdefault(cell.table, {}).setdefault(
                        cell.row_id, []
                    ).append(annotation)
            updated = 0
            for table in sorted(by_table):
                row_map = by_table[table]
                self.stats.batch_rows += len(row_map)
                for row_id in row_map:
                    self._invalidate_attachments(table, row_id)
                instances = self._catalog.instances_for_table(table)
                if not instances:
                    continue
                names = [instance.name for instance in instances]
                missing_rows = sorted(
                    row_id
                    for row_id in row_map
                    if any((name, table, row_id) not in self._objects for name in names)
                )
                loaded = (
                    self._catalog.load_objects_for_table(names, table, missing_rows)
                    if missing_rows
                    else {}
                )
                # One contribution per (instance, annotation) for the whole
                # table group, however many rows the annotation covers.
                unique: dict[int, Annotation] = {}
                for annotations in row_map.values():
                    for annotation in annotations:
                        unique.setdefault(annotation.annotation_id, annotation)
                applications = sum(len(v) for v in row_map.values())
                contributions: dict[str, dict[int, object]] = {
                    instance.name: self.contributions.analyze_many(
                        instance, unique.values()
                    )
                    for instance in instances
                }
                self.stats.folds_saved += (applications - len(unique)) * len(instances)
                for row_id in sorted(row_map):
                    annotations = row_map[row_id]
                    for instance in instances:
                        key = (instance.name, table, row_id)
                        obj = self._objects.get(key)
                        if obj is not None:
                            self._objects.move_to_end(key)
                            self.stats.object_cache_hits += 1
                        else:
                            self.stats.object_cache_misses += 1
                            obj = loaded.get((instance.name, row_id))
                            if obj is None:
                                obj = instance.new_object()
                                self.stats.objects_created += 1
                            self._objects[key] = obj
                        folded = obj.fold_many(
                            instance,
                            [
                                (
                                    annotation,
                                    contributions[instance.name][
                                        annotation.annotation_id
                                    ],
                                )
                                for annotation in annotations
                            ],
                        )
                        if folded:
                            self._dirty.add(key)
                            updated += 1
            if self.write_through:
                self.flush()
            self._evict_if_needed()
            return updated

    def on_annotation_deleted(self, annotation_id: int) -> int:
        """Remove a deleted annotation's effect from all summaries.

        Must be called *before* the annotation's attachments are removed
        from the store (it needs them to locate the affected rows).
        Returns the number of summary objects updated.
        """
        affected = self._annotations.rows_for_annotation(annotation_id)
        with self._lock:
            self.contributions.invalidate(annotation_id)
            updated = 0
            for table, row_id in sorted(affected):
                self._invalidate_attachments(table, row_id)
                for instance in self._catalog.instances_for_table(table):
                    obj = self._get_object(instance, table, row_id)
                    if annotation_id not in obj.annotation_ids():
                        continue
                    obj.remove_annotations({annotation_id})
                    if isinstance(obj, ClusterSummary):
                        # The centroid moved; re-elect representatives from
                        # the heavy state kept at maintenance time.
                        for group in obj.groups:
                            if group.vectors is not None:
                                group.rerank()
                    self._mark_updated((instance.name, table, row_id))
                    updated += 1
            return updated

    def on_row_deleted(self, table: str, row_id: int) -> int:
        """Drop all summary state of a deleted base row.

        Returns the number of summary objects removed.  The caller is
        responsible for the annotation-side cascade (deleting or
        detaching the row's annotations).
        """
        removed = 0
        with self._lock:
            self._invalidate_attachments(table, row_id)
            for instance in self._catalog.instances_for_table(table):
                key = (instance.name, table, row_id)
                self._objects.pop(key, None)
                self._dirty.discard(key)
                self._catalog.delete_object(instance.name, table, row_id)
                removed += 1
        return removed

    # -- bootstrap ---------------------------------------------------

    def summarize_table(self, instance_name: str, table: str) -> int:
        """Build summaries for every existing row of ``table``.

        Used when an instance is linked to a table that already carries
        annotations — the FIG4 extensibility scenario.  Existing summary
        state for the pair is replaced.  Returns the number of rows
        summarized (rows without annotations get no object).
        """
        instance = self._catalog.get_instance(instance_name)
        summarized = 0
        with self._lock:
            for row_id, _values in self._db.rows(table):
                pairs = self._annotations.annotations_for_row(table, row_id)
                key = (instance.name, table, row_id)
                self._objects.pop(key, None)
                self._dirty.discard(key)
                if not pairs:
                    self._catalog.delete_object(instance.name, table, row_id)
                    continue
                obj = instance.new_object()
                for annotation, _columns in pairs:
                    contribution = self.contributions.analyze(instance, annotation)
                    instance.add_to(obj, annotation, contribution)
                self._catalog.save_object(instance.name, table, row_id, obj)
                summarized += 1
        return summarized

    # -- reads --------------------------------------------------------

    def current_object(
        self, instance_name: str, table: str, row_id: int
    ) -> SummaryObject | None:
        """The up-to-date summary object for one row, cache-aware.

        Routed through :meth:`objects_for_rows` so the single-row path
        and the scan block path share one implementation (and one set of
        cache semantics).
        """
        return self.objects_for_rows((instance_name,), table, (row_id,)).get(
            (instance_name, row_id)
        )

    def objects_for_rows(
        self,
        instance_names: Iterable[str],
        table: str,
        row_ids: Iterable[int],
    ) -> dict[tuple[str, int], SummaryObject]:
        """Up-to-date summary objects for a block of rows, cache-aware.

        The manager's write cache wins (it may hold not-yet-flushed
        objects); everything else is one bulk catalog read.  Pairs with
        no summary state are simply absent from the result.  Returned
        objects are live — callers must take ``for_query()`` or
        ``copy()`` before mutating.
        """
        names = list(instance_names)
        ids = list(row_ids)
        result: dict[tuple[str, int], SummaryObject] = {}
        missing_ids: set[int] = set()
        with self._lock:
            for row_id in ids:
                for name in names:
                    key = (name, table, row_id)
                    if key in self._objects:
                        self._objects.move_to_end(key)
                        self.stats.object_cache_hits += 1
                        result[(name, row_id)] = self._objects[key]
                    else:
                        missing_ids.add(row_id)
        if missing_ids:
            loaded = self._catalog.load_objects_for_table(
                names, table, sorted(missing_ids)
            )
            for (name, row_id), obj in loaded.items():
                # Don't pollute the write cache with read-path objects;
                # the catalog keeps its own deserialization LRU.
                result.setdefault((name, row_id), obj)
        return result
