"""Incremental maintenance of annotation summaries.

InsightNotes keeps summaries current under a continuous stream of new
annotations.  :class:`~repro.maintenance.incremental.SummaryManager` is the
write path used by the session facade: every annotation insert updates the
summary objects of the affected rows in place.  The summarize-once
optimization (:mod:`repro.maintenance.invariants`) caches the per-annotation
analysis when the instance's invariant properties permit, so an annotation
attached to many tuples is analyzed once.  The recompute-from-scratch
baseline (:mod:`repro.maintenance.rebuild`) exists for comparison and for
bootstrapping newly linked instances.
"""

from repro.maintenance.incremental import MaintenanceStats, SummaryManager
from repro.maintenance.invariants import ContributionCache
from repro.maintenance.rebuild import RebuildMaintainer, rebuild_row, rebuild_table

__all__ = [
    "ContributionCache",
    "MaintenanceStats",
    "RebuildMaintainer",
    "SummaryManager",
    "rebuild_row",
    "rebuild_table",
]
