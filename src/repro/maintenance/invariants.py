"""The summarize-once optimization.

A summary instance declares two Boolean properties (§2.3 of the demo
paper): ``AnnotationInvariant`` — summarizing a new annotation does not
depend on the tuple's current annotations — and ``DataInvariant`` — it does
not depend on the tuple's attribute values.  When **both** hold, the result
of analyzing an annotation is identical for every tuple it attaches to, so
the system computes it once and reuses it.

:class:`ContributionCache` implements exactly that: a per-instance memo of
``analyze`` results keyed by annotation id, consulted only when the
instance's properties allow.  The hit/miss counters feed the EXP-M2
benchmark, which measures the speedup on annotations attached to many
tuples.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from typing import Any

from repro.model.annotation import Annotation
from repro.summaries.base import SummaryInstance


@dataclass
class CacheStats:
    """Hit/miss counters for one contribution cache."""

    hits: int = 0
    misses: int = 0
    bypasses: int = 0

    @property
    def analyze_calls(self) -> int:
        """How many times the underlying ``analyze`` actually ran."""
        return self.misses + self.bypasses

    @property
    def hit_ratio(self) -> float:
        """Fraction of cacheable lookups served from the memo."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ContributionCache:
    """Memoizes ``instance.analyze(annotation)`` per annotation id.

    Instances whose properties do not satisfy
    :attr:`~repro.summaries.base.InstanceProperties.summarize_once` bypass
    the cache entirely — their analysis is recomputed on every application,
    which is the correct (if slower) behaviour for e.g. clustering.
    """

    def __init__(self, max_entries: int = 100_000) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._max_entries = max_entries
        self._memo: dict[tuple[str, int], Any] = {}
        self.stats = CacheStats()

    def analyze(self, instance: SummaryInstance, annotation: Annotation) -> Any:
        """Return the contribution, cached when the instance permits."""
        if not instance.properties.summarize_once:
            self.stats.bypasses += 1
            return instance.analyze(annotation)
        key = (instance.name, annotation.annotation_id)
        if key in self._memo:
            self.stats.hits += 1
            return self._memo[key]
        self.stats.misses += 1
        contribution = instance.analyze(annotation)
        if len(self._memo) >= self._max_entries:
            # Simple FIFO trim: drop the oldest half.  The cache is a pure
            # performance aid, so occasional eviction only costs recompute.
            for stale_key in list(self._memo)[: self._max_entries // 2]:
                del self._memo[stale_key]
        self._memo[key] = contribution
        return contribution

    def analyze_many(
        self, instance: SummaryInstance, annotations: Iterable[Annotation]
    ) -> dict[int, Any]:
        """Batch contributions, computed at most once per annotation.

        The bulk ingestion path's view of the cache: for summarize-once
        instances the global memo applies as usual, so an annotation
        attached to many tuples — within this batch or across batches —
        is analyzed exactly once (the AnnotationInvariant guarantee).
        Other instances bypass the memo but are still analyzed only once
        *per batch*: ``analyze`` is a function of the annotation alone
        (it is ``add_to`` that may depend on the tuple's object state),
        so the per-application recompute of the sequential path is pure
        waste the batch can skip without changing any result.
        """
        contributions: dict[int, Any] = {}
        if instance.properties.summarize_once:
            for annotation in annotations:
                if annotation.annotation_id not in contributions:
                    contributions[annotation.annotation_id] = self.analyze(
                        instance, annotation
                    )
            return contributions
        for annotation in annotations:
            if annotation.annotation_id in contributions:
                continue
            self.stats.bypasses += 1
            contributions[annotation.annotation_id] = instance.analyze(annotation)
        return contributions

    def invalidate(self, annotation_id: int) -> None:
        """Drop all memo entries for one annotation (after deletion)."""
        stale = [key for key in self._memo if key[1] == annotation_id]
        for key in stale:
            del self._memo[key]

    def invalidate_instance(self, instance_name: str) -> None:
        """Drop all memo entries for one instance (after reconfiguration)."""
        stale = [key for key in self._memo if key[0] == instance_name]
        for key in stale:
            del self._memo[key]

    def clear(self) -> None:
        """Empty the memo without resetting statistics."""
        self._memo.clear()

    def __len__(self) -> int:
        return len(self._memo)
