"""Exception hierarchy for the InsightNotes reproduction.

Every error raised by the library derives from :class:`InsightNotesError`,
so callers can catch one base class at the API boundary.  Subclasses are
grouped by subsystem (storage, catalog, query engine, zoom-in) and carry
enough context in their message to diagnose the failure without a debugger.
"""

from __future__ import annotations


class InsightNotesError(Exception):
    """Base class for all errors raised by this library."""


class StorageError(InsightNotesError):
    """A failure in the SQLite-backed storage layer."""


class SchemaError(StorageError):
    """A table or column was declared or referenced inconsistently."""


class UnknownTableError(SchemaError):
    """A referenced table does not exist in the database."""

    def __init__(self, table: str) -> None:
        super().__init__(f"unknown table: {table!r}")
        self.table = table


class UnknownColumnError(SchemaError):
    """A referenced column does not exist in its table."""

    def __init__(self, table: str, column: str) -> None:
        super().__init__(f"unknown column: {table!r}.{column!r}")
        self.table = table
        self.column = column


class AnnotationError(InsightNotesError):
    """An annotation operation failed (bad attachment, missing id, ...)."""


class UnknownAnnotationError(AnnotationError):
    """A referenced annotation id does not exist."""

    def __init__(self, annotation_id: int) -> None:
        super().__init__(f"unknown annotation id: {annotation_id}")
        self.annotation_id = annotation_id


class CatalogError(InsightNotesError):
    """A summary-catalog operation failed."""


class UnknownSummaryTypeError(CatalogError):
    """A summary type name is not registered with the engine."""

    def __init__(self, type_name: str) -> None:
        super().__init__(f"unknown summary type: {type_name!r}")
        self.type_name = type_name


class UnknownInstanceError(CatalogError):
    """A summary instance id/name is not defined in the catalog."""

    def __init__(self, instance: str) -> None:
        super().__init__(f"unknown summary instance: {instance!r}")
        self.instance = instance


class DuplicateInstanceError(CatalogError):
    """A summary instance with the same name already exists."""

    def __init__(self, instance: str) -> None:
        super().__init__(f"summary instance already exists: {instance!r}")
        self.instance = instance


class QueryError(InsightNotesError):
    """A query could not be parsed, planned, or executed."""


class SQLSyntaxError(QueryError):
    """The SQL text could not be parsed.

    Carries the offending position so front-ends can point at it.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class PlanError(QueryError):
    """A logical plan was structurally invalid."""


class ExpressionError(QueryError):
    """A predicate or expression could not be evaluated."""


class ZoomInError(InsightNotesError):
    """A zoom-in command failed."""


class UnknownQueryIdError(ZoomInError):
    """The referenced QID is not present in the result registry."""

    def __init__(self, qid: int) -> None:
        super().__init__(f"unknown query id: {qid}")
        self.qid = qid


class ZoomInSyntaxError(ZoomInError):
    """The ZOOMIN command text could not be parsed."""


class MaintenanceError(InsightNotesError):
    """Incremental summary maintenance failed."""


class ServeError(InsightNotesError):
    """A failure in the annotation service layer."""


class ServerOverloadedError(ServeError):
    """A request was rejected because its admission queue is full.

    The 429-style backpressure signal: the server is healthy but the
    per-class (reader/writer) queue has no room, so the client should
    back off and retry rather than pile more work on.
    """

    def __init__(self, op_class: str, capacity: int) -> None:
        super().__init__(
            f"server overloaded: {op_class} admission queue is full "
            f"(capacity {capacity}); retry later"
        )
        self.op_class = op_class
        self.capacity = capacity


class ServerClosedError(ServeError):
    """A request arrived while the server is draining or stopped."""

    def __init__(self, state: str = "closed") -> None:
        super().__init__(
            f"server is {state}: no new requests are admitted"
        )
        self.state = state


class RequestTimeoutError(ServeError):
    """A request exceeded the server's per-request deadline.

    The worker thread running the request cannot be interrupted (CPython
    threads are not cancellable), so the underlying work may still
    complete and be counted in the drain — only the *caller* stops
    waiting.  See DESIGN.md §12 for the bridge caveats.
    """

    def __init__(self, op: str, timeout_s: float) -> None:
        super().__init__(
            f"request {op!r} exceeded the {timeout_s:.3f}s deadline"
        )
        self.op = op
        self.timeout_s = timeout_s
