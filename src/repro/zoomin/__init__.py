"""Zoom-in query processing.

After a query returns tuples with attached summary objects, users drill
back into the raw annotations behind a specific summary component — a
classifier label, a cluster group, or a snippet — with the ZOOMIN command
(§2.2, Figure 3):

    ZOOMIN REFERENCE QID = 101 WHERE C1 = 'x' ON NaiveBayesClass INDEX 1

Execution is served by a limited cache in which query results compete for
space under the **RCO** replacement policy (Recency, Complexity, Overhead
+ zoom-in reference frequency); LRU / LFU / FIFO / size-based baselines
are provided for the EXP-Z1 benchmark.
"""

from repro.zoomin.cache import CacheStats, ZoomInCache
from repro.zoomin.command import ZoomInCommand, parse_zoomin
from repro.zoomin.executor import ZoomInExecutor, ZoomInMatch, ZoomInResult
from repro.zoomin.policies import (
    FIFOPolicy,
    LFUPolicy,
    LRUPolicy,
    ReplacementPolicy,
    SizePolicy,
)
from repro.zoomin.rco import RCOPolicy

__all__ = [
    "CacheStats",
    "FIFOPolicy",
    "LFUPolicy",
    "LRUPolicy",
    "RCOPolicy",
    "ReplacementPolicy",
    "SizePolicy",
    "ZoomInCache",
    "ZoomInCommand",
    "ZoomInExecutor",
    "ZoomInMatch",
    "ZoomInResult",
    "parse_zoomin",
]
