"""Zoom-in query processing.

After a query returns tuples with attached summary objects, users drill
back into the raw annotations behind a specific summary component — a
classifier label, a cluster group, or a snippet — with the ZOOMIN command
(§2.2, Figure 3):

    ZOOMIN REFERENCE QID = 101 WHERE C1 = 'x' ON NaiveBayesClass INDEX 1

Execution is served by a limited cache in which query results compete for
space under the **RCO** replacement policy (Recency, Complexity, Overhead
+ zoom-in reference frequency); LRU / LFU / FIFO / size-based baselines
are provided for the EXP-Z1 benchmark.  The production path is the
two-tier :class:`TieredZoomInCache` (memory over SQLite) with cost-aware
admission and single-flight recompute; :class:`ZoomInCache` is the
single-tier prototype kept for the policy benchmarks.
"""

from repro.zoomin.admission import (
    AdmissionPolicy,
    AdmissionVerdict,
    AdmitAll,
    CostAwareAdmission,
)
from repro.zoomin.cache import CacheStats, ZoomInCache
from repro.zoomin.command import ZoomInCommand, parse_zoomin
from repro.zoomin.executor import ZoomInExecutor, ZoomInMatch, ZoomInResult
from repro.zoomin.policies import (
    FIFOPolicy,
    LFUPolicy,
    LRUPolicy,
    ReplacementPolicy,
    SizePolicy,
)
from repro.zoomin.rco import RCOPolicy, RCOWeights
from repro.zoomin.stores import (
    MemoryResultStore,
    ResultStore,
    SQLiteResultStore,
    StoredEntryMeta,
)
from repro.zoomin.tiered import TieredZoomInCache, TierCounters
from repro.zoomin.tracing import (
    CacheEvent,
    QueryTrace,
    TraceStore,
    plan_fingerprint,
)

__all__ = [
    "AdmissionPolicy",
    "AdmissionVerdict",
    "AdmitAll",
    "CacheEvent",
    "CacheStats",
    "CostAwareAdmission",
    "FIFOPolicy",
    "LFUPolicy",
    "LRUPolicy",
    "MemoryResultStore",
    "QueryTrace",
    "RCOPolicy",
    "RCOWeights",
    "ReplacementPolicy",
    "ResultStore",
    "SQLiteResultStore",
    "SizePolicy",
    "StoredEntryMeta",
    "TieredZoomInCache",
    "TierCounters",
    "TraceStore",
    "ZoomInCache",
    "ZoomInCommand",
    "ZoomInExecutor",
    "ZoomInMatch",
    "ZoomInResult",
    "parse_zoomin",
    "plan_fingerprint",
]
