"""The zoom-in result cache.

Query results are materialized into a limited cache where they "compete
with each other" (§2.2) to serve future zoom-in operations.  The cache
charges each result its estimated size; when capacity is exceeded the
configured replacement policy picks victims.  A result larger than the
whole cache is simply not admitted.

All timing is a logical clock (one tick per cache operation) so that
replacement behaviour is deterministic and testable.

The cache is shared across concurrent queries; one re-entrant lock
serializes every operation (entries, the logical clock, the byte budget,
and the backing store move together — there is no safe partial view).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.concurrency import make_rlock
from repro.engine.results import QueryResult
from repro.zoomin.policies import CacheEntry, LRUPolicy, ReplacementPolicy
from repro.zoomin.stores import MemoryResultStore, ResultStore


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for benchmark reporting."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    rejected: int = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ZoomInCache:
    """Bounded result cache with pluggable replacement.

    Parameters
    ----------
    capacity_bytes:
        Total budget charged against
        :meth:`~repro.engine.results.QueryResult.size_estimate`.
    policy:
        Replacement policy; defaults to LRU (the RCO policy is what the
        session installs — see :class:`repro.zoomin.rco.RCOPolicy`).
    """

    def __init__(
        self,
        capacity_bytes: int = 4 * 1024 * 1024,
        policy: ReplacementPolicy | None = None,
        store: ResultStore | None = None,
    ) -> None:
        if capacity_bytes < 1:
            raise ValueError(f"capacity_bytes must be >= 1, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.policy = policy or LRUPolicy()
        self.store = store or MemoryResultStore()
        self.stats = CacheStats()
        self._entries: dict[int, CacheEntry] = {}
        self._clock = 0
        self._bytes_used = 0
        self._lock = make_rlock("zoomin.cache")

    # -- clock ----------------------------------------------------------

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    @property
    def bytes_used(self) -> int:
        """Space currently charged."""
        with self._lock:
            return self._bytes_used

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, qid: int) -> bool:
        with self._lock:
            return qid in self._entries

    # -- operations ----------------------------------------------------

    def get(self, qid: int) -> QueryResult | None:
        """Look up a result, recording the zoom-in reference."""
        with self._lock:
            now = self._tick()
            entry = self._entries.get(qid)
            if entry is None:
                self.stats.misses += 1
                return None
            entry.last_access = now
            entry.access_count += 1
            self.stats.hits += 1
            result = self.store.get(qid)
            assert result is not None, (
                f"cache entry without stored result: {qid}"
            )
            return result

    def put(self, result: QueryResult) -> bool:
        """Admit ``result``, evicting victims as needed.

        Returns False when the result alone exceeds the capacity and is
        therefore rejected.  Re-putting an existing QID refreshes it.
        """
        with self._lock:
            now = self._tick()
            if result.qid in self._entries:
                self._evict_one(result.qid)
            size = self.store.put(result)
            if size > self.capacity_bytes:
                self.store.delete(result.qid)
                self.stats.rejected += 1
                return False
            while self._bytes_used + size > self.capacity_bytes:
                victim = self.policy.victim(list(self._entries.values()), now)
                self._evict_one(victim.qid)
                self.stats.evictions += 1
            self._entries[result.qid] = CacheEntry(
                qid=result.qid,
                size_bytes=size,
                cost=result.plan_cost,
                inserted_at=now,
                last_access=now,
                access_count=0,
            )
            self._bytes_used += size
            self.stats.insertions += 1
            return True

    def _evict_one(self, qid: int) -> None:
        entry = self._entries.pop(qid, None)
        if entry is not None:
            self._bytes_used -= entry.size_bytes
            self.store.delete(qid)

    def invalidate(self, qid: int) -> None:
        """Drop one result (e.g. its base data changed)."""
        with self._lock:
            self._evict_one(qid)

    def clear(self) -> None:
        """Drop everything, keeping statistics."""
        with self._lock:
            self.store.clear()
            self._entries.clear()
            self._bytes_used = 0

    def resident_qids(self) -> list[int]:
        """QIDs currently cached, sorted."""
        with self._lock:
            return sorted(self._entries)

    def stats_json(self) -> dict:
        """Counters in the same shape the tiered cache exports, so
        ``session.statistics()["zoomin"]`` has one schema regardless of
        which cache the session runs."""
        with self._lock:
            return {
                "memory_hits": self.stats.hits,
                "disk_hits": 0,
                "misses": self.stats.misses,
                "hit_ratio": round(self.stats.hit_ratio, 4),
                "insertions": self.stats.insertions,
                "memory_evictions": self.stats.evictions,
                "disk_evictions": 0,
                "rejected_oversize": self.stats.rejected,
                "tiers": {
                    "memory": {
                        "capacity_bytes": self.capacity_bytes,
                        "bytes_used": self._bytes_used,
                        "entries": len(self._entries),
                    },
                },
                "policy": self.policy.name,
            }
