"""Result-store backends for the zoom-in cache.

The paper describes a *disk-based* cache where query results are
materialized to serve future zoom-ins (§2.2).  The cache's replacement
logic is storage-agnostic; these backends supply the storage:

* :class:`MemoryResultStore` — results kept as live objects (fast, the
  default for interactive sessions);
* :class:`SQLiteResultStore` — results serialized to a SQLite file, the
  faithful disk-based materialization.  Charged bytes are the actual
  serialized payload sizes.
"""

from __future__ import annotations

import abc
import json

from repro.engine.results import QueryResult
from repro.storage.pool import connect
from repro.summaries.registry import SummaryTypeRegistry, default_registry


class ResultStore(abc.ABC):
    """Storage backend contract for cached query results."""

    @abc.abstractmethod
    def put(self, result: QueryResult) -> int:
        """Store ``result``; returns the bytes to charge against capacity."""

    @abc.abstractmethod
    def get(self, qid: int) -> QueryResult | None:
        """Fetch a stored result, or None."""

    @abc.abstractmethod
    def delete(self, qid: int) -> None:
        """Drop a stored result (no-op when absent)."""

    @abc.abstractmethod
    def clear(self) -> None:
        """Drop everything."""


class MemoryResultStore(ResultStore):
    """Keeps results as live Python objects."""

    def __init__(self) -> None:
        self._results: dict[int, QueryResult] = {}

    def put(self, result: QueryResult) -> int:
        self._results[result.qid] = result
        return result.size_estimate()

    def get(self, qid: int) -> QueryResult | None:
        return self._results.get(qid)

    def delete(self, qid: int) -> None:
        self._results.pop(qid, None)

    def clear(self) -> None:
        self._results.clear()


class SQLiteResultStore(ResultStore):
    """Materializes results as JSON rows in a SQLite file.

    ``path`` defaults to a private in-memory SQLite database, which still
    exercises the full serialize/deserialize path; pass a filename for a
    genuinely disk-resident cache.
    """

    def __init__(
        self,
        path: str = ":memory:",
        registry: SummaryTypeRegistry | None = None,
    ) -> None:
        self._registry = registry or default_registry()
        # check_same_thread=False (the pool factory's default): cache
        # admissions can come from any query thread; the ZoomInCache
        # lock serializes all store calls.
        self._connection = connect(path)
        self._connection.execute(
            """
            CREATE TABLE IF NOT EXISTS cached_results (
                qid INTEGER PRIMARY KEY,
                payload TEXT NOT NULL
            )
            """
        )

    def put(self, result: QueryResult) -> int:
        payload = json.dumps(result.to_json())
        with self._connection:
            self._connection.execute(
                """
                INSERT INTO cached_results (qid, payload) VALUES (?, ?)
                ON CONFLICT (qid) DO UPDATE SET payload = excluded.payload
                """,
                (result.qid, payload),
            )
        return len(payload)

    def get(self, qid: int) -> QueryResult | None:
        row = self._connection.execute(
            "SELECT payload FROM cached_results WHERE qid = ?", (qid,)
        ).fetchone()
        if row is None:
            return None
        return QueryResult.from_json(json.loads(row[0]), self._registry)

    def delete(self, qid: int) -> None:
        with self._connection:
            self._connection.execute(
                "DELETE FROM cached_results WHERE qid = ?", (qid,)
            )

    def clear(self) -> None:
        with self._connection:
            self._connection.execute("DELETE FROM cached_results")

    def close(self) -> None:
        """Close the backing connection."""
        self._connection.close()
