"""Result-store backends for the zoom-in cache.

The paper describes a *disk-based* cache where query results are
materialized to serve future zoom-ins (§2.2).  The cache's replacement
logic is storage-agnostic; these backends supply the storage:

* :class:`MemoryResultStore` — results kept as live objects (fast, the
  default for interactive sessions);
* :class:`SQLiteResultStore` — results serialized to a SQLite file, the
  faithful disk-based materialization.

**Byte accounting differs by tier, deliberately.**  The memory store
charges :meth:`~repro.engine.results.QueryResult.size_estimate` — an
estimate of the *live object* footprint, which is what a memory budget
actually bounds.  The SQLite store charges the encoded UTF-8 byte
length of the serialized payload — the bytes that actually land on
disk.  (It used to charge ``len(payload)``, the *character* count,
which undercharges any result carrying non-ASCII annotation text; see
the regression tests in ``tests/zoomin/test_stores.py``.  Payloads are
dumped with ``ensure_ascii=False`` so the file holds real UTF-8 rather
than escape sequences.)

The SQLite store also persists the RCO bookkeeping (``size_bytes``,
``cost``, ``access_count``, ``last_access``) next to each payload, so a
restarted process can rebuild its cache metadata from disk instead of
starting cold — see :meth:`SQLiteResultStore.load_metadata` and the
tiered cache's warm start.
"""

from __future__ import annotations

import abc
import json
from dataclasses import dataclass

from repro.concurrency import make_lock
from repro.engine.results import QueryResult
from repro.storage.pool import connect
from repro.summaries.registry import SummaryTypeRegistry, default_registry


class ResultStore(abc.ABC):
    """Storage backend contract for cached query results."""

    @abc.abstractmethod
    def put(self, result: QueryResult) -> int:
        """Store ``result``; returns the bytes to charge against capacity."""

    @abc.abstractmethod
    def get(self, qid: int) -> QueryResult | None:
        """Fetch a stored result, or None."""

    @abc.abstractmethod
    def delete(self, qid: int) -> None:
        """Drop a stored result (no-op when absent)."""

    @abc.abstractmethod
    def clear(self) -> None:
        """Drop everything."""


class MemoryResultStore(ResultStore):
    """Keeps results as live Python objects.

    Charges ``size_estimate()`` — the estimated in-memory footprint —
    because what a memory tier's budget bounds is resident object
    bytes, not what serialization would produce.
    """

    def __init__(self) -> None:
        self._results: dict[int, QueryResult] = {}

    def put(self, result: QueryResult) -> int:
        self._results[result.qid] = result
        return result.size_estimate()

    def get(self, qid: int) -> QueryResult | None:
        return self._results.get(qid)

    def delete(self, qid: int) -> None:
        self._results.pop(qid, None)

    def clear(self) -> None:
        self._results.clear()


@dataclass(frozen=True)
class StoredEntryMeta:
    """Replacement-relevant metadata of one persisted cache entry."""

    qid: int
    size_bytes: int
    cost: float
    access_count: int
    last_access: int


class SQLiteResultStore(ResultStore):
    """Materializes results as JSON rows in a SQLite file.

    ``path`` defaults to a private in-memory SQLite database, which still
    exercises the full serialize/deserialize path; pass a filename for a
    genuinely disk-resident cache.

    Alongside each payload the store persists the entry's replacement
    metadata, written by :meth:`put` and refreshed by
    :meth:`update_access`, so RCO state survives a process restart
    (:meth:`load_metadata`).
    """

    #: Metadata columns added to the original (qid, payload) schema;
    #: pre-existing cache files are migrated in place on open.  Each
    #: entry pairs the column name with its complete ALTER statement —
    #: IN003 requires executed SQL to be built from constants, so the
    #: statements are spelled out rather than assembled.
    _META_COLUMNS = (
        (
            "size_bytes",
            "ALTER TABLE cached_results "
            "ADD COLUMN size_bytes INTEGER NOT NULL DEFAULT 0",
        ),
        (
            "cost",
            "ALTER TABLE cached_results "
            "ADD COLUMN cost REAL NOT NULL DEFAULT 0",
        ),
        (
            "access_count",
            "ALTER TABLE cached_results "
            "ADD COLUMN access_count INTEGER NOT NULL DEFAULT 0",
        ),
        (
            "last_access",
            "ALTER TABLE cached_results "
            "ADD COLUMN last_access INTEGER NOT NULL DEFAULT 0",
        ),
    )

    def __init__(
        self,
        path: str = ":memory:",
        registry: SummaryTypeRegistry | None = None,
    ) -> None:
        self._registry = registry or default_registry()
        # check_same_thread=False (the pool factory's default): cache
        # admissions can come from any query thread; the owning cache
        # keeps store calls outside its metadata lock and SQLite
        # serializes individual statements.  Transactions are a
        # different matter: ``with self._connection`` opens an implicit
        # transaction whose state lives on the *connection*, so two
        # threads interleaving write blocks raise "cannot start a
        # transaction within a transaction".  The transaction mutex
        # below serializes the write methods end to end (an IN001
        # documented exception — this lock exists precisely to hold
        # across the SQL it wraps).
        self._txn_lock = make_lock("zoomin.store_txn", guards_io=True)
        self._connection = connect(path)
        self._connection.execute(
            """
            CREATE TABLE IF NOT EXISTS cached_results (
                qid INTEGER PRIMARY KEY,
                payload TEXT NOT NULL,
                size_bytes INTEGER NOT NULL DEFAULT 0,
                cost REAL NOT NULL DEFAULT 0,
                access_count INTEGER NOT NULL DEFAULT 0,
                last_access INTEGER NOT NULL DEFAULT 0
            )
            """
        )
        self._migrate_metadata_columns()

    def _migrate_metadata_columns(self) -> None:
        """Add the metadata columns to a pre-existing two-column file."""
        present = {
            row[1]
            for row in self._connection.execute(
                "PRAGMA table_info(cached_results)"
            )
        }
        with self._connection:
            for name, statement in self._META_COLUMNS:
                if name not in present:
                    self._connection.execute(statement)

    def put(
        self,
        result: QueryResult,
        cost: float | None = None,
        access_count: int = 0,
        last_access: int = 0,
    ) -> int:
        """Persist ``result`` and its replacement metadata.

        Returns the **encoded byte length** of the payload — the bytes
        the file actually grows by — not the character count.
        ``ensure_ascii=False`` stores annotation text as real UTF-8
        instead of escape sequences (smaller, and it makes the two
        counts genuinely different for non-ASCII text).
        """
        payload = json.dumps(result.to_json(), ensure_ascii=False)
        size = len(payload.encode("utf-8"))
        with self._txn_lock, self._connection:
            self._connection.execute(
                """
                INSERT INTO cached_results
                    (qid, payload, size_bytes, cost, access_count, last_access)
                VALUES (?, ?, ?, ?, ?, ?)
                ON CONFLICT (qid) DO UPDATE SET
                    payload = excluded.payload,
                    size_bytes = excluded.size_bytes,
                    cost = excluded.cost,
                    access_count = excluded.access_count,
                    last_access = excluded.last_access
                """,
                (
                    result.qid,
                    payload,
                    size,
                    float(cost if cost is not None else result.plan_cost),
                    access_count,
                    last_access,
                ),
            )
        return size

    def update_access(
        self, qid: int, access_count: int, last_access: int
    ) -> None:
        """Persist refreshed reference bookkeeping for one entry."""
        with self._txn_lock, self._connection:
            self._connection.execute(
                """
                UPDATE cached_results
                SET access_count = ?, last_access = ?
                WHERE qid = ?
                """,
                (access_count, last_access, qid),
            )

    def get(self, qid: int) -> QueryResult | None:
        row = self._connection.execute(
            "SELECT payload FROM cached_results WHERE qid = ?", (qid,)
        ).fetchone()
        if row is None:
            return None
        return QueryResult.from_json(json.loads(row[0]), self._registry)

    def load_metadata(self) -> list[StoredEntryMeta]:
        """Replacement metadata of every persisted entry, qid-ordered.

        The warm-restart path: a cache opening over an existing file
        rebuilds its entry table from this instead of starting cold.
        """
        rows = self._connection.execute(
            """
            SELECT qid, size_bytes, cost, access_count, last_access
            FROM cached_results ORDER BY qid
            """
        ).fetchall()
        return [
            StoredEntryMeta(
                qid=row[0],
                size_bytes=row[1],
                cost=row[2],
                access_count=row[3],
                last_access=row[4],
            )
            for row in rows
        ]

    def delete(self, qid: int) -> None:
        with self._txn_lock, self._connection:
            self._connection.execute(
                "DELETE FROM cached_results WHERE qid = ?", (qid,)
            )

    def clear(self) -> None:
        with self._txn_lock, self._connection:
            self._connection.execute("DELETE FROM cached_results")

    def close(self) -> None:
        """Close the backing connection."""
        self._connection.close()
