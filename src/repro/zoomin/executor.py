"""Zoom-in execution.

Resolves a :class:`~repro.zoomin.command.ZoomInCommand` against a cached
(or recomputed) query result, filters the result's tuples with the
command's predicate, locates the addressed summary component on each
matching tuple, and fetches the component's raw annotations from the
annotation store — the only point in the whole pipeline where raw
annotation text is read back.

A configurable ``miss_penalty`` models the recomputation cost of a cache
miss (re-running the query in the real system); the EXP-Z1 benchmark uses
it to translate hit ratios into latency.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.engine.results import QueryResult
from repro.errors import ZoomInError
from repro.model.annotation import Annotation
from repro.storage.annotations import AnnotationStore
from repro.summaries.base import ZoomComponent
from repro.zoomin.cache import ZoomInCache
from repro.zoomin.command import ZoomInCommand, parse_zoomin


@dataclass
class ZoomInMatch:
    """One result tuple's expansion."""

    values: tuple[Any, ...]
    component: ZoomComponent
    annotations: list[Annotation]

    def to_json(self) -> dict[str, Any]:
        """JSON-able form (annotation service wire format)."""
        return {
            "values": list(self.values),
            "component": {
                "index": self.component.index,
                "label": self.component.label,
                "detail": self.component.detail,
            },
            "annotations": [
                {
                    "annotation_id": annotation.annotation_id,
                    "text": annotation.text,
                    "author": annotation.author,
                    "created_at": annotation.created_at,
                    "kind": annotation.kind.value,
                    "title": annotation.title,
                }
                for annotation in self.annotations
            ],
        }


@dataclass
class ZoomInResult:
    """Outcome of one zoom-in command."""

    command: ZoomInCommand
    matches: list[ZoomInMatch]
    cache_hit: bool
    elapsed_seconds: float = 0.0

    def annotation_count(self) -> int:
        """Total raw annotations retrieved."""
        return sum(len(match.annotations) for match in self.matches)

    def to_json(self) -> dict[str, Any]:
        """JSON-able form of the full expansion, command included.

        The annotation service's wire format: everything a remote client
        needs to render the zoom-in, nothing engine-internal.
        """
        return {
            "command": self.command.render(),
            "cache_hit": self.cache_hit,
            "elapsed_seconds": self.elapsed_seconds,
            "annotation_count": self.annotation_count(),
            "matches": [match.to_json() for match in self.matches],
        }


class ZoomInExecutor:
    """Executes zoom-in commands against the result cache."""

    def __init__(
        self,
        annotations: AnnotationStore,
        cache: ZoomInCache,
        recompute: Callable[[int], QueryResult],
    ) -> None:
        self._annotations = annotations
        self._cache = cache
        self._recompute = recompute

    def execute(self, command: ZoomInCommand | str) -> ZoomInResult:
        """Run ``command`` (text is parsed first) and expand annotations."""
        if isinstance(command, str):
            command = parse_zoomin(command)
        started = time.perf_counter()
        result = self._cache.get(command.qid)
        cache_hit = result is not None
        if result is None:
            result = self._recompute(command.qid)
            self._cache.put(result)
        matches = self._expand(command, result)
        elapsed = time.perf_counter() - started
        return ZoomInResult(
            command=command,
            matches=matches,
            cache_hit=cache_hit,
            elapsed_seconds=elapsed,
        )

    def _expand(
        self, command: ZoomInCommand, result: QueryResult
    ) -> list[ZoomInMatch]:
        matches: list[ZoomInMatch] = []
        instance_seen = any(
            command.instance in row.summaries for row in result.tuples
        )
        for row in result.tuples:
            if command.predicate is not None and not command.predicate.evaluate(
                row, result.columns
            ):
                continue
            obj = row.summaries.get(command.instance)
            if obj is None:
                continue
            components = obj.zoom_components()
            if command.index is not None:
                if command.index > len(components):
                    raise ZoomInError(
                        f"summary {command.instance!r} has "
                        f"{len(components)} components; INDEX {command.index} "
                        f"is out of range"
                    )
                selected = [components[command.index - 1]]
            else:
                selected = components
            for component in selected:
                if command.detail == "count":
                    annotations: list[Annotation] = []
                else:
                    annotations = self._annotations.get_many(
                        component.annotation_ids
                    )
                matches.append(
                    ZoomInMatch(
                        values=row.values,
                        component=component,
                        annotations=annotations,
                    )
                )
        if not instance_seen and result.tuples:
            available = result.summary_instances()
            raise ZoomInError(
                f"no tuple in QID {command.qid} carries summary instance "
                f"{command.instance!r}; available: {available}"
            )
        return matches
