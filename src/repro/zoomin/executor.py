"""Zoom-in execution.

Resolves a :class:`~repro.zoomin.command.ZoomInCommand` against a cached
(or recomputed) query result, filters the result's tuples with the
command's predicate, locates the addressed summary component on each
matching tuple, and fetches the component's raw annotations from the
annotation store — the only point in the whole pipeline where raw
annotation text is read back.

A configurable ``miss_penalty`` models the recomputation cost of a cache
miss (re-running the query in the real system); the EXP-Z1 benchmark uses
it to translate hit ratios into latency.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.engine.results import QueryResult
from repro.errors import ZoomInError
from repro.model.annotation import Annotation
from repro.storage.annotations import AnnotationStore
from repro.summaries.base import ZoomComponent
from repro.zoomin.cache import ZoomInCache
from repro.zoomin.command import ZoomInCommand, parse_zoomin
from repro.zoomin.tiered import (
    SOURCE_COALESCED,
    SOURCE_MEMORY,
    SOURCE_RECOMPUTED,
    TieredZoomInCache,
)


@dataclass
class ZoomInMatch:
    """One result tuple's expansion."""

    values: tuple[Any, ...]
    component: ZoomComponent
    annotations: list[Annotation]

    def to_json(self) -> dict[str, Any]:
        """JSON-able form (annotation service wire format)."""
        return {
            "values": list(self.values),
            "component": {
                "index": self.component.index,
                "label": self.component.label,
                "detail": self.component.detail,
            },
            "annotations": [
                {
                    "annotation_id": annotation.annotation_id,
                    "text": annotation.text,
                    "author": annotation.author,
                    "created_at": annotation.created_at,
                    "kind": annotation.kind.value,
                    "title": annotation.title,
                }
                for annotation in self.annotations
            ],
        }


@dataclass
class ZoomInResult:
    """Outcome of one zoom-in command."""

    command: ZoomInCommand
    matches: list[ZoomInMatch]
    cache_hit: bool
    elapsed_seconds: float = 0.0
    #: Where the referenced result came from: ``memory`` / ``disk`` /
    #: ``recomputed`` / ``coalesced`` on the tiered cache; ``memory`` /
    #: ``recomputed`` on the single-tier prototype.
    source: str = ""

    def annotation_count(self) -> int:
        """Total raw annotations retrieved."""
        return sum(len(match.annotations) for match in self.matches)

    def to_json(self) -> dict[str, Any]:
        """JSON-able form of the full expansion, command included.

        The annotation service's wire format: everything a remote client
        needs to render the zoom-in, nothing engine-internal.
        """
        return {
            "command": self.command.render(),
            "cache_hit": self.cache_hit,
            "source": self.source,
            "elapsed_seconds": self.elapsed_seconds,
            "annotation_count": self.annotation_count(),
            "matches": [match.to_json() for match in self.matches],
        }


class ZoomInExecutor:
    """Executes zoom-in commands against the result cache.

    ``cache`` may be the single-tier prototype
    (:class:`~repro.zoomin.cache.ZoomInCache`) or the production
    :class:`~repro.zoomin.tiered.TieredZoomInCache`; the tiered cache's
    ``get_or_compute`` is used when available so concurrent zoom-ins
    referencing the same evicted qid coalesce into one re-execution.
    """

    def __init__(
        self,
        annotations: AnnotationStore,
        cache: ZoomInCache | TieredZoomInCache,
        recompute: Callable[[int], QueryResult],
    ) -> None:
        self._annotations = annotations
        self._cache = cache
        self._recompute = recompute

    def execute(self, command: ZoomInCommand | str) -> ZoomInResult:
        """Run ``command`` (text is parsed first) and expand annotations."""
        if isinstance(command, str):
            command = parse_zoomin(command)
        started = time.perf_counter()
        result, source = self._resolve(command.qid)
        matches = self._expand(command, result)
        elapsed = time.perf_counter() - started
        return ZoomInResult(
            command=command,
            matches=matches,
            cache_hit=source not in (SOURCE_RECOMPUTED, SOURCE_COALESCED),
            elapsed_seconds=elapsed,
            source=source,
        )

    def _resolve(self, qid: int) -> tuple[QueryResult, str]:
        if isinstance(self._cache, TieredZoomInCache):
            return self._cache.get_or_compute(
                qid, lambda: self._recompute(qid)
            )
        result = self._cache.get(qid)
        if result is not None:
            return result, SOURCE_MEMORY
        result = self._recompute(qid)
        self._cache.put(result)
        return result, SOURCE_RECOMPUTED

    def _expand(
        self, command: ZoomInCommand, result: QueryResult
    ) -> list[ZoomInMatch]:
        matches: list[ZoomInMatch] = []
        instance_seen = any(
            command.instance in row.summaries for row in result.tuples
        )
        for row in result.tuples:
            if command.predicate is not None and not command.predicate.evaluate(
                row, result.columns
            ):
                continue
            obj = row.summaries.get(command.instance)
            if obj is None:
                continue
            components = obj.zoom_components()
            if command.index is not None:
                if command.index > len(components):
                    raise ZoomInError(
                        f"summary {command.instance!r} has "
                        f"{len(components)} components; INDEX {command.index} "
                        f"is out of range"
                    )
                selected = [components[command.index - 1]]
            else:
                selected = components
            for component in selected:
                if command.detail == "count":
                    annotations: list[Annotation] = []
                else:
                    annotations = self._annotations.get_many(
                        component.annotation_ids
                    )
                matches.append(
                    ZoomInMatch(
                        values=row.values,
                        component=component,
                        annotations=annotations,
                    )
                )
        if not instance_seen and result.tuples:
            available = result.summary_instances()
            raise ZoomInError(
                f"no tuple in QID {command.qid} carries summary instance "
                f"{command.instance!r}; available: {available}"
            )
        return matches
