"""Cost-aware admission for the zoom-in result cache.

The paper's cache admits every result and lets RCO sort out the
competition.  Under production traffic that wastes budget twice over: a
result SQLite can recompute in microseconds evicts a result whose plan
takes seconds to re-run, and a single huge result squeezes out dozens of
useful ones before the policy ever sees a second reference.

:class:`CostAwareAdmission` prices each candidate with the PR-8 cost
model's estimate of its plan (:attr:`~repro.engine.results.QueryResult.
cost_estimate`, falling back to the structural ``plan_cost``) and rules
*before* any bytes move:

* **cheap** — a result whose recompute cost sits below
  ``min_recompute_cost`` is never admitted; serving its zoom-ins by
  re-execution is cheaper than the budget it would occupy;
* **oversized** — a result larger than ``max_entry_fraction`` of the
  admitting tier's budget is rejected outright (the single-tier cache's
  "bigger than the whole cache" rule, tightened);
* **pinned** — a result whose recompute cost exceeds ``pin_cost`` is
  admitted *pinned*: the replacement policy may not evict it while
  pinned bytes stay under ``max_pinned_fraction`` of the budget.  Past
  that watermark an expensive result is still admitted, just unpinned —
  pinning must never wedge the cache solid.

Every decision is returned as an :class:`AdmissionVerdict` so the
tracing layer can export *why* a result is or is not resident.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any

#: Verdict reasons, in the vocabulary traces and counters share.
ADMITTED = "admitted"
PINNED = "pinned"
REJECTED_CHEAP = "rejected-cheap"
REJECTED_OVERSIZE = "rejected-oversize"


@dataclass(frozen=True)
class AdmissionVerdict:
    """One admission decision, with the numbers that produced it."""

    admitted: bool
    pinned: bool
    reason: str
    recompute_cost: float
    size_bytes: int

    def to_json(self) -> dict[str, Any]:
        """JSON-able form for traces and the stats op."""
        return {
            "admitted": self.admitted,
            "pinned": self.pinned,
            "reason": self.reason,
            "recompute_cost": round(self.recompute_cost, 3),
            "size_bytes": self.size_bytes,
        }


class AdmissionPolicy(abc.ABC):
    """Decides whether a result earns cache residency."""

    @abc.abstractmethod
    def assess(
        self,
        size_bytes: int,
        recompute_cost: float,
        capacity_bytes: int,
        pinned_bytes: int = 0,
    ) -> AdmissionVerdict:
        """Verdict for a candidate of ``size_bytes`` costing
        ``recompute_cost`` to re-run, against a tier holding
        ``pinned_bytes`` of pinned entries under ``capacity_bytes``."""


class AdmitAll(AdmissionPolicy):
    """The paper's behaviour: everything that fits is admitted.

    Kept as the benchmark baseline and for sessions that want pure
    policy-driven competition (only the oversize rule applies — an entry
    larger than the whole tier cannot be cached by definition).
    """

    def assess(
        self,
        size_bytes: int,
        recompute_cost: float,
        capacity_bytes: int,
        pinned_bytes: int = 0,
    ) -> AdmissionVerdict:
        if size_bytes > capacity_bytes:
            return AdmissionVerdict(
                False, False, REJECTED_OVERSIZE, recompute_cost, size_bytes
            )
        return AdmissionVerdict(
            True, False, ADMITTED, recompute_cost, size_bytes
        )


class CostAwareAdmission(AdmissionPolicy):
    """Price-of-recompute admission over the cost model's estimates.

    Thresholds are in the cost model's abstract units (``EMIT_ROW`` = 1;
    see :class:`~repro.engine.cost.CostModel`).  The defaults were
    calibrated on the bench workloads: ``min_recompute_cost=24`` is
    roughly a two-dozen-row summary-free scan — anything cheaper
    re-executes faster than a disk-tier deserialization — and
    ``pin_cost=20_000`` is the territory of multi-way joins over
    hydrated tables.
    """

    def __init__(
        self,
        min_recompute_cost: float = 24.0,
        pin_cost: float = 20_000.0,
        max_entry_fraction: float = 0.5,
        max_pinned_fraction: float = 0.5,
    ) -> None:
        if min_recompute_cost < 0:
            raise ValueError(
                f"min_recompute_cost must be >= 0, got {min_recompute_cost}"
            )
        if pin_cost < min_recompute_cost:
            raise ValueError(
                f"pin_cost ({pin_cost}) must be >= min_recompute_cost "
                f"({min_recompute_cost})"
            )
        if not 0 < max_entry_fraction <= 1:
            raise ValueError(
                f"max_entry_fraction must be in (0, 1], got {max_entry_fraction}"
            )
        if not 0 <= max_pinned_fraction <= 1:
            raise ValueError(
                f"max_pinned_fraction must be in [0, 1], got {max_pinned_fraction}"
            )
        self.min_recompute_cost = min_recompute_cost
        self.pin_cost = pin_cost
        self.max_entry_fraction = max_entry_fraction
        self.max_pinned_fraction = max_pinned_fraction

    def assess(
        self,
        size_bytes: int,
        recompute_cost: float,
        capacity_bytes: int,
        pinned_bytes: int = 0,
    ) -> AdmissionVerdict:
        if size_bytes > self.max_entry_fraction * capacity_bytes:
            return AdmissionVerdict(
                False, False, REJECTED_OVERSIZE, recompute_cost, size_bytes
            )
        if recompute_cost < self.min_recompute_cost:
            return AdmissionVerdict(
                False, False, REJECTED_CHEAP, recompute_cost, size_bytes
            )
        pin = (
            recompute_cost >= self.pin_cost
            and pinned_bytes + size_bytes
            <= self.max_pinned_fraction * capacity_bytes
        )
        return AdmissionVerdict(
            True, pin, PINNED if pin else ADMITTED, recompute_cost, size_bytes
        )
