"""Cache replacement policies.

The zoom-in cache keeps query results in a limited space; when a new
result does not fit, the policy ranks resident entries and the lowest
priority is evicted first.  Besides the paper's RCO policy
(:mod:`repro.zoomin.rco`), the classical baselines used for comparison in
EXP-Z1 live here.

A policy is a pure ranking function over :class:`CacheEntry` metadata —
it never touches the cached results themselves — so policies are trivially
swappable in the benchmark harness.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass


@dataclass
class CacheEntry:
    """Bookkeeping for one cached query result.

    Times are logical ticks supplied by the cache (one per operation),
    which keeps replacement decisions deterministic under test.
    """

    qid: int
    size_bytes: int
    cost: int
    inserted_at: int
    last_access: int
    access_count: int = 0


class ReplacementPolicy(abc.ABC):
    """Ranks cache entries; the lowest priority is evicted first."""

    #: Display name used in benchmark output.
    name: str = "policy"

    @abc.abstractmethod
    def priority(self, entry: CacheEntry, now: int) -> float:
        """Retention priority of ``entry`` at logical time ``now``."""

    def victim(self, entries: list[CacheEntry], now: int) -> CacheEntry:
        """The entry to evict: minimum priority, QID as tie-break."""
        return min(entries, key=lambda entry: (self.priority(entry, now), entry.qid))


class LRUPolicy(ReplacementPolicy):
    """Least Recently Used: evict the entry idle the longest."""

    name = "LRU"

    def priority(self, entry: CacheEntry, now: int) -> float:
        return float(entry.last_access)


class LFUPolicy(ReplacementPolicy):
    """Least Frequently Used, recency as tie-break."""

    name = "LFU"

    def priority(self, entry: CacheEntry, now: int) -> float:
        # Scale keeps frequency dominant while recency breaks ties.
        return entry.access_count * 1e9 + entry.last_access


class FIFOPolicy(ReplacementPolicy):
    """First In First Out: evict the oldest insertion."""

    name = "FIFO"

    def priority(self, entry: CacheEntry, now: int) -> float:
        return float(entry.inserted_at)


class SizePolicy(ReplacementPolicy):
    """Largest First: evict whatever frees the most space."""

    name = "SIZE"

    def priority(self, entry: CacheEntry, now: int) -> float:
        return -float(entry.size_bytes)
