"""Structured per-query tracing.

Every executed query gets a :class:`QueryTrace` — a JSON-able record of
what the planner decided (plan fingerprint, cost estimate), what
execution did (wall clock, the engine's counters, per-operator timings
when the query ran with tracing enabled), and everything the zoom-in
cache subsequently did *to* the result (tier hits and misses, the
admission verdict, demotions, promotions, evictions with their causes,
single-flight recomputes).  Traces follow the lint CLI's ``--format
json`` house idiom: one structured payload per query, retrievable via
``session.trace(qid)`` and the serve ``trace`` op.

The store is bounded (one ring of recent traces) and thread-safe; cache
events for a query whose trace has aged out are dropped rather than
resurrected — a trace is an observability view, not an audit log.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.concurrency import make_lock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.results import QueryResult


def plan_fingerprint(plan_text: str) -> str:
    """A short stable fingerprint of a rendered plan.

    Whitespace-insensitive so cosmetic render changes don't churn
    fingerprints; 12 hex chars is plenty for a per-session namespace.
    """
    canonical = " ".join(plan_text.split())
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


@dataclass(frozen=True)
class CacheEvent:
    """One thing the zoom-in cache did involving a query's result.

    ``kind`` vocabulary: ``admit`` / ``reject`` (admission verdicts),
    ``hit-memory`` / ``hit-disk`` / ``miss`` (lookups), ``promote`` /
    ``demote`` (tier transitions), ``evict`` (left the cache, with the
    cause in ``detail``), ``recompute`` / ``coalesced`` (single-flight
    outcomes).
    """

    kind: str
    tier: str = ""
    detail: str = ""

    def to_json(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"kind": self.kind}
        if self.tier:
            payload["tier"] = self.tier
        if self.detail:
            payload["detail"] = self.detail
        return payload


@dataclass
class QueryTrace:
    """The per-query observability record."""

    qid: int
    sql: str = ""
    fingerprint: str = ""
    plan_text: str = ""
    plan_cost: int = 1
    cost_estimate: float = 0.0
    elapsed_seconds: float = 0.0
    execution: dict[str, Any] = field(default_factory=dict)
    operator_timings: list[dict[str, Any]] = field(default_factory=list)
    cache_events: list[CacheEvent] = field(default_factory=list)

    def to_json(self) -> dict[str, Any]:
        """The full trace as one JSON-able payload."""
        return {
            "qid": self.qid,
            "sql": self.sql,
            "fingerprint": self.fingerprint,
            "plan_text": self.plan_text,
            "plan_cost": self.plan_cost,
            "cost_estimate": round(self.cost_estimate, 3),
            "elapsed_seconds": self.elapsed_seconds,
            "execution": dict(self.execution),
            "operator_timings": [dict(t) for t in self.operator_timings],
            "cache_events": [event.to_json() for event in self.cache_events],
        }


class TraceStore:
    """Bounded, thread-safe ring of recent :class:`QueryTrace` records.

    ``capacity`` traces are retained, oldest-first eviction — the same
    shape as the result registry, so a qid still addressable for
    zoom-ins usually still has its trace.  All mutation is under one
    lock; everything recorded is plain in-memory bookkeeping (no SQL,
    no I/O), so holding it is cheap.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._traces: OrderedDict[int, QueryTrace] = OrderedDict()
        self._lock = make_lock("zoomin.traces")

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def record_query(self, result: "QueryResult") -> QueryTrace:
        """Open (or refresh) the trace for a just-executed result."""
        trace = QueryTrace(
            qid=result.qid,
            sql=result.sql,
            fingerprint=plan_fingerprint(result.plan_text),
            plan_text=result.plan_text,
            plan_cost=result.plan_cost,
            cost_estimate=result.cost_estimate,
            elapsed_seconds=result.elapsed_seconds,
            execution=result.stats.to_json() if result.stats is not None else {},
            operator_timings=(
                result.trace.timings_json()
                if result.trace is not None
                and hasattr(result.trace, "timings_json")
                else []
            ),
        )
        with self._lock:
            self._traces.pop(result.qid, None)
            self._traces[result.qid] = trace
            while len(self._traces) > self._capacity:
                self._traces.popitem(last=False)
        return trace

    def record_event(self, qid: int, event: CacheEvent) -> None:
        """Append a cache event to ``qid``'s trace (dropped if aged out)."""
        with self._lock:
            trace = self._traces.get(qid)
            if trace is not None:
                trace.cache_events.append(event)

    def get(self, qid: int) -> QueryTrace | None:
        """The trace for ``qid``, or None when unknown/aged out."""
        with self._lock:
            return self._traces.get(qid)

    def to_json(self, qid: int) -> dict[str, Any] | None:
        """JSON payload of one trace, or None."""
        with self._lock:
            trace = self._traces.get(qid)
            return trace.to_json() if trace is not None else None

    def qids(self) -> list[int]:
        """Traced qids, oldest first."""
        with self._lock:
            return list(self._traces)
