"""The RCO replacement policy.

RCO (**R**ecency, **C**omplexity, **O**verhead) is the paper's policy for
the zoom-in result cache (§2.2).  It scores each cached query result by
three factors:

* **Recency & frequency** — how recently and how often the result has been
  referenced by zoom-in operations.  Hot results stay.
* **Complexity** — the structural cost of the query that produced the
  result.  An expensive join/aggregation result is costly to recompute on
  a miss, so it earns retention.
* **Overhead** — the result's size.  A huge result squeezes many smaller
  ones out, so size *discounts* the score.

The retention priority is::

    priority = (w_r * recency + w_f * log2(1 + refs) + w_c * log2(1 + cost))
               / (1 + size_kb) ** w_o

with ``recency = 1 / (1 + now - last_access)``.  The weights are exposed
so the EXP-Z1 ablation can sweep them; the defaults weigh the factors
equally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.zoomin.policies import CacheEntry, ReplacementPolicy


@dataclass
class RCOWeights:
    """Tunable factor weights of the RCO score."""

    recency: float = 1.0
    frequency: float = 1.0
    complexity: float = 1.0
    overhead: float = 0.5

    def __post_init__(self) -> None:
        for name in ("recency", "frequency", "complexity", "overhead"):
            if getattr(self, name) < 0:
                raise ValueError(f"RCO weight {name} must be non-negative")


class RCOPolicy(ReplacementPolicy):
    """Recency-Complexity-Overhead replacement."""

    name = "RCO"

    def __init__(self, weights: RCOWeights | None = None) -> None:
        self.weights = weights or RCOWeights()

    def priority(self, entry: CacheEntry, now: int) -> float:
        weights = self.weights
        recency = 1.0 / (1.0 + max(0, now - entry.last_access))
        frequency = math.log2(1.0 + entry.access_count)
        complexity = math.log2(1.0 + max(0, entry.cost))
        value = (
            weights.recency * recency
            + weights.frequency * frequency
            + weights.complexity * complexity
        )
        size_kb = entry.size_bytes / 1024.0
        return value / (1.0 + size_kb) ** weights.overhead
