"""The production two-tier zoom-in result cache.

The paper's zoom-in cache is disk-based (§2.2); the prototype
:class:`~repro.zoomin.cache.ZoomInCache` is single-tier and single-lock.
This module is the production path:

* **Two exclusive tiers.**  A hot in-memory tier holds live
  :class:`~repro.engine.results.QueryResult` objects; a disk tier
  (:class:`~repro.zoomin.stores.SQLiteResultStore`) holds serialized
  payloads.  Each tier has its own byte budget, charged in its own
  currency (object-size estimate vs encoded payload bytes — see
  :mod:`repro.zoomin.stores`).  Memory eviction *demotes* the victim to
  disk; a disk hit *promotes* the result back to memory.  An entry is
  resident in exactly one tier at a time.

* **Cost-aware admission.**  Candidates are priced by the cost model's
  recompute estimate and ruled on by an
  :class:`~repro.zoomin.admission.AdmissionPolicy` before any bytes
  move; results too large for the memory tier are admitted straight to
  disk when they fit there.  Pinned entries are never chosen as
  victims.

* **Single-flight recompute.**  Concurrent zoom-ins referencing the
  same evicted qid coalesce onto one re-execution via per-qid in-flight
  markers sharded over striped locks, so a miss stampede costs one
  query, and misses on unrelated qids never contend on the same stripe.

Lock inventory (acquisition order is top to bottom; no path acquires
upward):

========================  ===================================================
``_FlightStripe.lock``    guards that stripe's in-flight table only; held
                          for dict probes — never across SQL or recompute
``TieredZoomInCache._lock``  guards tier metadata, the logical clock, byte
                          accounting, counters; **never held across SQL** —
                          store reads/writes happen outside, with victims
                          collected under the lock and flushed after release
``TraceStore._lock``      internal to the trace ring (plain dict ops)
========================  ===================================================
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.concurrency import LockLike, make_lock
from repro.engine.results import QueryResult
from repro.zoomin.admission import (
    REJECTED_OVERSIZE,
    AdmissionPolicy,
    AdmissionVerdict,
    CostAwareAdmission,
)
from repro.zoomin.policies import CacheEntry, ReplacementPolicy
from repro.zoomin.rco import RCOPolicy
from repro.zoomin.stores import SQLiteResultStore
from repro.zoomin.tracing import CacheEvent, TraceStore

#: ``get_or_compute`` outcome labels.
SOURCE_MEMORY = "memory"
SOURCE_DISK = "disk"
SOURCE_RECOMPUTED = "recomputed"
SOURCE_COALESCED = "coalesced"
_SOURCE_MISS = "miss"


@dataclass
class TierCounters:
    """Every counter the tiered cache exports."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    insertions: int = 0
    pinned_insertions: int = 0
    rejected_cheap: int = 0
    rejected_oversize: int = 0
    promotions: int = 0
    demotions: int = 0
    memory_evictions: int = 0
    disk_evictions: int = 0
    recomputes: int = 0
    coalesced: int = 0
    invalidations: int = 0
    warm_loaded: int = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served from either tier."""
        hits = self.memory_hits + self.disk_hits
        total = hits + self.misses
        return hits / total if total else 0.0

    def to_json(self) -> dict[str, Any]:
        payload = {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "hit_ratio": round(self.hit_ratio, 4),
            "insertions": self.insertions,
            "pinned_insertions": self.pinned_insertions,
            "rejected_cheap": self.rejected_cheap,
            "rejected_oversize": self.rejected_oversize,
            "promotions": self.promotions,
            "demotions": self.demotions,
            "memory_evictions": self.memory_evictions,
            "disk_evictions": self.disk_evictions,
            "recomputes": self.recomputes,
            "coalesced": self.coalesced,
            "invalidations": self.invalidations,
            "warm_loaded": self.warm_loaded,
        }
        return payload


class _Flight:
    """One in-flight recompute; followers park on the event."""

    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: QueryResult | None = None
        self.error: BaseException | None = None


@dataclass
class _FlightStripe:
    """One shard of the in-flight table."""

    lock: LockLike = field(
        default_factory=lambda: make_lock("zoomin.flight_stripe")
    )
    flights: dict[int, _Flight] = field(default_factory=dict)


class TieredZoomInCache:
    """Two-tier RCO cache with admission control and single-flight.

    Parameters
    ----------
    memory_bytes:
        Budget of the hot tier, charged against ``size_estimate()``.
    disk_bytes:
        Budget of the disk tier, charged against encoded payload bytes.
    policy:
        Replacement ranking for both tiers; defaults to the paper's RCO.
    disk_store:
        Backing store of the cold tier.  When the store already holds
        entries (a cache file from a previous process) their metadata is
        warm-loaded so the disk tier starts populated.
    admission:
        Admission policy; defaults to :class:`CostAwareAdmission`.
    trace_store:
        Optional sink for per-qid cache events.
    n_stripes:
        Shards of the single-flight table.
    """

    def __init__(
        self,
        memory_bytes: int = 4 * 1024 * 1024,
        disk_bytes: int = 16 * 1024 * 1024,
        policy: ReplacementPolicy | None = None,
        disk_store: SQLiteResultStore | None = None,
        admission: AdmissionPolicy | None = None,
        trace_store: TraceStore | None = None,
        n_stripes: int = 8,
    ) -> None:
        if memory_bytes < 1:
            raise ValueError(f"memory_bytes must be >= 1, got {memory_bytes}")
        if disk_bytes < 1:
            raise ValueError(f"disk_bytes must be >= 1, got {disk_bytes}")
        if n_stripes < 1:
            raise ValueError(f"n_stripes must be >= 1, got {n_stripes}")
        self.memory_bytes = memory_bytes
        self.disk_bytes = disk_bytes
        self.policy = policy or RCOPolicy()
        self.admission = admission or CostAwareAdmission()
        self.counters = TierCounters()
        self._disk_store = disk_store or SQLiteResultStore()
        self._trace_store = trace_store
        self._stripes = [_FlightStripe() for _ in range(n_stripes)]
        # Tier metadata, payloads of the hot tier, and accounting — all
        # guarded by _lock; the disk store itself is only touched with
        # the lock released.
        self._lock = make_lock("zoomin.tiered")
        self._entries_memory: dict[int, CacheEntry] = {}
        self._entries_disk: dict[int, CacheEntry] = {}
        self._memory: dict[int, QueryResult] = {}
        self._pinned: set[int] = set()
        self._pinned_bytes = 0
        self._memory_bytes_used = 0
        self._disk_bytes_used = 0
        self._clock = 0
        self._warm_start()

    # -- construction helpers ------------------------------------------

    def _warm_start(self) -> None:
        """Rebuild the disk tier's metadata from a pre-existing store."""
        for meta in self._disk_store.load_metadata():
            self._entries_disk[meta.qid] = CacheEntry(
                qid=meta.qid,
                size_bytes=meta.size_bytes,
                cost=meta.cost,
                inserted_at=0,
                last_access=meta.last_access,
                access_count=meta.access_count,
            )
            self._disk_bytes_used += meta.size_bytes
            self.counters.warm_loaded += 1
        # A previous process may have run with a larger budget.
        self._shed_disk_overflow()

    # -- introspection -------------------------------------------------

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    @property
    def memory_bytes_used(self) -> int:
        with self._lock:
            return self._memory_bytes_used

    @property
    def disk_bytes_used(self) -> int:
        with self._lock:
            return self._disk_bytes_used

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries_memory) + len(self._entries_disk)

    def __contains__(self, qid: int) -> bool:
        with self._lock:
            return qid in self._entries_memory or qid in self._entries_disk

    def resident_qids(self) -> list[int]:
        """QIDs resident in either tier, sorted."""
        with self._lock:
            return sorted(set(self._entries_memory) | set(self._entries_disk))

    def tier_of(self, qid: int) -> str | None:
        """``"memory"``, ``"disk"``, or None."""
        with self._lock:
            if qid in self._entries_memory:
                return SOURCE_MEMORY
            if qid in self._entries_disk:
                return SOURCE_DISK
            return None

    def pinned_qids(self) -> list[int]:
        """QIDs the replacement policy may not evict, sorted."""
        with self._lock:
            return sorted(self._pinned)

    def stats_json(self) -> dict[str, Any]:
        """Counters plus per-tier occupancy, as one JSON-able payload."""
        with self._lock:
            return {
                **self.counters.to_json(),
                "tiers": {
                    "memory": {
                        "capacity_bytes": self.memory_bytes,
                        "bytes_used": self._memory_bytes_used,
                        "entries": len(self._entries_memory),
                        "pinned_entries": len(self._pinned),
                        "pinned_bytes": self._pinned_bytes,
                    },
                    "disk": {
                        "capacity_bytes": self.disk_bytes,
                        "bytes_used": self._disk_bytes_used,
                        "entries": len(self._entries_disk),
                    },
                },
                "policy": self.policy.name,
            }

    # -- tracing -------------------------------------------------------

    def _emit(self, qid: int, events: list[CacheEvent]) -> None:
        if self._trace_store is not None:
            for event in events:
                self._trace_store.record_event(qid, event)

    # -- lookups -------------------------------------------------------

    def get(self, qid: int) -> QueryResult | None:
        """Look up a result in either tier, promoting on a disk hit."""
        result, _ = self._lookup(qid)
        return result

    def _resident(self, qid: int) -> bool:
        """Metadata-only probe (no store I/O) — the single-flight
        double-check, safe to call under a stripe lock."""
        with self._lock:
            return qid in self._entries_memory or qid in self._entries_disk

    def _lookup(self, qid: int) -> tuple[QueryResult | None, str]:
        with self._lock:
            now = self._tick()
            entry = self._entries_memory.get(qid)
            if entry is not None:
                entry.last_access = now
                entry.access_count += 1
                self.counters.memory_hits += 1
                result = self._memory[qid]
                self._emit(qid, [CacheEvent("hit-memory", tier="memory")])
                return result, SOURCE_MEMORY
            if qid not in self._entries_disk:
                self.counters.misses += 1
                self._emit(qid, [CacheEvent("miss")])
                return None, _SOURCE_MISS
        # Disk-resident: read the payload with the lock released, then
        # re-take it to promote.  A concurrent invalidate can win the
        # race; both outcomes below handle the entry having vanished.
        result = self._disk_store.get(qid)
        if result is None:
            with self._lock:
                stale = self._entries_disk.pop(qid, None)
                if stale is not None:
                    self._disk_bytes_used -= stale.size_bytes
                self.counters.misses += 1
            self._emit(qid, [CacheEvent("miss", detail="stale-metadata")])
            return None, _SOURCE_MISS
        return self._promote(qid, result)

    def _promote(
        self, qid: int, result: QueryResult
    ) -> tuple[QueryResult | None, str]:
        """Move a just-read disk entry into the memory tier."""
        events: list[CacheEvent] = [CacheEvent("hit-disk", tier="disk")]
        demote_jobs: list[tuple[QueryResult, CacheEntry]] = []
        refresh: tuple[int, int] | None = None
        promoted = False
        with self._lock:
            now = self._tick()
            disk_entry = self._entries_disk.get(qid)
            if disk_entry is None:
                # Invalidated between the probe and here; serve the
                # payload we already read but do not re-admit it.
                self.counters.disk_hits += 1
                return result, SOURCE_DISK
            self.counters.disk_hits += 1
            disk_entry.last_access = now
            disk_entry.access_count += 1
            mem_size = result.size_estimate()
            if mem_size > self.memory_bytes:
                # Too big for the hot tier: stays disk-resident; its
                # refreshed reference counts are persisted below.
                refresh = (disk_entry.access_count, disk_entry.last_access)
            else:
                del self._entries_disk[qid]
                self._disk_bytes_used -= disk_entry.size_bytes
                self._entries_memory[qid] = CacheEntry(
                    qid=qid,
                    size_bytes=mem_size,
                    cost=disk_entry.cost,
                    inserted_at=now,
                    last_access=now,
                    access_count=disk_entry.access_count,
                )
                self._memory[qid] = result
                self._memory_bytes_used += mem_size
                self.counters.promotions += 1
                events.append(CacheEvent("promote", tier="memory"))
                demote_jobs = self._collect_memory_overflow(now, events)
                promoted = True
        if refresh is not None:
            self._disk_store.update_access(qid, *refresh)
        if promoted:
            # Exclusive tiers: the promoted payload leaves the disk file.
            self._disk_store.delete(qid)
            self._flush_demotions(demote_jobs)
        self._emit(qid, events)
        return result, SOURCE_DISK

    # -- admission -----------------------------------------------------

    def put(
        self, result: QueryResult, cost: float | None = None
    ) -> AdmissionVerdict:
        """Offer ``result`` for residency; returns the verdict.

        ``cost`` is the recompute price in cost-model units; defaults to
        the result's own :attr:`~repro.engine.results.QueryResult.
        cost_estimate` (falling back to the structural plan cost when no
        estimate was computed).
        """
        recompute_cost = (
            cost
            if cost is not None
            else (result.cost_estimate or float(result.plan_cost))
        )
        size = result.size_estimate()
        qid = result.qid
        events: list[CacheEvent] = []
        demote_jobs: list[tuple[QueryResult, CacheEntry]] = []
        stale_disk_delete = False
        with self._lock:
            now = self._tick()
            verdict = self.admission.assess(
                size, recompute_cost, self.memory_bytes, self._pinned_bytes
            )
            if verdict.admitted:
                # Re-admission refreshes: drop any prior residency.
                stale_disk_delete = self._drop_locked(qid) == SOURCE_DISK
                self._entries_memory[qid] = CacheEntry(
                    qid=qid,
                    size_bytes=size,
                    cost=recompute_cost,
                    inserted_at=now,
                    last_access=now,
                    access_count=0,
                )
                self._memory[qid] = result
                self._memory_bytes_used += size
                if verdict.pinned:
                    self._pinned.add(qid)
                    self._pinned_bytes += size
                    self.counters.pinned_insertions += 1
                self.counters.insertions += 1
                events.append(
                    CacheEvent(
                        "admit", tier="memory", detail=verdict.reason
                    )
                )
                demote_jobs = self._collect_memory_overflow(now, events)
            elif verdict.reason == REJECTED_OVERSIZE:
                pass  # disk admission attempted below, outside the lock
            else:
                self.counters.rejected_cheap += 1
                events.append(CacheEvent("reject", detail=verdict.reason))
        if verdict.admitted:
            if stale_disk_delete:
                self._disk_store.delete(qid)
            self._flush_demotions(demote_jobs)
            self._emit(qid, events)
            return verdict
        if verdict.reason == REJECTED_OVERSIZE:
            return self._admit_to_disk(result, recompute_cost, verdict)
        self._emit(qid, events)
        return verdict

    def _admit_to_disk(
        self,
        result: QueryResult,
        recompute_cost: float,
        memory_verdict: AdmissionVerdict,
    ) -> AdmissionVerdict:
        """Oversized-for-memory results go straight to the cold tier."""
        qid = result.qid
        with self._lock:
            now = self._tick()
            self._drop_locked(qid)
        size = self._disk_store.put(
            result, cost=recompute_cost, access_count=0, last_access=now
        )
        if size > self.disk_bytes:
            self._disk_store.delete(qid)
            with self._lock:
                self.counters.rejected_oversize += 1
            self._emit(
                qid, [CacheEvent("reject", detail=REJECTED_OVERSIZE)]
            )
            return memory_verdict
        with self._lock:
            self._entries_disk[qid] = CacheEntry(
                qid=qid,
                size_bytes=size,
                cost=recompute_cost,
                inserted_at=now,
                last_access=now,
                access_count=0,
            )
            self._disk_bytes_used += size
            self.counters.insertions += 1
        self._emit(
            qid,
            [CacheEvent("admit", tier="disk", detail="oversize-for-memory")],
        )
        self._shed_disk_overflow()
        return AdmissionVerdict(
            admitted=True,
            pinned=False,
            reason="admitted",
            recompute_cost=recompute_cost,
            size_bytes=size,
        )

    # -- eviction / demotion -------------------------------------------

    def _collect_memory_overflow(
        self, now: int, events: list[CacheEvent]
    ) -> list[tuple[QueryResult, CacheEntry]]:
        """Pop memory victims until under budget.  Caller holds _lock;
        the returned (payload, entry) jobs must be flushed to disk after
        releasing it."""
        jobs: list[tuple[QueryResult, CacheEntry]] = []
        while self._memory_bytes_used > self.memory_bytes:
            candidates = [
                entry
                for entry in self._entries_memory.values()
                if entry.qid not in self._pinned
            ]
            if not candidates:
                break  # everything left is pinned; tolerate overshoot
            victim = self.policy.victim(candidates, now)
            del self._entries_memory[victim.qid]
            self._memory_bytes_used -= victim.size_bytes
            payload = self._memory.pop(victim.qid)
            self.counters.demotions += 1
            self.counters.memory_evictions += 1
            events.append(
                CacheEvent("demote", tier="disk", detail="memory-pressure")
            )
            jobs.append((payload, victim))
        return jobs

    def _flush_demotions(
        self, jobs: list[tuple[QueryResult, CacheEntry]]
    ) -> None:
        """Serialize demoted victims into the disk store (no lock held
        across the writes), then account them and shed disk overflow."""
        if not jobs:
            return
        for payload, entry in jobs:
            size = self._disk_store.put(
                payload,
                cost=entry.cost,
                access_count=entry.access_count,
                last_access=entry.last_access,
            )
            with self._lock:
                self._entries_disk[entry.qid] = CacheEntry(
                    qid=entry.qid,
                    size_bytes=size,
                    cost=entry.cost,
                    inserted_at=entry.inserted_at,
                    last_access=entry.last_access,
                    access_count=entry.access_count,
                )
                self._disk_bytes_used += size
            self._emit(entry.qid, [CacheEvent("demote", tier="disk")])
        self._shed_disk_overflow()

    def _shed_disk_overflow(self) -> None:
        """Evict disk entries until under budget; SQL deletes happen
        after the metadata lock is released."""
        doomed: list[int] = []
        with self._lock:
            now = self._clock
            while self._disk_bytes_used > self.disk_bytes and self._entries_disk:
                victim = self.policy.victim(
                    list(self._entries_disk.values()), now
                )
                del self._entries_disk[victim.qid]
                self._disk_bytes_used -= victim.size_bytes
                self.counters.disk_evictions += 1
                doomed.append(victim.qid)
        for qid in doomed:
            self._disk_store.delete(qid)
            self._emit(
                qid, [CacheEvent("evict", tier="disk", detail="capacity")]
            )

    def _drop_locked(self, qid: int) -> str | None:
        """Remove ``qid``'s residency metadata.  Caller holds _lock.
        Returns the tier it was dropped from; a ``"disk"`` return means
        the caller must issue the store delete after releasing."""
        entry = self._entries_memory.pop(qid, None)
        if entry is not None:
            self._memory_bytes_used -= entry.size_bytes
            self._memory.pop(qid, None)
            if qid in self._pinned:
                self._pinned.discard(qid)
                self._pinned_bytes -= entry.size_bytes
            return SOURCE_MEMORY
        disk_entry = self._entries_disk.pop(qid, None)
        if disk_entry is not None:
            self._disk_bytes_used -= disk_entry.size_bytes
            return SOURCE_DISK
        return None

    def invalidate(self, qid: int) -> None:
        """Drop one result from whichever tier holds it."""
        with self._lock:
            dropped = self._drop_locked(qid)
            if dropped is not None:
                self.counters.invalidations += 1
        if dropped == SOURCE_DISK:
            self._disk_store.delete(qid)
        if dropped is not None:
            self._emit(qid, [CacheEvent("evict", detail="invalidated")])

    def clear(self) -> None:
        """Drop everything, keeping counters."""
        with self._lock:
            self._entries_memory.clear()
            self._entries_disk.clear()
            self._memory.clear()
            self._pinned.clear()
            self._pinned_bytes = 0
            self._memory_bytes_used = 0
            self._disk_bytes_used = 0
        self._disk_store.clear()

    # -- single-flight -------------------------------------------------

    def get_or_compute(
        self, qid: int, compute: Callable[[], QueryResult]
    ) -> tuple[QueryResult, str]:
        """Serve ``qid`` from cache or compute it exactly once.

        Concurrent callers missing on the same qid coalesce: one leader
        runs ``compute`` (and offers the result for admission), the rest
        park on its flight and share the result.  Returns ``(result,
        source)`` with source one of ``memory`` / ``disk`` /
        ``recomputed`` / ``coalesced``.  A leader's exception propagates
        to every waiter.
        """
        result, source = self._lookup(qid)
        if result is not None:
            return result, source
        stripe = self._stripes[qid % len(self._stripes)]
        while True:
            leader = False
            resident = False
            with stripe.lock:
                flight = stripe.flights.get(qid)
                if flight is None:
                    # Double-check residency before leading: a previous
                    # leader may have landed the result between our miss
                    # and taking the stripe.  Metadata probe only — no
                    # store I/O under the stripe lock.
                    if self._resident(qid):
                        resident = True
                    else:
                        flight = _Flight()
                        stripe.flights[qid] = flight
                        leader = True
            if resident:
                result, source = self._lookup(qid)
                if result is not None:
                    return result, source
                continue  # lost a race with invalidate; retry
            if leader:
                assert flight is not None
                try:
                    result = compute()
                    self.put(result)
                    flight.result = result
                except BaseException as exc:
                    flight.error = exc
                    raise
                finally:
                    with stripe.lock:
                        stripe.flights.pop(qid, None)
                    flight.event.set()
                with self._lock:
                    self.counters.recomputes += 1
                self._emit(qid, [CacheEvent("recompute")])
                return result, SOURCE_RECOMPUTED
            assert flight is not None
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            assert flight.result is not None
            with self._lock:
                self.counters.coalesced += 1
            self._emit(qid, [CacheEvent("coalesced")])
            return flight.result, SOURCE_COALESCED
