"""The ZOOMIN command language.

Grammar (keywords case-insensitive, trailing ``;`` optional)::

    ZOOMIN REFERENCE QID = <int>
           [WHERE <expression>]
           ON <instance_name>
           [INDEX <int>]
           [DETAIL COUNT|FULL]

``WHERE`` refines which result tuples to expand, using the same expression
language as queries (evaluated against the referenced result's schema).
``ON`` names the summary instance; ``INDEX`` selects a 1-based component
within each tuple's summary object (a class label position, a cluster
group, a snippet) — omitted, every component expands.  ``DETAIL COUNT``
returns only the matched components without fetching the raw annotation
bodies — a cheap first-level zoom; ``DETAIL FULL`` (the default) fetches
everything.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.expressions import Expression
from repro.engine.sqlparser import Token, continue_expression, tokenize_sql
from repro.errors import ZoomInSyntaxError


#: Allowed DETAIL levels.
DETAIL_LEVELS = ("count", "full")


@dataclass(frozen=True)
class ZoomInCommand:
    """A parsed ZOOMIN command."""

    qid: int
    instance: str
    index: int | None = None
    predicate: Expression | None = None
    detail: str = "full"

    def __post_init__(self) -> None:
        if self.qid < 0:
            raise ZoomInSyntaxError(f"QID must be non-negative, got {self.qid}")
        if self.index is not None and self.index < 1:
            raise ZoomInSyntaxError(
                f"INDEX is 1-based and must be >= 1, got {self.index}"
            )
        if self.detail not in DETAIL_LEVELS:
            raise ZoomInSyntaxError(
                f"DETAIL must be one of {DETAIL_LEVELS}, got {self.detail!r}"
            )

    def render(self) -> str:
        """Canonical command text."""
        parts = [f"ZOOMIN REFERENCE QID = {self.qid}"]
        if self.predicate is not None:
            parts.append(f"WHERE {self.predicate}")
        parts.append(f"ON {self.instance}")
        if self.index is not None:
            parts.append(f"INDEX {self.index}")
        if self.detail != "full":
            parts.append(f"DETAIL {self.detail.upper()}")
        return " ".join(parts)


def parse_zoomin(text: str) -> ZoomInCommand:
    """Parse ZOOMIN command text into a :class:`ZoomInCommand`."""
    text = text.strip().rstrip(";")
    tokens = tokenize_sql(text)
    index = 0

    def current() -> Token:
        return tokens[index]

    def accept_word(word: str) -> bool:
        nonlocal index
        token = current()
        if token.kind in ("ident", "keyword") and token.value.lower() == word:
            index += 1
            return True
        return False

    def expect_word(word: str) -> None:
        if not accept_word(word):
            raise ZoomInSyntaxError(
                f"expected {word.upper()!r}, found {current().value!r} "
                f"at position {current().position}"
            )

    def expect_int(what: str) -> int:
        nonlocal index
        token = current()
        if token.kind != "number" or "." in token.value:
            raise ZoomInSyntaxError(
                f"expected an integer {what}, found {token.value!r} "
                f"at position {token.position}"
            )
        index += 1
        return int(token.value)

    expect_word("zoomin")
    expect_word("reference")
    expect_word("qid")
    if not (current().kind == "op" and current().value == "="):
        raise ZoomInSyntaxError(
            f"expected '=' after QID, found {current().value!r}"
        )
    index += 1
    qid = expect_int("QID")

    predicate: Expression | None = None
    if accept_word("where"):
        predicate, index = continue_expression(tokens, index)

    expect_word("on")
    token = current()
    if token.kind not in ("ident", "keyword"):
        raise ZoomInSyntaxError(
            f"expected a summary instance name after ON, found {token.value!r}"
        )
    instance = token.value
    index += 1

    component_index: int | None = None
    if accept_word("index"):
        component_index = expect_int("INDEX")

    detail = "full"
    if accept_word("detail"):
        token = current()
        if token.kind not in ("ident", "keyword") or token.value.lower() not in (
            DETAIL_LEVELS
        ):
            raise ZoomInSyntaxError(
                f"DETAIL must be COUNT or FULL, found {token.value!r}"
            )
        detail = token.value.lower()
        index += 1

    if current().kind != "eof":
        raise ZoomInSyntaxError(
            f"unexpected trailing input: {current().value!r} "
            f"at position {current().position}"
        )
    return ZoomInCommand(
        qid=qid,
        instance=instance,
        index=component_index,
        predicate=predicate,
        detail=detail,
    )
