"""Table-level analyses over summary state.

Every function here reads only the persisted summary objects (via the
session's maintenance cache) and the attachment index — never the raw
annotation bodies — so each report costs what a summary scan costs,
regardless of how much text the annotations hold.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterator
from dataclasses import dataclass
from typing import Any

from repro.engine.session import InsightNotes
from repro.errors import CatalogError
from repro.summaries.classifier import ClassifierSummary


@dataclass(frozen=True)
class ContestedRow:
    """One row whose negative label outweighs its positive label."""

    row_id: int
    values: tuple[Any, ...]
    negative_count: int
    positive_count: int

    @property
    def margin(self) -> int:
        """How many more negative than positive annotations."""
        return self.negative_count - self.positive_count


def _classifier_objects(
    session: InsightNotes, table: str, instance_name: str
) -> Iterator[tuple[int, tuple[Any, ...], ClassifierSummary]]:
    """Yield ``(row_id, values, ClassifierSummary)`` for annotated rows."""
    instance = session.catalog.get_instance(instance_name)
    if instance.type_name != "Classifier":
        raise CatalogError(
            f"instance {instance_name!r} is {instance.type_name}, "
            "expected a Classifier"
        )
    for row_id, values in session.db.rows(table):
        obj = session.manager.current_object(instance_name, table, row_id)
        if obj is None or not isinstance(obj, ClassifierSummary):
            continue
        yield row_id, values, obj


def contested_rows(
    session: InsightNotes,
    table: str,
    instance_name: str,
    negative_label: str,
    positive_label: str,
) -> list[ContestedRow]:
    """Rows where ``negative_label`` outnumbers ``positive_label``.

    Sorted by margin, worst first — the triage queue of the curation
    workflow (most-refuted records surface at the top).
    """
    contested = [
        ContestedRow(
            row_id=row_id,
            values=values,
            negative_count=obj.count(negative_label),
            positive_count=obj.count(positive_label),
        )
        for row_id, values, obj in _classifier_objects(
            session, table, instance_name
        )
        if obj.count(negative_label) > obj.count(positive_label)
    ]
    contested.sort(key=lambda row: (-row.margin, row.row_id))
    return contested


def label_distribution(
    session: InsightNotes, table: str, instance_name: str
) -> dict[str, int]:
    """A classifier's label histogram across the whole relation."""
    totals: Counter[str] = Counter()
    labels: tuple[str, ...] = ()
    for _row_id, _values, obj in _classifier_objects(
        session, table, instance_name
    ):
        labels = obj.labels
        for label, count in obj.counts():
            totals[label] += count
    return {label: totals.get(label, 0) for label in labels} if labels else {}


@dataclass(frozen=True)
class CoverageReport:
    """Annotation coverage of one relation."""

    table: str
    row_count: int
    annotated_rows: int
    total_attachments: int
    silent_row_ids: tuple[int, ...]

    @property
    def coverage(self) -> float:
        """Fraction of rows with at least one annotation."""
        return self.annotated_rows / self.row_count if self.row_count else 0.0

    @property
    def mean_annotations_per_row(self) -> float:
        """Average annotations per row (over all rows)."""
        return (
            self.total_attachments / self.row_count if self.row_count else 0.0
        )


def annotation_coverage(session: InsightNotes, table: str) -> CoverageReport:
    """How thoroughly a relation is annotated, and which rows are silent.

    Silent rows matter in curation: a record nobody ever commented on has
    never been reviewed.
    """
    row_count = 0
    annotated = 0
    total = 0
    silent: list[int] = []
    for row_id, _values in session.db.rows(table):
        row_count += 1
        count = len(session.manager.attachments_for_row(table, row_id))
        if count:
            annotated += 1
            total += count
        else:
            silent.append(row_id)
    return CoverageReport(
        table=table,
        row_count=row_count,
        annotated_rows=annotated,
        total_attachments=total,
        silent_row_ids=tuple(silent),
    )


def hot_rows(
    session: InsightNotes, table: str, limit: int = 10
) -> list[tuple[int, tuple[Any, ...], int]]:
    """The ``limit`` most-annotated rows: ``(row_id, values, count)``.

    Heavily annotated records are where the community's attention is —
    the first places to look for disputes, news, or data problems.
    """
    ranked = [
        (row_id, values, len(session.manager.attachments_for_row(table, row_id)))
        for row_id, values in session.db.rows(table)
    ]
    ranked.sort(key=lambda item: (-item[2], item[0]))
    return ranked[:limit]
