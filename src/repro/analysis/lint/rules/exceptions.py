"""Exception-hygiene rule.

IN006 — an ``except`` that catches a *broad* type (bare, ``Exception``,
``BaseException``) and then does nothing hides real faults: a corrupted
summary payload or a closed pool surfacing inside an operator would
vanish instead of failing the query.  Swallowing handlers must either
catch the specific expected exception, re-raise, log, or carry an
``# insightlint: disable=IN006`` tag with a justification.

Narrow-typed silent handlers (``except ExpressionError: continue``) are
legitimate control flow and pass.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.lint.framework import (
    Finding,
    ModuleSource,
    Rule,
    register,
)

_BROAD = frozenset({"Exception", "BaseException"})


def _broad_types(handler_type: ast.expr | None) -> bool:
    """True when the handler catches a broad exception type."""
    if handler_type is None:
        return True  # bare except
    candidates: list[ast.expr]
    if isinstance(handler_type, ast.Tuple):
        candidates = list(handler_type.elts)
    else:
        candidates = [handler_type]
    for candidate in candidates:
        name = None
        if isinstance(candidate, ast.Name):
            name = candidate.id
        elif isinstance(candidate, ast.Attribute):
            name = candidate.attr
        if name in _BROAD:
            return True
    return False


def _swallows(body: list[ast.stmt]) -> bool:
    """True when the handler body neither re-raises, logs, nor returns
    meaningful work — only ``pass`` / ``continue`` / constants."""
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring / ellipsis
        return False
    return True


@register
class NoSilentBroadExcept(Rule):
    """IN006: broad ``except`` must re-raise, log, or be tagged."""

    rule_id = "IN006"
    summary = (
        "an except catching Exception/BaseException (or bare) must not "
        "silently swallow; narrow the type, re-raise, log, or tag"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _broad_types(node.type) and _swallows(node.body):
                caught = (
                    ast.unparse(node.type) if node.type is not None else "all"
                )
                yield self.finding(
                    module,
                    node,
                    f"except catching {caught} swallows silently; catch "
                    "the specific expected exception, re-raise, log, or "
                    "tag with '# insightlint: disable=IN006 -- <why>'",
                )
