"""The built-in insightlint rule set.

Importing this package registers every rule with the framework registry
(:func:`repro.analysis.lint.framework.all_rules` does so lazily).

==========  ==========================================================
IN001       no SQL / pool checkout while holding a threading lock
            (lexical + interprocedural over the project call graph)
IN002       sqlite3.connect only in storage/pool.py
IN003       parameterized SQL only; identifiers via sqlsafe helpers
IN004       copy-on-write (for_query) before mutating shared summaries
IN005       no shared-state mutation from executor-submitted callables
            (lexical + interprocedural through helper calls)
IN006       no silent broad excepts
IN007       lock acquisition order must be globally consistent (a
            cycle in the static order graph is a potential deadlock)
IN008       no unbounded blocking call while holding a lock
            (guards_io locks exempt)
==========  ==========================================================
"""

from repro.analysis.lint.rules import cow, exceptions, interlock, locks, sql

__all__ = ["cow", "exceptions", "interlock", "locks", "sql"]
