"""Concurrency rules: lock scope and executor-callable discipline.

IN001 — the probe-under-lock / SQL-outside-lock / fill-under-lock
discipline (DESIGN.md §9): no storage statement and no pool checkout may
run while a ``threading`` lock is held, because a reader blocked inside
SQLite would stall every thread waiting on that lock.  The documented
exception is ``SummaryManager``'s write path, which holds its re-entrant
lock end to end — write paths are serialized behind the storage layer's
single-writer lock anyway (the allowlist below names those methods).

IN005 — callables handed to a ``ThreadPoolExecutor`` run on worker
threads; they may only *read* shared engine state.  Mutating an
attribute from a submitted callable is a data race unless that attribute
is in the documented lock-protected inventory or the assignment is
itself under a lock.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.lint.callgraph import CallGraph, FunctionInfo, Project
from repro.analysis.lint.framework import (
    Finding,
    ModuleSource,
    ProjectRule,
    dotted_name,
    register,
)
from repro.analysis.lint.lockflow import (
    POOL_CHECKOUTS,
    SQL_METHODS,
    get_lockflow,
    is_direct_sql_call,
)

#: Backwards-compatible alias (the canonical set lives in lockflow).
_POOL_CHECKOUTS = POOL_CHECKOUTS

#: The documented fill-under-lock sites (module path suffix, qualname).
#: SummaryManager's write path holds its RLock across storage calls by
#: design — see the lock inventory in DESIGN.md §9.  The annotation id
#: sequence likewise grants cached runs under its lock: the one-row
#: meta-shard transaction must be atomic with the per-thread run
#: bookkeeping, or two threads could be granted overlapping id ranges
#: (DESIGN.md §11's lock inventory).
IN001_ALLOWLIST = frozenset(
    {
        ("repro/maintenance/incremental.py", "SummaryManager.flush"),
        ("repro/maintenance/incremental.py", "SummaryManager.on_annotation_added"),
        ("repro/maintenance/incremental.py", "SummaryManager.add_annotations"),
        ("repro/maintenance/incremental.py", "SummaryManager.on_annotation_deleted"),
        ("repro/maintenance/incremental.py", "SummaryManager.on_row_deleted"),
        ("repro/maintenance/incremental.py", "SummaryManager.summarize_table"),
        ("repro/storage/annotations.py", "AnnotationStore._reserve_ids"),
        ("repro/storage/annotations.py", "AnnotationStore._pin_id"),
        # SQLiteResultStore shares one connection across query threads;
        # ``with self._connection`` transaction state lives on that
        # connection, so the write methods must be serialized end to
        # end by the store's transaction mutex (DESIGN.md §14's lock
        # inventory).  The lock exists precisely to hold across the SQL
        # it wraps; reads stay lock-free.
        ("repro/zoomin/stores.py", "SQLiteResultStore.put"),
        ("repro/zoomin/stores.py", "SQLiteResultStore.update_access"),
        ("repro/zoomin/stores.py", "SQLiteResultStore.delete"),
        ("repro/zoomin/stores.py", "SQLiteResultStore.clear"),
    }
)

#: Attributes that are lock-protected by construction (DESIGN.md §9's
#: inventory) and therefore safe to assign from executor callables.
IN005_LOCKED_INVENTORY = frozenset(
    {
        "reader",  # ConnectionPool._local.reader is thread-local state
    }
)


def _is_lock_context(expr: ast.expr) -> bool:
    """True when a ``with`` item looks like a threading lock.

    Lexical convention: the final name component contains ``lock``
    (``self._lock``, ``self._cache_lock``, ``registry_lock``) or the
    expression is a bare ``Lock()`` / ``RLock()`` construction.
    """
    name = dotted_name(expr)
    if name is not None:
        return "lock" in name.split(".")[-1].lower()
    if isinstance(expr, ast.Call):
        func = dotted_name(expr.func) or ""
        return func.split(".")[-1] in ("Lock", "RLock")
    return False


def _module_suffix_matches(path: str, suffix: str) -> bool:
    return path.endswith(suffix)


def _allowlisted(path: str, qualname: str) -> bool:
    """True when ``qualname`` in the module at ``path`` is a documented
    fill-under-lock site (IN001_ALLOWLIST)."""
    for suffix, allowed in IN001_ALLOWLIST:
        if _module_suffix_matches(path, suffix) and (
            qualname == allowed or qualname.startswith(allowed + ".")
        ):
            return True
    return False


@register
class NoSQLUnderLock(ProjectRule):
    """IN001: no SQL/pool checkout while holding a lock.

    Two layers share the rule id:

    * the **lexical** pass — SQL or a pool checkout written directly
      inside a ``with``-lock body (the original PR-5 rule);
    * the **interprocedural** pass — a call made while holding a
      non-``guards_io`` lock whose callee (transitively, over the
      project call graph) executes SQL.  The finding anchors at the
      *call site in the lock-holding function*, which is where a
      ``# insightlint: disable=IN001`` suppression belongs — the callee
      is innocent; holding the lock across it is the defect.
    """

    rule_id = "IN001"
    summary = (
        "no SQL execution or pool checkout while holding a threading "
        "lock, directly or through helper calls (probe under lock, "
        "SQL outside, fill under lock)"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            yield from self._walk(module, module.tree.body, "", in_lock=False)
        yield from self._check_interprocedural(project)

    def _check_interprocedural(self, project: Project) -> Iterator[Finding]:
        flow = get_lockflow(project)
        for key, regions in flow.regions.items():
            info = project.graph.functions[key]
            if _allowlisted(info.module.path, info.qualname):
                continue
            reported: set[tuple[int, int]] = set()
            for region in regions:
                held = [
                    lock for lock in region.locks if not lock.guards_io
                ]
                if not held:
                    continue
                names = ", ".join(sorted(f"'{lock.name}'" for lock in held))
                for site in region.calls:
                    if site.callee not in flow.sql_reachable:
                        continue
                    if is_direct_sql_call(site.node):
                        continue  # the lexical pass already reports it
                    anchor = (site.node.lineno, site.node.col_offset)
                    if anchor in reported:
                        continue
                    reported.add(anchor)
                    callee = project.graph.functions[site.callee]
                    yield Finding(
                        path=info.module.path,
                        line=site.node.lineno,
                        column=site.node.col_offset + 1,
                        rule=self.rule_id,
                        severity=self.severity,
                        message=(
                            f"call to {callee.qualname} reaches SQL "
                            f"({flow.sql_witness(site.callee)}) while "
                            f"holding lock(s) {names}; run the SQL "
                            "outside the lock or add the documented "
                            "site to the IN001 allowlist"
                        ),
                    )

    def _walk(
        self,
        module: ModuleSource,
        body: list[ast.stmt],
        qualname: str,
        in_lock: bool,
    ) -> Iterator[Finding]:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner = f"{qualname}.{node.name}" if qualname else node.name
                # A nested function's body runs when *called*, not where
                # it is defined — the lock context does not carry in.
                yield from self._walk(module, node.body, inner, False)
            elif isinstance(node, ast.ClassDef):
                inner = f"{qualname}.{node.name}" if qualname else node.name
                yield from self._walk(module, node.body, inner, in_lock)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                locked = in_lock or any(
                    _is_lock_context(item.context_expr) for item in node.items
                )
                if locked and not in_lock:
                    # Entering a lock: the with-items themselves ran
                    # before the lock was taken; only the body counts.
                    pass
                elif in_lock:
                    for item in node.items:
                        yield from self._check_expr(
                            module, item.context_expr, qualname
                        )
                yield from self._walk(module, node.body, qualname, locked)
            else:
                if in_lock:
                    for child in ast.walk(node):
                        if isinstance(child, ast.Call):
                            yield from self._check_call(
                                module, child, qualname
                            )
                # Compound statements (if/for/try) contain nested
                # statements; when not under a lock we must still
                # descend to find with-blocks inside them.
                if not in_lock:
                    for field in ("body", "orelse", "finalbody"):
                        inner_body = getattr(node, field, None)
                        if inner_body:
                            yield from self._walk(
                                module, inner_body, qualname, in_lock
                            )
                    for handler in getattr(node, "handlers", []) or []:
                        yield from self._walk(
                            module, handler.body, qualname, in_lock
                        )

    def _check_expr(
        self, module: ModuleSource, expr: ast.expr, qualname: str
    ) -> Iterator[Finding]:
        for child in ast.walk(expr):
            if isinstance(child, ast.Call):
                yield from self._check_call(module, child, qualname)

    def _check_call(
        self, module: ModuleSource, call: ast.Call, qualname: str
    ) -> Iterator[Finding]:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        is_sql = func.attr in SQL_METHODS
        receiver = (dotted_name(func.value) or "").lower()
        is_checkout = func.attr in _POOL_CHECKOUTS and "pool" in receiver
        if not (is_sql or is_checkout):
            return
        for suffix, allowed in IN001_ALLOWLIST:
            if _module_suffix_matches(module.path, suffix) and (
                qualname == allowed or qualname.startswith(allowed + ".")
            ):
                return
        what = "pool checkout" if is_checkout else "SQL call"
        yield self.finding(
            module,
            call,
            f"{what} '{dotted_name(func) or func.attr}' inside a lock "
            "body; run SQL outside the lock (probe under lock, SQL "
            "outside, fill under lock) or add the documented site to "
            "the IN001 allowlist",
        )


def _unguarded_self_writes(info: FunctionInfo, graph: CallGraph) -> list[str]:
    """Dotted names of ``self.*`` attributes ``info`` assigns outside
    any lock region (IN005's interprocedural payload).

    Any lock counts as a guard here — including ``guards_io`` locks —
    because IN005 is about data races, not blocking.  ``__init__`` is
    skipped (construction happens-before publication to worker
    threads), as are nested callables (analyzed under their own key),
    inventory attributes, and thread-local (``self._local.*``)
    receivers.
    """
    if info.qualname.split(".")[-1] == "__init__":
        return []
    writes: list[str] = []

    def visit(node: ast.AST, in_lock: bool) -> None:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            locked = in_lock or any(
                graph.resolve_lock(info, item.context_expr) is not None
                or _is_lock_context(item.context_expr)
                for item in node.items
            )
            for stmt in node.body:
                visit(stmt, locked)
            return
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        if not in_lock:
            for target in targets:
                base = target
                while isinstance(base, ast.Subscript):
                    base = base.value
                if not isinstance(base, ast.Attribute):
                    continue
                if base.attr in IN005_LOCKED_INVENTORY:
                    continue
                # Only bare ``self.attr`` receivers count: deeper paths
                # (``self._local.x``) are either thread-local or flagged
                # by the lexical pass on the submitted root itself.
                if (dotted_name(base.value) or "") != "self":
                    continue
                writes.append(dotted_name(base) or base.attr)
        for child in ast.iter_child_nodes(node):
            visit(child, in_lock)

    for child in ast.iter_child_nodes(info.node):
        visit(child, False)
    return writes


@register
class NoSharedMutationInExecutorCallables(ProjectRule):
    """IN005: executor-submitted callables must not mutate shared state.

    The lexical pass checks the submitted callable's own body; the
    interprocedural pass follows the call graph from the submitted
    callable and reports helpers that assign ``self.*`` attributes
    outside any lock — the finding anchors at the *submit site*, where
    the decision to run that code on a worker thread was made.
    """

    rule_id = "IN005"
    summary = (
        "callables submitted to a ThreadPoolExecutor may not assign "
        "attributes of shared objects unless lock-protected, directly "
        "or through helpers"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            yield from self._check_module(module)
        yield from self._check_interprocedural(project)

    def _check_module(self, module: ModuleSource) -> Iterator[Finding]:
        submitted = self._submitted_callables(module.tree)
        if not submitted:
            return
        functions = self._functions_by_name(module.tree)
        for name, call_site in submitted:
            if isinstance(name, ast.Lambda):
                yield from self._check_body(
                    module, [ast.Expr(value=name.body)], "<lambda>"
                )
                continue
            target = functions.get(name)
            if target is None:
                continue
            yield from self._check_body(module, target.body, target.name)

    def _check_interprocedural(self, project: Project) -> Iterator[Finding]:
        graph = project.graph
        reported: set[tuple[str, int, int, str, str]] = set()
        for key, info in graph.functions.items():
            for node in ast.walk(info.node):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("submit", "map")
                    and node.args
                ):
                    continue
                root = graph.resolve_callable_ref(info, node.args[0])
                if root is None:
                    continue
                yield from self._check_reachable_helpers(
                    project, info, node, root, reported
                )

    def _check_reachable_helpers(
        self,
        project: Project,
        submitter: FunctionInfo,
        submit_node: ast.Call,
        root: str,
        reported: set[tuple[str, int, int, str, str]],
    ) -> Iterator[Finding]:
        graph = project.graph
        seen = {root}
        queue = [
            site.callee
            for site in graph.calls.get(root, [])
            if site.callee not in seen
        ]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            helper = graph.functions[current]
            for write in _unguarded_self_writes(helper, graph):
                anchor = (
                    submitter.module.path,
                    submit_node.lineno,
                    submit_node.col_offset,
                    helper.qualname,
                    write,
                )
                if anchor in reported:
                    continue
                reported.add(anchor)
                yield Finding(
                    path=submitter.module.path,
                    line=submit_node.lineno,
                    column=submit_node.col_offset + 1,
                    rule=self.rule_id,
                    severity=self.severity,
                    message=(
                        f"executor-submitted callable reaches "
                        f"{helper.qualname} ({helper.module.path}), "
                        f"which assigns '{write}' outside a lock; "
                        "worker threads must not mutate shared state "
                        "(guard the assignment or add the attribute to "
                        "the lock-protected inventory)"
                    ),
                )
            for site in graph.calls.get(current, []):
                if site.callee not in seen:
                    queue.append(site.callee)

    def _submitted_callables(
        self, tree: ast.Module
    ) -> list[tuple[str | ast.Lambda, ast.Call]]:
        found: list[tuple[str | ast.Lambda, ast.Call]] = []
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("submit", "map")
                and node.args
            ):
                continue
            callee = node.args[0]
            if isinstance(callee, ast.Lambda):
                found.append((callee, node))
            elif isinstance(callee, ast.Name):
                found.append((callee.id, node))
            elif isinstance(callee, ast.Attribute):
                found.append((callee.attr, node))
        return found

    def _functions_by_name(
        self, tree: ast.Module
    ) -> dict[str, ast.FunctionDef | ast.AsyncFunctionDef]:
        functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions.setdefault(node.name, node)
        return functions

    def _check_body(
        self, module: ModuleSource, body: list[ast.stmt], name: str
    ) -> Iterator[Finding]:
        yield from self._walk(module, body, name, in_lock=False)

    def _walk(
        self,
        module: ModuleSource,
        body: list[ast.stmt],
        name: str,
        in_lock: bool,
    ) -> Iterator[Finding]:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, (ast.With, ast.AsyncWith)):
                locked = in_lock or any(
                    _is_lock_context(item.context_expr) for item in node.items
                )
                yield from self._walk(module, node.body, name, locked)
                continue
            if not in_lock:
                yield from self._check_stmt(module, node, name)
            for field in ("body", "orelse", "finalbody"):
                inner = getattr(node, field, None)
                if inner:
                    yield from self._walk(module, inner, name, in_lock)
            for handler in getattr(node, "handlers", []) or []:
                yield from self._walk(module, handler.body, name, in_lock)

    def _check_stmt(
        self, module: ModuleSource, stmt: ast.stmt, name: str
    ) -> Iterator[Finding]:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Expr):
            return
        for target in targets:
            base = target
            while isinstance(base, ast.Subscript):
                base = base.value
            if not isinstance(base, ast.Attribute):
                continue
            if base.attr in IN005_LOCKED_INVENTORY:
                continue
            receiver = dotted_name(base.value) or ""
            if receiver.endswith("_local") or "._local" in f".{receiver}":
                continue  # threading.local() state is per-thread
            yield self.finding(
                module,
                target,
                f"executor callable {name!r} assigns "
                f"'{dotted_name(base) or base.attr}'; submitted callables "
                "must not mutate shared state outside a lock (add the "
                "attribute to the lock-protected inventory if it is "
                "guarded)",
            )
