"""Interprocedural lock-discipline rules: IN007 and IN008.

Both consume :class:`~repro.analysis.lint.lockflow.LockFlow` summaries
over the project call graph, and both speak the registry lock names from
``repro.concurrency.make_lock`` so their findings line up with the
runtime sanitizer's reports.

IN007 — **lock-order consistency**.  Every observed "acquire B while
holding A" — a nested ``with``, the left-to-right items of one ``with``
statement, or a call (transitively) acquiring B inside A's region —
becomes an edge ``A → B`` of a static acquisition-order graph.  A cycle
means two code paths take the same locks in opposite orders: a
potential deadlock, reported once per cycle at the earliest witness
site.  Same-name edges are ignored (two stripes of one striped lock are
interchangeable — instance-level ordering is not a discipline the
engine defines, and the runtime sanitizer tallies same-role nesting
separately).

IN008 — **no blocking call under a lock**.  An unbounded
``Future.result()``, ``queue.get()``, ``Event.wait()``, socket read, or
``time.sleep`` reached while holding a lock stalls every thread waiting
on that lock.  Locks created with ``guards_io=True`` are exempt — they
exist precisely to serialize blocking work (single-writer checkout, the
zoom-in store's transaction mutex).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.lint.callgraph import LockInfo, Project
from repro.analysis.lint.framework import (
    Finding,
    ProjectRule,
    register,
)
from repro.analysis.lint.lockflow import LockFlow, get_lockflow


@register
class LockOrderConsistency(ProjectRule):
    """IN007: the static acquisition-order graph must stay acyclic."""

    rule_id = "IN007"
    summary = (
        "lock acquisition order must be globally consistent (a cycle "
        "in the static order graph is a potential deadlock)"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        flow = get_lockflow(project)
        #: (from name, to name) -> earliest witness (path, line, col, how)
        edges: dict[tuple[str, str], tuple[str, int, int, str]] = {}

        def note_edge(
            held: LockInfo,
            acquired: LockInfo,
            path: str,
            node: ast.AST,
            how: str,
        ) -> None:
            if held.name == acquired.name:
                return
            witness = (
                path,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0),
                how,
            )
            key = (held.name, acquired.name)
            if key not in edges or witness[:2] < edges[key][:2]:
                edges[key] = witness

        for key, regions in flow.regions.items():
            info = project.graph.functions[key]
            path = info.module.path
            for region in regions:
                # Left-to-right items of one with statement.
                for index, held in enumerate(region.locks):
                    for acquired in region.locks[index + 1 :]:
                        note_edge(
                            held,
                            acquired,
                            path,
                            region.with_node,
                            "acquired by the same with statement",
                        )
                for held in region.locks:
                    # Nested with statements inside the region.
                    for acquired, with_node in region.nested_locks:
                        note_edge(
                            held,
                            acquired,
                            path,
                            with_node,
                            "acquired by a nested with statement",
                        )
                    # Calls that (transitively) acquire locks.
                    for site in region.calls:
                        callee = project.graph.functions[site.callee]
                        for acquired in flow.lock_acquires.get(
                            site.callee, ()
                        ):
                            note_edge(
                                held,
                                acquired,
                                path,
                                site.node,
                                f"acquired via call to {callee.qualname}",
                            )

        yield from self._cycle_findings(edges)

    def _cycle_findings(
        self, edges: dict[tuple[str, str], tuple[str, int, int, str]]
    ) -> Iterator[Finding]:
        successors: dict[str, set[str]] = {}
        for source, dest in edges:
            successors.setdefault(source, set()).add(dest)
        for component in _cyclic_components(successors):
            member_edges = sorted(
                (witness[:2], source, dest, witness)
                for (source, dest), witness in edges.items()
                if source in component and dest in component
            )
            _, _, _, anchor = member_edges[0]
            ordering = " ; ".join(
                f"{source} -> {dest} at {witness[0]}:{witness[1]} "
                f"({witness[3]})"
                for _, source, dest, witness in member_edges
            )
            names = ", ".join(sorted(component))
            yield Finding(
                path=anchor[0],
                line=anchor[1],
                column=anchor[2] + 1,
                rule=self.rule_id,
                severity=self.severity,
                message=(
                    f"lock-order cycle between {{{names}}} — potential "
                    f"deadlock; acquisition edges: {ordering}"
                ),
            )


def _cyclic_components(
    successors: dict[str, set[str]]
) -> list[frozenset[str]]:
    """Strongly connected components with more than one node (Tarjan)."""
    index_of: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = 0
    components: list[frozenset[str]] = []
    nodes = sorted(
        set(successors) | {dest for dests in successors.values() for dest in dests}
    )

    def strongconnect(node: str) -> None:
        nonlocal counter
        # Iterative Tarjan: (node, iterator over successors) frames.
        work = [(node, iter(sorted(successors.get(node, ()))))]
        index_of[node] = low[node] = counter
        counter += 1
        stack.append(node)
        on_stack.add(node)
        while work:
            current, successors_iter = work[-1]
            advanced = False
            for dest in successors_iter:
                if dest not in index_of:
                    index_of[dest] = low[dest] = counter
                    counter += 1
                    stack.append(dest)
                    on_stack.add(dest)
                    work.append(
                        (dest, iter(sorted(successors.get(dest, ()))))
                    )
                    advanced = True
                    break
                if dest in on_stack:
                    low[current] = min(low[current], index_of[dest])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[current])
            if low[current] == index_of[current]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == current:
                        break
                if len(component) > 1:
                    components.append(frozenset(component))

    for node in nodes:
        if node not in index_of:
            strongconnect(node)
    return components


@register
class NoBlockingCallUnderLock(ProjectRule):
    """IN008: nothing may block unboundedly while holding a lock."""

    rule_id = "IN008"
    summary = (
        "no unbounded blocking call (Future.result / queue.get / "
        "Event.wait / socket read without timeout) while holding a "
        "lock, directly or through helpers (guards_io locks exempt)"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        flow = get_lockflow(project)
        reported: set[tuple[str, int, int]] = set()
        for key, regions in flow.regions.items():
            info = project.graph.functions[key]
            path = info.module.path
            for region in regions:
                held = [
                    lock for lock in region.locks if not lock.guards_io
                ]
                if not held:
                    continue
                names = ", ".join(
                    sorted(f"'{lock.name}'" for lock in held)
                )
                for site in region.blocking:
                    anchor = (path, site.node.lineno, site.node.col_offset)
                    if anchor in reported:
                        continue
                    reported.add(anchor)
                    yield Finding(
                        path=path,
                        line=site.node.lineno,
                        column=site.node.col_offset + 1,
                        rule=self.rule_id,
                        severity=self.severity,
                        message=(
                            f"{site.description} while holding lock(s) "
                            f"{names}; move the wait outside the lock "
                            "or bound it with a timeout"
                        ),
                    )
                for call_site in region.calls:
                    if call_site.callee not in flow.blocking_reachable:
                        continue
                    anchor = (
                        path,
                        call_site.node.lineno,
                        call_site.node.col_offset,
                    )
                    if anchor in reported:
                        continue
                    reported.add(anchor)
                    callee = project.graph.functions[call_site.callee]
                    yield Finding(
                        path=path,
                        line=call_site.node.lineno,
                        column=call_site.node.col_offset + 1,
                        rule=self.rule_id,
                        severity=self.severity,
                        message=(
                            f"call to {callee.qualname} reaches a "
                            f"blocking wait ({flow.blocking_witness(call_site.callee)}) "
                            f"while holding lock(s) {names}; move the "
                            "call outside the lock or bound the wait"
                        ),
                    )


__all__ = ["LockFlow", "LockOrderConsistency", "NoBlockingCallUnderLock"]
