"""Copy-on-write rule for shared summary objects.

IN004 — summary objects returned by the catalog and manager caches are
*shared*: the same live object is handed to every concurrent query that
touches the row.  Engine operators must therefore take a
``for_query()`` (or ``copy()``) copy before mutating one — mutating the
cached object in place corrupts every other query's view and the next
write-back.  The rule tracks, within each function in ``engine/``
modules, names bound from cache getters and flags attribute assignment
or mutating-method calls on them unless a copy was interposed.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.lint.framework import (
    Finding,
    ModuleSource,
    Rule,
    register,
)

#: Getters returning one shared object.
OBJECT_GETTERS = frozenset({"load_object", "current_object"})

#: Getters returning a mapping of shared objects.
BULK_GETTERS = frozenset({"load_objects_for_table", "objects_for_rows"})

#: Copies that make a value private to this query.
COPY_METHODS = frozenset({"for_query", "copy"})

#: In-place mutations of a summary object (or its containers).
MUTATING_METHODS = frozenset(
    {
        "remove_annotations",
        "fold",
        "fold_many",
        "merge_from",
        "add_annotation",
        "clear",
        "rerank",
        "update",
        "append",
        "extend",
        "add",
        "discard",
        "pop",
        "popitem",
        "remove",
        "insert",
        "setdefault",
    }
)

#: The rule only applies where shared objects cross into query
#: processing; maintenance code (the write path) mutates caches by design.
_ENGINE_PATH_MARKERS = ("/engine/", "/zoomin/")

_OBJ = "object"
_MAP = "mapping"


@register
class CopyOnWriteSummaries(Rule):
    """IN004: no in-place mutation of cache-shared summary objects."""

    rule_id = "IN004"
    summary = (
        "engine operators must call for_query()/copy() before mutating "
        "a summary object obtained from the catalog or manager caches"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not any(marker in module.path for marker in _ENGINE_PATH_MARKERS):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node)

    def _check_function(
        self,
        module: ModuleSource,
        function: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        taints: dict[str, str] = {}
        yield from self._walk(module, function.body, taints)

    def _walk(
        self,
        module: ModuleSource,
        body: list[ast.stmt],
        taints: dict[str, str],
    ) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested scope: fresh analysis elsewhere
            yield from self._check_stmt(module, stmt, taints)
            if isinstance(stmt, ast.For):
                self._taint_loop_target(stmt, taints)
            for field in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, field, None)
                if inner:
                    yield from self._walk(module, inner, taints)
            for handler in getattr(stmt, "handlers", []) or []:
                yield from self._walk(module, handler.body, taints)

    # -- taint bookkeeping ---------------------------------------------

    def _taint_of_expr(
        self, node: ast.expr, taints: dict[str, str]
    ) -> str | None:
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            attr = node.func.attr
            if attr in OBJECT_GETTERS:
                return _OBJ
            if attr in BULK_GETTERS:
                return _MAP
            if attr in COPY_METHODS:
                return None  # copies are private — never tainted
            receiver = node.func.value
            if (
                isinstance(receiver, ast.Name)
                and taints.get(receiver.id) == _MAP
                and attr == "get"
            ):
                return _OBJ
        if isinstance(node, ast.Subscript):
            base = node.value
            if isinstance(base, ast.Name) and taints.get(base.id) == _MAP:
                return _OBJ
        if isinstance(node, ast.Name):
            return taints.get(node.id)
        if isinstance(node, ast.IfExp):
            return self._taint_of_expr(
                node.body, taints
            ) or self._taint_of_expr(node.orelse, taints)
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                taint = self._taint_of_expr(value, taints)
                if taint is not None:
                    return taint
        return None

    def _taint_loop_target(
        self, stmt: ast.For, taints: dict[str, str]
    ) -> None:
        """``for obj in mapping.values()`` / ``for k, obj in .items()``."""
        iterator = stmt.iter
        if not (
            isinstance(iterator, ast.Call)
            and isinstance(iterator.func, ast.Attribute)
            and isinstance(iterator.func.value, ast.Name)
            and taints.get(iterator.func.value.id) == _MAP
        ):
            return
        attr = iterator.func.attr
        target = stmt.target
        if attr == "values" and isinstance(target, ast.Name):
            taints[target.id] = _OBJ
        elif (
            attr == "items"
            and isinstance(target, ast.Tuple)
            and len(target.elts) == 2
            and isinstance(target.elts[1], ast.Name)
        ):
            taints[target.elts[1].id] = _OBJ

    # -- violations ----------------------------------------------------

    def _check_stmt(
        self, module: ModuleSource, stmt: ast.stmt, taints: dict[str, str]
    ) -> Iterator[Finding]:
        if isinstance(stmt, ast.Assign):
            taint = self._taint_of_expr(stmt.value, taints)
            for target in stmt.targets:
                yield from self._check_target(module, target, taints)
                if isinstance(target, ast.Name):
                    if taint is None:
                        taints.pop(target.id, None)
                    else:
                        taints[target.id] = taint
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            taint = self._taint_of_expr(stmt.value, taints)
            if isinstance(stmt.target, ast.Name):
                if taint is None:
                    taints.pop(stmt.target.id, None)
                else:
                    taints[stmt.target.id] = taint
        elif isinstance(stmt, ast.AugAssign):
            yield from self._check_target(module, stmt.target, taints)
        elif isinstance(stmt, ast.Expr):
            yield from self._check_mutating_call(module, stmt.value, taints)

    def _check_target(
        self, module: ModuleSource, target: ast.expr, taints: dict[str, str]
    ) -> Iterator[Finding]:
        base = target
        while isinstance(base, (ast.Attribute, ast.Subscript)):
            base = base.value
        if (
            isinstance(base, ast.Name)
            and taints.get(base.id) == _OBJ
            and base is not target
        ):
            yield self.finding(
                module,
                target,
                f"assignment into {base.id!r}, a summary object shared "
                "through the catalog/manager cache; take "
                f"{base.id}.for_query() (or .copy()) first",
            )

    def _check_mutating_call(
        self, module: ModuleSource, expr: ast.expr, taints: dict[str, str]
    ) -> Iterator[Finding]:
        if not (
            isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute)
        ):
            return
        attr = expr.func.attr
        if attr not in MUTATING_METHODS:
            return
        base = expr.func.value
        while isinstance(base, (ast.Attribute, ast.Subscript)):
            base = base.value
        if isinstance(base, ast.Name) and taints.get(base.id) in (_OBJ, _MAP):
            yield self.finding(
                module,
                expr,
                f"call to {attr}() mutates {base.id!r}, obtained from the "
                "catalog/manager cache, in place; take "
                f"{base.id}.for_query() (or .copy()) before mutating",
            )
