"""SQL-safety rules: pool-only connections and parameterized-only SQL.

IN002 — every SQLite connection must be opened through
:mod:`repro.storage.pool` (the pool registers connections for teardown,
tracing, and the single-writer discipline; a raw ``sqlite3.connect``
bypasses all three).

IN003 — SQL strings handed to ``execute*()`` must be parameterized.
Dynamic *values* go through ``?`` placeholders; dynamic *identifiers*
may only be interpolated through the vetted helpers in
:mod:`repro.storage.sqlsafe` (``quote_ident`` / ``quoted_csv``) or
``placeholders`` for ``IN``-list marks.  Module-level ``ALL_CAPS``
constants (system table names, pragma values — literal-derived by
convention) are also allowed.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.lint.framework import (
    Finding,
    ModuleSource,
    Rule,
    dotted_name,
    register,
)

#: Where raw ``sqlite3.connect`` is legitimate — the pool is the single
#: doorway to SQLite (see DESIGN.md §9/§10).
_CONNECT_ALLOWED_SUFFIX = "storage/pool.py"

#: Vetted SQL-construction helpers (repro.storage.sqlsafe).
_VETTED_HELPERS = frozenset(
    {"quote_ident", "quoted_csv", "placeholders", "aggregate_select"}
)

#: ``execute``-family methods checked on connection-like receivers.
_EXECUTE_METHODS = frozenset({"execute", "executemany", "executescript"})

#: Database fetch helpers — always SQL, whatever the receiver is called.
_FETCH_METHODS = frozenset({"fetch_all", "fetch_one", "fetch_value"})

#: Receiver-name fragments that mark a connection-like object.
_CONNECTION_TOKENS = ("conn", "cursor", "db")


@register
class PoolOnlyConnections(Rule):
    """IN002: no raw ``sqlite3.connect`` outside ``storage/pool.py``."""

    rule_id = "IN002"
    summary = (
        "sqlite3.connect is only allowed in storage/pool.py; use the "
        "pool's connect() factory so every connection is registered"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.path.endswith(_CONNECT_ALLOWED_SUFFIX):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and dotted_name(node.func) in (
                "sqlite3.connect",
                # Constructing the Connection class directly (also via
                # the dbapi2 alias) is the same bypass in disguise.
                "sqlite3.Connection",
                "sqlite3.dbapi2.connect",
                "sqlite3.dbapi2.Connection",
            ):
                yield self.finding(
                    module,
                    node,
                    "raw sqlite3 connection creation bypasses the "
                    "connection pool (teardown, tracing, single-writer "
                    "discipline); use repro.storage.pool.connect",
                )
            elif (
                isinstance(node, ast.ImportFrom)
                and node.module in ("sqlite3", "sqlite3.dbapi2")
                and any(
                    alias.name in ("connect", "Connection")
                    for alias in node.names
                )
            ):
                yield self.finding(
                    module,
                    node,
                    "importing connect/Connection from sqlite3 hides raw "
                    "connection creation from review; use "
                    "repro.storage.pool.connect",
                )


def _is_all_caps(name: str) -> bool:
    """True for the module-constant convention (``_STATE_TABLE``)."""
    stripped = name.lstrip("_")
    return bool(stripped) and stripped == stripped.upper()


def _is_vetted_helper_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in _VETTED_HELPERS
    if isinstance(func, ast.Attribute):
        return func.attr in _VETTED_HELPERS
    return False


class _Scope:
    """Assignments of simple names within one function (or the module)."""

    def __init__(self, body: list[ast.stmt]) -> None:
        self.assignments: dict[str, list[ast.expr]] = {}
        for node in _scope_walk(body):  # nested scopes track their own names
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.assignments.setdefault(target.id, []).append(
                            node.value
                        )
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    self.assignments.setdefault(node.target.id, []).append(
                        node.value
                    )
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Name):
                    self.assignments.setdefault(node.target.id, []).append(
                        node.value
                    )

    def lookup(self, name: str) -> list[ast.expr] | None:
        return self.assignments.get(name)


@register
class ParameterizedSQLOnly(Rule):
    """IN003: no string-built SQL into ``execute*()``."""

    rule_id = "IN003"
    summary = (
        "SQL must be parameterized; interpolate identifiers only through "
        "sqlsafe.quote_ident/quoted_csv and IN-marks through placeholders"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for scope_body in _scope_bodies(module.tree):
            scope = _Scope(scope_body)
            for node in _scope_walk(scope_body):
                if not isinstance(node, ast.Call):
                    continue
                method = self._sql_method(node)
                if method is None or not node.args:
                    continue
                sql = node.args[0]
                reason = self._rejects(sql, scope, depth=0)
                if reason is not None:
                    yield self.finding(
                        module,
                        sql,
                        f"SQL passed to {method}() is built dynamically "
                        f"({reason}); parameterize values with '?' and "
                        "route identifiers through "
                        "repro.storage.sqlsafe.quote_ident",
                    )

    # -- what counts as an execute site --------------------------------

    def _sql_method(self, node: ast.Call) -> str | None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return None
        if func.attr in _FETCH_METHODS:
            return func.attr
        if func.attr not in _EXECUTE_METHODS:
            return None
        receiver = dotted_name(func.value) or ""
        components = receiver.lower().split(".")
        if any(
            token in component
            for component in components
            for token in _CONNECTION_TOKENS
        ):
            return func.attr
        return None

    # -- is this SQL expression vetted? --------------------------------

    def _rejects(
        self, node: ast.expr, scope: _Scope, depth: int
    ) -> str | None:
        """None when vetted, else a short reason string."""
        if depth > 4:
            return "construction too deep to verify"
        if isinstance(node, ast.Constant):
            return None if isinstance(node.value, str) else "non-string SQL"
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    reason = self._rejects_interpolation(value.value, scope)
                    if reason is not None:
                        return reason
            return None
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Mod):
                return "%-formatting into SQL"
            if isinstance(node.op, ast.Add):
                left = self._rejects(node.left, scope, depth + 1)
                right = self._rejects(node.right, scope, depth + 1)
                return left or right
            return None
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "format"
            ):
                return ".format() into SQL"
            return None  # other call results are out of lexical reach
        if isinstance(node, ast.Name):
            if _is_all_caps(node.id):
                return None
            assigned = scope.lookup(node.id)
            if assigned is None:
                return None  # parameter/global — out of lexical reach
            for value in assigned:
                reason = self._rejects(value, scope, depth + 1)
                if reason is not None:
                    return f"local {node.id!r}: {reason}"
            return None
        return None  # attributes, subscripts: out of lexical reach

    def _rejects_interpolation(
        self, node: ast.expr, scope: _Scope
    ) -> str | None:
        if isinstance(node, ast.Constant):
            return None
        if _is_vetted_helper_call(node):
            return None
        if isinstance(node, ast.Name):
            if _is_all_caps(node.id):
                return None
            assigned = scope.lookup(node.id)
            if assigned is not None and all(
                _is_vetted_helper_call(value) for value in assigned
            ):
                return None
            return (
                f"f-string interpolates {node.id!r}, which is not a "
                "module constant or a sqlsafe helper result"
            )
        if isinstance(node, ast.Attribute):
            if _is_all_caps(node.attr):
                return None
            return f"f-string interpolates attribute {node.attr!r}"
        return f"f-string interpolates a {type(node).__name__} expression"


def _scope_bodies(tree: ast.Module) -> Iterator[list[ast.stmt]]:
    """The module body and every function body (rule scopes)."""
    yield tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.body


def _scope_walk(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk a scope body without descending into nested functions.

    Function nodes encountered *inside* the body are yielded but not
    entered — their bodies are separate scopes, walked on their own by
    :func:`_scope_bodies` (entering them here would double-report).
    """
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))
