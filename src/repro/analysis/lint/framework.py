"""The insightlint core: findings, rule registry, suppression, baseline.

The engine's correctness under concurrency rests on conventions that no
general-purpose linter knows about — probe-under-lock / SQL-outside-lock,
pool-only database access, parameterized-only SQL, copy-on-write
``for_query()`` before mutating shared summary objects.  ``insightlint``
turns those conventions into machine-checked rules over Python's ``ast``
(the same move the InsightNotes engine makes with invariant properties:
declare the discipline once, enforce it mechanically everywhere).

Layout
------
* :class:`Finding` — one rule violation at one source location;
* :class:`Rule` — the rule contract; concrete rules live in
  :mod:`repro.analysis.lint.rules` and self-register via :func:`register`;
* :class:`ModuleSource` — a parsed module plus its per-line suppressions;
* :class:`Baseline` — grandfathered findings, keyed ``rule::path`` with a
  count (line numbers churn too much to key on);
* :func:`run_lint` — the driver the CLI and the tests share.

Suppression
-----------
A trailing comment silences specific rules on that line::

    cursor.execute(sql)  # insightlint: disable=IN003 -- fragment is vetted

A comment alone on a line applies to the *next* line.  ``disable`` with
no rule list silences every rule.  Suppressions are for sites where the
invariant provably holds but the lexical analysis cannot see it; the
baseline is for grandfathered debt that should shrink, never grow.
"""

from __future__ import annotations

import abc
import ast
import io
import json
import tokenize
from collections.abc import Iterable, Iterator, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from dataclasses import field as dataclass_field
from pathlib import Path
from typing import TYPE_CHECKING, ClassVar

if TYPE_CHECKING:
    from repro.analysis.lint.callgraph import Project

#: Marker meaning "all rules suppressed on this line".
ALL_RULES = "*"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    column: int
    rule: str
    severity: str
    message: str

    def key(self) -> str:
        """The baseline key — stable across unrelated line churn."""
        return f"{self.rule}::{self.path}"

    def to_json(self) -> dict[str, object]:
        """Plain-dict view for the ``--format json`` report."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }

    def render(self) -> str:
        """The ``--format text`` line."""
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )


class ModuleSource:
    """A module under analysis: path, text, tree, and suppressed lines."""

    def __init__(self, path: str, text: str, tree: ast.Module) -> None:
        self.path = path
        self.text = text
        self.tree = tree
        self.lines = text.splitlines()
        self.suppressions = _parse_suppressions(text)

    def suppressed(self, rule_id: str, line: int) -> bool:
        """True when ``rule_id`` is disabled on ``line``."""
        rules = self.suppressions.get(line)
        return rules is not None and (ALL_RULES in rules or rule_id in rules)


def _parse_suppressions(text: str) -> dict[int, frozenset[str]]:
    """Map line numbers to the rule ids disabled there.

    Uses the tokenizer (not a regex over raw lines) so directives inside
    string literals are never misread as comments.  A comment that is the
    only token on its line applies to the next line instead.
    """
    suppressions: dict[int, set[str]] = {}
    code_lines: set[int] = set()
    comments: list[tuple[int, str]] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return {}
    for token in tokens:
        if token.type == tokenize.COMMENT:
            comments.append((token.start[0], token.string))
        elif token.type not in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
        ):
            code_lines.add(token.start[0])
    for line, comment in comments:
        rules = _parse_directive(comment)
        if rules is None:
            continue
        target = line if line in code_lines else line + 1
        suppressions.setdefault(target, set()).update(rules)
    return {line: frozenset(rules) for line, rules in suppressions.items()}


def _parse_directive(comment: str) -> set[str] | None:
    """Rule ids from an ``# insightlint: disable=...`` comment, or None."""
    body = comment.lstrip("#").strip()
    if not body.startswith("insightlint:"):
        return None
    directive = body[len("insightlint:") :].strip()
    if not directive.startswith("disable"):
        return None
    directive = directive[len("disable") :]
    if not directive.startswith("="):
        return {ALL_RULES}
    # Everything up to whitespace after the '=' is the rule list; the
    # rest of the comment is free-form justification.
    listed = directive[1:].split()[0] if directive[1:].split() else ""
    rules = {rule.strip() for rule in listed.split(",") if rule.strip()}
    return rules or {ALL_RULES}


class Rule(abc.ABC):
    """One invariant checker.  Subclasses set the class attributes and
    implement :meth:`check`; registration is via :func:`register`."""

    rule_id: ClassVar[str]
    severity: ClassVar[str] = "error"
    summary: ClassVar[str]

    @abc.abstractmethod
    def check(self, module: ModuleSource) -> Iterator[Finding]:
        """Yield findings for ``module``."""

    def finding(
        self, module: ModuleSource, node: ast.AST, message: str
    ) -> Finding:
        """A finding anchored at ``node``."""
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule=self.rule_id,
            severity=self.severity,
            message=message,
        )


class ProjectRule(Rule):
    """A rule that needs the whole project (call graph, lock map).

    Subclasses implement :meth:`check_project`; the inherited
    :meth:`check` wraps a lone module in a single-module project, so
    ``lint_source`` fixtures exercise the interprocedural machinery
    without touching the filesystem.
    """

    @abc.abstractmethod
    def check_project(self, project: Project) -> Iterator[Finding]:
        """Yield findings across the whole project."""

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        from repro.analysis.lint.callgraph import Project as _Project

        yield from self.check_project(_Project([module]))


_REGISTRY: dict[str, Rule] = {}


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register a rule."""
    instance = rule_class()
    if rule_class.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id: {rule_class.rule_id}")
    _REGISTRY[rule_class.rule_id] = instance
    return rule_class


def all_rules() -> dict[str, Rule]:
    """The registered rules, importing the built-in set on first use."""
    from repro.analysis.lint import rules as _builtin  # noqa: F401

    return dict(_REGISTRY)


# -- helpers shared by the rule implementations -------------------------


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def enclosing_functions(
    tree: ast.Module,
) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Yield ``(qualname, function)`` for every function in the module."""

    def walk(
        node: ast.AST, prefix: str
    ) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                yield qualname, child
                yield from walk(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.")
            else:
                yield from walk(child, prefix)

    yield from walk(tree, "")


# -- baseline ----------------------------------------------------------


class Baseline:
    """Grandfathered findings: ``rule::path`` keys with allowed counts.

    The format deliberately omits line numbers so unrelated edits do not
    invalidate entries; a file either still carries N grandfathered
    violations of a rule or it does not.  ``apply`` consumes allowances
    first-come (file order), so newly added violations in a baselined
    file still surface once the allowance is spent.
    """

    VERSION = 1

    def __init__(self, entries: dict[str, int] | None = None) -> None:
        self.entries = dict(entries or {})

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        data = json.loads(path.read_text())
        if data.get("version") != cls.VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} "
                f"in {path} (expected {cls.VERSION})"
            )
        entries = data.get("entries", {})
        if not isinstance(entries, dict) or not all(
            isinstance(count, int) and count > 0 for count in entries.values()
        ):
            raise ValueError(f"malformed baseline entries in {path}")
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        """A baseline grandfathering exactly the given findings."""
        entries: dict[str, int] = {}
        for finding in findings:
            entries[finding.key()] = entries.get(finding.key(), 0) + 1
        return cls(entries)

    def save(self, path: Path) -> None:
        """Write the baseline file (sorted keys, stable diffs)."""
        payload = {
            "version": self.VERSION,
            "entries": dict(sorted(self.entries.items())),
        }
        path.write_text(json.dumps(payload, indent=2) + "\n")

    def merged_with(
        self, findings: Iterable[Finding], linted_paths: Iterable[str]
    ) -> "Baseline":
        """A new baseline with linted paths rebuilt from ``findings``.

        Entries whose path was linted are replaced by the observed
        counts — so allowances *shrink* (or vanish) when violations are
        fixed — while entries for paths outside the linted set are
        preserved untouched.  This is the ``--fix-baseline`` semantics:
        refreshing from a subset of the tree must never wipe other
        files' grandfathered debt, and fixing a violation must never
        leave a stale allowance behind for the next regression to hide
        under.
        """
        linted = set(linted_paths)
        entries = {
            key: count
            for key, count in self.entries.items()
            if key.split("::", 1)[-1] not in linted
        }
        entries.update(Baseline.from_findings(findings).entries)
        return Baseline(entries)

    def apply(
        self, findings: Sequence[Finding]
    ) -> tuple[list[Finding], list[Finding]]:
        """Split findings into ``(fresh, grandfathered)``."""
        remaining = dict(self.entries)
        fresh: list[Finding] = []
        grandfathered: list[Finding] = []
        for finding in findings:
            if remaining.get(finding.key(), 0) > 0:
                remaining[finding.key()] -= 1
                grandfathered.append(finding)
            else:
                fresh.append(finding)
        return fresh, grandfathered


# -- driver ------------------------------------------------------------


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding]
    grandfathered: list[Finding]
    suppressed: int
    files_checked: int
    parse_errors: list[Finding]
    #: repo-relative paths actually parsed this run (what --fix-baseline
    #: may rebuild; entries for other paths must be preserved)
    checked_paths: set[str] = dataclass_field(default_factory=set)

    @property
    def failed(self) -> bool:
        """True when any fresh error-severity finding remains."""
        return any(f.severity == "error" for f in self.findings) or bool(
            self.parse_errors
        )


def collect_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(
                candidate
                for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
            )
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def relative_path(path: Path, root: Path | None = None) -> str:
    """Repo-relative posix path when possible (stable baseline keys)."""
    base = root or Path.cwd()
    try:
        return path.resolve().relative_to(base.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_source(
    source: str,
    path: str = "module.py",
    rule_ids: Sequence[str] | None = None,
) -> list[Finding]:
    """Lint an in-memory module — the hermetic entry point the rule tests
    use (fixtures stay inline strings, never repo files).

    Project rules see a single-module project, so inline fixtures
    exercise the interprocedural rules too.
    """
    tree = ast.parse(source)
    module = ModuleSource(path, source, tree)
    rules = all_rules()
    selected = (
        [rules[rule_id] for rule_id in rule_ids] if rule_ids else rules.values()
    )
    findings = [
        finding
        for rule in selected
        for finding in rule.check(module)
        if not module.suppressed(finding.rule, finding.line)
    ]
    return sorted(findings)


def _parse_one(
    file_path: Path, root: Path | None
) -> tuple[ModuleSource | None, Finding | None]:
    """Parse one file into a module, or a parse-error finding."""
    rel = relative_path(file_path, root)
    text = file_path.read_text()
    try:
        tree = ast.parse(text)
    except SyntaxError as exc:
        return None, Finding(
            path=rel,
            line=exc.lineno or 1,
            column=(exc.offset or 0) + 1,
            rule="IN000",
            severity="error",
            message=f"file does not parse: {exc.msg}",
        )
    return ModuleSource(rel, text, tree), None


def parse_modules(
    files: Sequence[Path],
    root: Path | None = None,
    jobs: int | None = None,
) -> tuple[list[ModuleSource], list[Finding]]:
    """Parse ``files`` (in parallel when ``jobs`` allows) into modules.

    Parsing dominates lint wall-clock and ``ast.parse`` releases the
    GIL while tokenizing, so a small thread pool gives a real speedup;
    results come back in input order regardless of completion order.
    """
    if jobs is None:
        jobs = min(8, len(files)) or 1
    modules: list[ModuleSource] = []
    parse_errors: list[Finding] = []
    if jobs <= 1 or len(files) <= 1:
        parsed = [_parse_one(file_path, root) for file_path in files]
    else:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            parsed = list(
                pool.map(lambda file_path: _parse_one(file_path, root), files)
            )
    for module, error in parsed:
        if module is not None:
            modules.append(module)
        if error is not None:
            parse_errors.append(error)
    return modules, parse_errors


def run_lint(
    paths: Sequence[Path],
    baseline: Baseline | None = None,
    root: Path | None = None,
    rule_ids: Sequence[str] | None = None,
    report_paths: set[str] | None = None,
    jobs: int | None = None,
) -> LintReport:
    """Lint every ``.py`` file under ``paths``.

    ``baseline`` (when given) moves grandfathered findings out of the
    failing set; ``root`` anchors the repo-relative paths used in
    findings and baseline keys (defaults to the current directory).
    ``rule_ids`` restricts the rule set; ``report_paths`` (when given)
    restricts *reported* findings to those repo-relative paths while
    still parsing and analyzing everything — the ``--changed-only``
    quick path, which must keep the whole project visible or the
    interprocedural rules would miss cross-file effects.  ``jobs``
    bounds the parallel parse pool.
    """
    from repro.analysis.lint.callgraph import Project

    rules = all_rules()
    if rule_ids is not None:
        unknown = [rule_id for rule_id in rule_ids if rule_id not in rules]
        if unknown:
            raise ValueError(f"unknown rule ids: {', '.join(unknown)}")
        rules = {rule_id: rules[rule_id] for rule_id in rule_ids}
    module_rules = [
        rule for rule in rules.values() if not isinstance(rule, ProjectRule)
    ]
    project_rules = [
        rule for rule in rules.values() if isinstance(rule, ProjectRule)
    ]

    files = collect_files(paths)
    modules, parse_errors = parse_modules(files, root, jobs)
    by_path = {module.path: module for module in modules}

    findings: list[Finding] = []
    suppressed = 0

    def admit(module: ModuleSource | None, finding: Finding) -> None:
        nonlocal suppressed
        if module is not None and module.suppressed(
            finding.rule, finding.line
        ):
            suppressed += 1
            return
        if report_paths is not None and finding.path not in report_paths:
            return
        findings.append(finding)

    for module in modules:
        for rule in module_rules:
            for finding in rule.check(module):
                admit(module, finding)
    if project_rules:
        project = Project(modules)
        for rule in project_rules:
            for finding in rule.check_project(project):
                admit(by_path.get(finding.path), finding)

    if report_paths is not None:
        parse_errors = [
            error for error in parse_errors if error.path in report_paths
        ]
    findings.sort()
    grandfathered: list[Finding] = []
    if baseline is not None:
        findings, grandfathered = baseline.apply(findings)
    return LintReport(
        findings=findings,
        grandfathered=grandfathered,
        suppressed=suppressed,
        files_checked=len(files),
        parse_errors=parse_errors,
        checked_paths={relative_path(file_path, root) for file_path in files},
    )
