"""insightlint — AST-based invariant checking for the engine's disciplines.

The concurrency, SQL-safety, and copy-on-write conventions that keep the
engine correct (DESIGN.md §6–§9) are enforced mechanically here instead
of by reviewers re-deriving them per diff.  See DESIGN.md §10 for the
rule catalogue and the suppression/baseline workflow.

Public API: :func:`lint_source` (hermetic, for tests),
:func:`run_lint` + :class:`Baseline` (the CLI driver), :func:`all_rules`.
"""

from repro.analysis.lint.framework import (
    ALL_RULES,
    Baseline,
    Finding,
    LintReport,
    ModuleSource,
    Rule,
    all_rules,
    lint_source,
    register,
    run_lint,
)

__all__ = [
    "ALL_RULES",
    "Baseline",
    "Finding",
    "LintReport",
    "ModuleSource",
    "Rule",
    "all_rules",
    "lint_source",
    "register",
    "run_lint",
]
