"""The insightlint command line.

Usage::

    PYTHONPATH=src python -m repro.analysis.lint [paths...]
        [--format text|json] [--output PATH]
        [--baseline] [--baseline-file PATH] [--fix-baseline]
        [--rules IN001,IN007] [--changed-only] [--jobs N]
        [--list-rules]

Exit status is 0 when no fresh error-severity finding remains, 1
otherwise, and 2 for usage errors (bad baseline file, unknown rule).
``--baseline`` filters findings through the committed baseline file
(grandfathered debt); ``--fix-baseline`` *merges* the current findings
into that file — entries for linted paths are rebuilt (shrinking when
violations were fixed) and entries for paths outside this run are
preserved.  ``--changed-only`` reports findings only for files changed
versus the merge-base with the default branch (plus untracked files),
while still parsing the whole path set so the interprocedural rules
keep their project-wide view.  ``--format json`` emits a
machine-readable report — CI uploads it as an artifact — while
``--output`` writes the report to a file and keeps the human summary on
stdout.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

from repro.analysis.lint.framework import (
    Baseline,
    LintReport,
    all_rules,
    run_lint,
)

DEFAULT_BASELINE_FILE = "lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="AST-based invariant checker for the InsightNotes engine",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write the report to a file instead of stdout "
        "(a one-line summary still prints)",
    )
    parser.add_argument(
        "--baseline",
        action="store_true",
        help="filter findings through the committed baseline file",
    )
    parser.add_argument(
        "--baseline-file",
        type=Path,
        default=Path(DEFAULT_BASELINE_FILE),
        help=f"baseline location (default: {DEFAULT_BASELINE_FILE})",
    )
    parser.add_argument(
        "--fix-baseline",
        action="store_true",
        help="merge the current findings into the baseline file "
        "(linted paths rebuilt, other paths preserved)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="report findings only for files changed vs the merge-base "
        "with the default branch (the whole tree is still analyzed)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="parallel parse workers (default: min(8, files))",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _git_lines(root: Path, *argv: str) -> list[str]:
    proc = subprocess.run(
        ["git", *argv],
        cwd=root,
        capture_output=True,
        text=True,
        check=False,
    )
    if proc.returncode != 0:
        return []
    return [line.strip() for line in proc.stdout.splitlines() if line.strip()]


def changed_paths(root: Path | None = None) -> set[str]:
    """Repo-relative ``.py`` paths changed versus the default branch.

    The changed set is the union of the diff against the merge-base
    with ``origin/main`` (falling back to ``main``, then to ``HEAD``
    when no default branch exists — i.e. just the working tree) and any
    untracked, non-ignored files.  Everything still gets *parsed* by
    ``--changed-only`` runs; this set only narrows what is reported.
    """
    base = root or Path.cwd()
    merge_base: str | None = None
    for ref in ("origin/main", "origin/master", "main", "master"):
        lines = _git_lines(base, "merge-base", "HEAD", ref)
        if lines:
            merge_base = lines[0]
            break
    diff_args = ["diff", "--name-only"]
    diff_args.append(merge_base if merge_base else "HEAD")
    changed = set(_git_lines(base, *diff_args))
    changed.update(_git_lines(base, "ls-files", "--others", "--exclude-standard"))
    return {path for path in changed if path.endswith(".py")}


def _render_text(report: LintReport) -> str:
    lines = [finding.render() for finding in report.parse_errors]
    lines += [finding.render() for finding in report.findings]
    lines.append(_summary_line(report))
    return "\n".join(lines)


def _render_json(report: LintReport) -> str:
    payload = {
        "version": 1,
        "findings": [
            finding.to_json()
            for finding in (*report.parse_errors, *report.findings)
        ],
        "summary": {
            "files_checked": report.files_checked,
            "findings": len(report.findings) + len(report.parse_errors),
            "grandfathered": len(report.grandfathered),
            "suppressed": report.suppressed,
            "failed": report.failed,
        },
    }
    return json.dumps(payload, indent=2)


def _summary_line(report: LintReport) -> str:
    total = len(report.findings) + len(report.parse_errors)
    return (
        f"insightlint: {total} finding(s) across "
        f"{report.files_checked} file(s) "
        f"({len(report.grandfathered)} baselined, "
        f"{report.suppressed} suppressed)"
    )


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, rule in sorted(all_rules().items()):
            print(f"{rule_id}  [{rule.severity}]  {rule.summary}")
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        parser.error(f"no such path: {', '.join(map(str, missing))}")

    rule_ids = None
    if args.rules is not None:
        rule_ids = [
            rule_id.strip()
            for rule_id in args.rules.split(",")
            if rule_id.strip()
        ]

    report_paths: set[str] | None = None
    if args.changed_only:
        report_paths = changed_paths()

    baseline: Baseline | None = None
    if args.baseline or args.fix_baseline:
        try:
            baseline = Baseline.load(args.baseline_file)
        except (ValueError, json.JSONDecodeError) as exc:
            print(f"insightlint: bad baseline file: {exc}", file=sys.stderr)
            return 2

    if args.fix_baseline:
        try:
            report = run_lint(paths, baseline=None, rule_ids=rule_ids, jobs=args.jobs)
        except ValueError as exc:
            print(f"insightlint: {exc}", file=sys.stderr)
            return 2
        assert baseline is not None
        merged = baseline.merged_with(report.findings, report.checked_paths)
        merged.save(args.baseline_file)
        print(
            f"insightlint: wrote {len(merged.entries)} baseline entr"
            f"{'y' if len(merged.entries) == 1 else 'ies'} to "
            f"{args.baseline_file}"
        )
        return 0

    try:
        report = run_lint(
            paths,
            baseline=baseline if args.baseline else None,
            rule_ids=rule_ids,
            report_paths=report_paths,
            jobs=args.jobs,
        )
    except ValueError as exc:
        print(f"insightlint: {exc}", file=sys.stderr)
        return 2
    rendered = (
        _render_json(report) if args.format == "json" else _render_text(report)
    )
    if args.output is not None:
        args.output.write_text(rendered + "\n")
        print(_summary_line(report))
    else:
        print(rendered)
    return 1 if report.failed else 0
