"""The insightlint command line.

Usage::

    PYTHONPATH=src python -m repro.analysis.lint [paths...]
        [--format text|json] [--output PATH]
        [--baseline] [--baseline-file PATH] [--fix-baseline]
        [--list-rules]

Exit status is 0 when no fresh error-severity finding remains, 1
otherwise, and 2 for usage errors (bad baseline file, unknown rule).
``--baseline`` filters findings through the committed baseline file
(grandfathered debt); ``--fix-baseline`` rewrites that file from the
current findings.  ``--format json`` emits a machine-readable report —
CI uploads it as an artifact — while ``--output`` writes the report to a
file and keeps the human summary on stdout.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.lint.framework import (
    Baseline,
    LintReport,
    all_rules,
    run_lint,
)

DEFAULT_BASELINE_FILE = "lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="AST-based invariant checker for the InsightNotes engine",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write the report to a file instead of stdout "
        "(a one-line summary still prints)",
    )
    parser.add_argument(
        "--baseline",
        action="store_true",
        help="filter findings through the committed baseline file",
    )
    parser.add_argument(
        "--baseline-file",
        type=Path,
        default=Path(DEFAULT_BASELINE_FILE),
        help=f"baseline location (default: {DEFAULT_BASELINE_FILE})",
    )
    parser.add_argument(
        "--fix-baseline",
        action="store_true",
        help="rewrite the baseline file from the current findings",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _render_text(report: LintReport) -> str:
    lines = [finding.render() for finding in report.parse_errors]
    lines += [finding.render() for finding in report.findings]
    lines.append(_summary_line(report))
    return "\n".join(lines)


def _render_json(report: LintReport) -> str:
    payload = {
        "version": 1,
        "findings": [
            finding.to_json()
            for finding in (*report.parse_errors, *report.findings)
        ],
        "summary": {
            "files_checked": report.files_checked,
            "findings": len(report.findings) + len(report.parse_errors),
            "grandfathered": len(report.grandfathered),
            "suppressed": report.suppressed,
            "failed": report.failed,
        },
    }
    return json.dumps(payload, indent=2)


def _summary_line(report: LintReport) -> str:
    total = len(report.findings) + len(report.parse_errors)
    return (
        f"insightlint: {total} finding(s) across "
        f"{report.files_checked} file(s) "
        f"({len(report.grandfathered)} baselined, "
        f"{report.suppressed} suppressed)"
    )


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, rule in sorted(all_rules().items()):
            print(f"{rule_id}  [{rule.severity}]  {rule.summary}")
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        parser.error(f"no such path: {', '.join(map(str, missing))}")

    baseline: Baseline | None = None
    if args.baseline or args.fix_baseline:
        try:
            baseline = Baseline.load(args.baseline_file)
        except (ValueError, json.JSONDecodeError) as exc:
            print(f"insightlint: bad baseline file: {exc}", file=sys.stderr)
            return 2

    if args.fix_baseline:
        report = run_lint(paths, baseline=None)
        fresh = Baseline.from_findings(report.findings)
        fresh.save(args.baseline_file)
        print(
            f"insightlint: wrote {len(fresh.entries)} baseline entr"
            f"{'y' if len(fresh.entries) == 1 else 'ies'} to "
            f"{args.baseline_file}"
        )
        return 0

    report = run_lint(paths, baseline=baseline if args.baseline else None)
    rendered = (
        _render_json(report) if args.format == "json" else _render_text(report)
    )
    if args.output is not None:
        args.output.write_text(rendered + "\n")
        print(_summary_line(report))
    else:
        print(rendered)
    return 1 if report.failed else 0
