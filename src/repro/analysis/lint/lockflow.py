"""Interprocedural lock-context dataflow over the call graph.

:class:`LockFlow` computes, for every project function, the summaries
the interprocedural rules consume:

* ``sql_reachable`` — the function (or anything it transitively calls)
  executes SQL or checks out a pooled connection;
* ``blocking_reachable`` — it transitively reaches an unbounded
  blocking call (``Future.result()`` / ``queue.get()`` without a
  timeout, ``Event.wait()``, ``select.select``, socket reads,
  ``time.sleep``), with a description of the witness site;
* ``lock_acquires`` — the set of lock identities it may transitively
  acquire (the edges of IN007's static acquisition-order graph);
* ``lock_regions`` — its own ``with``-lock regions, each with the locks
  held and the statements + resolved call sites inside.

All summaries are fixpoints over the conservative call graph: a cycle
of mutually recursive helpers converges because every transfer function
is monotone over finite sets.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.lint.callgraph import (
    CallSite,
    FunctionInfo,
    LockInfo,
    Project,
)
from repro.analysis.lint.framework import dotted_name

#: Method names that execute SQL or check out a pooled connection (the
#: IN001 lexical convention; rules.locks re-exports these).
SQL_METHODS = frozenset(
    {
        "execute",
        "executemany",
        "executescript",
        "fetch_all",
        "fetch_one",
        "transaction",
        "read_connection",
        "save_object",
        "save_objects",
        "load_object",
        "load_objects_for_table",
        "delete_object",
        "instances_for_table",
        "attachments_for_row",
        "attachments_for_rows",
        "annotations_for_row",
        "rows_for_annotation",
    }
)

#: ``.read()`` / ``.write()`` count as checkouts when the receiver is a
#: pool (``self._pool.read()``), not for arbitrary file-like objects.
POOL_CHECKOUTS = frozenset({"read", "write"})

#: Attribute calls that block unboundedly when called with no timeout.
_BLOCKING_NO_TIMEOUT_METHODS = frozenset({"result", "wait"})

#: ``.get()`` blocks only on queue-like receivers; gate on the receiver
#: name so ``dict.get`` never trips the rule.
_QUEUEISH_TOKENS = ("queue", "mailbox", "inbox")

#: Dotted calls that block regardless of arguments.
_BLOCKING_DOTTED = frozenset(
    {
        "select.select",
        "time.sleep",
        "socket.create_connection",
    }
)

#: Socket-style methods that block on network peers.
_SOCKET_METHODS = frozenset({"accept", "recv", "recvfrom"})


@dataclass
class BlockingSite:
    """One potentially unbounded blocking call."""

    node: ast.Call
    description: str


@dataclass
class LockRegion:
    """The body of one ``with``-lock statement in one function."""

    function: FunctionInfo
    locks: tuple[LockInfo, ...]  # locks this region's with-items hold
    with_node: ast.With | ast.AsyncWith
    #: resolved project calls lexically inside the region (nested
    #: with-regions included — an inner lock does not release the outer)
    calls: list[CallSite] = field(default_factory=list)
    #: SQL/pool-checkout calls lexically inside the region
    sql_calls: list[ast.Call] = field(default_factory=list)
    #: unbounded blocking calls lexically inside the region
    blocking: list[BlockingSite] = field(default_factory=list)
    #: locks acquired by nested with-statements inside the region
    nested_locks: list[tuple[LockInfo, ast.With | ast.AsyncWith]] = field(
        default_factory=list
    )


def is_direct_sql_call(call: ast.Call) -> bool:
    """The IN001 lexical convention: SQL method or pool checkout."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return False
    if func.attr in SQL_METHODS:
        return True
    receiver = (dotted_name(func.value) or "").lower()
    return func.attr in POOL_CHECKOUTS and "pool" in receiver


def _has_timeout(call: ast.Call) -> bool:
    if any(keyword.arg == "timeout" for keyword in call.keywords):
        return True
    return bool(call.args)


def _receiver_tokens(func: ast.Attribute) -> str:
    receiver = func.value
    # Descend subscripts: queues[shard].get() blocks like queue.get().
    while isinstance(receiver, ast.Subscript):
        receiver = receiver.value
    return (dotted_name(receiver) or "").lower()


def classify_blocking(call: ast.Call) -> str | None:
    """A description when ``call`` may block unboundedly, else None."""
    func = call.func
    dotted = dotted_name(func) or ""
    if dotted in _BLOCKING_DOTTED or (
        dotted.split(".")[-1] == "sleep" and dotted.startswith("time.")
    ):
        return f"blocking call '{dotted}'"
    if not isinstance(func, ast.Attribute):
        return None
    method = func.attr
    if method in _BLOCKING_NO_TIMEOUT_METHODS and not _has_timeout(call):
        return f"unbounded '.{method}()' (no timeout)"
    if method == "get" and not _has_timeout(call):
        receiver = _receiver_tokens(func)
        tail = receiver.split(".")[-1]
        if any(token in tail for token in _QUEUEISH_TOKENS) or tail == "q":
            return "unbounded 'queue.get()' (no timeout)"
    if method in _SOCKET_METHODS:
        receiver = _receiver_tokens(func)
        if "sock" in receiver or "conn" in receiver.split(".")[-1]:
            return f"blocking socket call '.{method}()'"
    return None


class LockFlow:
    """The fixpoint summaries + per-function lock regions."""

    def __init__(self, project: Project) -> None:
        self.project = project
        graph = project.graph
        #: function key -> its lock regions (outermost-first, document order)
        self.regions: dict[str, list[LockRegion]] = {}
        self._direct_sql: dict[str, list[ast.Call]] = {}
        self._direct_blocking: dict[str, list[BlockingSite]] = {}
        #: function key -> locks its own with-statements acquire
        self._direct_locks: dict[str, set[LockInfo]] = {}

        for key, info in graph.functions.items():
            self._scan_function(key, info)

        self.sql_reachable: set[str] = self._reach_fixpoint(
            {key for key, sites in self._direct_sql.items() if sites}
        )
        self.blocking_reachable: set[str] = self._reach_fixpoint(
            {key for key, sites in self._direct_blocking.items() if sites}
        )
        self.lock_acquires: dict[str, set[LockInfo]] = (
            self._locks_fixpoint()
        )

    # -- reading the summaries ----------------------------------------

    def direct_blocking(self, key: str) -> list[BlockingSite]:
        return self._direct_blocking.get(key, [])

    def blocking_witness(self, key: str) -> str:
        """A human-readable witness for a blocking-reachable function."""
        queue: list[str] = [key]
        seen = {key}
        graph = self.project.graph
        while queue:
            current = queue.pop(0)
            sites = self._direct_blocking.get(current)
            if sites:
                info = graph.functions[current]
                return (
                    f"{sites[0].description} in "
                    f"{info.qualname} ({info.module.path}:"
                    f"{sites[0].node.lineno})"
                )
            for site in graph.calls.get(current, []):
                if site.callee not in seen:
                    seen.add(site.callee)
                    queue.append(site.callee)
        return "blocking call"

    def sql_witness(self, key: str) -> str:
        """A human-readable witness for a SQL-reachable function."""
        queue: list[str] = [key]
        seen = {key}
        graph = self.project.graph
        while queue:
            current = queue.pop(0)
            sites = self._direct_sql.get(current)
            if sites:
                info = graph.functions[current]
                label = dotted_name(sites[0].func) or "SQL"
                return (
                    f"'{label}' in {info.qualname} "
                    f"({info.module.path}:{sites[0].lineno})"
                )
            for site in graph.calls.get(current, []):
                if site.callee not in seen:
                    seen.add(site.callee)
                    queue.append(site.callee)
        return "SQL"

    # -- per-function scan ---------------------------------------------

    def _scan_function(self, key: str, info: FunctionInfo) -> None:
        graph = self.project.graph
        regions: list[LockRegion] = []
        sql: list[ast.Call] = []
        blocking: list[BlockingSite] = []
        acquired: set[LockInfo] = set()
        calls_by_node: dict[ast.Call, CallSite] = {
            site.node: site for site in graph.calls.get(key, [])
        }

        def visit(node: ast.AST, active: list[LockRegion]) -> None:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                return  # nested callables are analyzed under their own key
            if isinstance(node, (ast.With, ast.AsyncWith)):
                locks = tuple(
                    lock
                    for item in node.items
                    if (lock := graph.resolve_lock(info, item.context_expr))
                    is not None
                )
                # The with-items themselves evaluate *before* the lock
                # is held; scan them under the surrounding regions only.
                for item in node.items:
                    visit(item.context_expr, active)
                if locks:
                    region = LockRegion(
                        function=info,
                        locks=locks,
                        with_node=node,
                    )
                    regions.append(region)
                    acquired.update(locks)
                    for outer in active:
                        for lock in locks:
                            outer.nested_locks.append((lock, node))
                    inner = [*active, region]
                else:
                    inner = active
                for stmt in node.body:
                    visit(stmt, inner)
                return
            if isinstance(node, ast.Call):
                note_call(node, active)
            for child in ast.iter_child_nodes(node):
                visit(child, active)

        def note_call(call: ast.Call, active: list[LockRegion]) -> None:
            site = calls_by_node.get(call)
            if site is not None:
                for region in active:
                    region.calls.append(site)
            if is_direct_sql_call(call):
                sql.append(call)
                for region in active:
                    region.sql_calls.append(call)
            description = classify_blocking(call)
            if description is not None:
                blocking_site = BlockingSite(call, description)
                blocking.append(blocking_site)
                for region in active:
                    region.blocking.append(blocking_site)

        for child in ast.iter_child_nodes(info.node):
            visit(child, [])
        self.regions[key] = regions
        self._direct_sql[key] = sql
        self._direct_blocking[key] = blocking
        self._direct_locks[key] = acquired

    # -- fixpoints ------------------------------------------------------

    def _reach_fixpoint(self, seeds: set[str]) -> set[str]:
        """Backward reachability: callers of members become members."""
        graph = self.project.graph
        callers: dict[str, set[str]] = {}
        for caller, sites in graph.calls.items():
            for site in sites:
                callers.setdefault(site.callee, set()).add(caller)
        reached = set(seeds)
        worklist = list(seeds)
        while worklist:
            current = worklist.pop()
            for caller in callers.get(current, ()):
                if caller not in reached:
                    reached.add(caller)
                    worklist.append(caller)
        return reached

    def _locks_fixpoint(self) -> dict[str, set[LockInfo]]:
        graph = self.project.graph
        acquires = {
            key: set(locks) for key, locks in self._direct_locks.items()
        }
        changed = True
        while changed:
            changed = False
            for caller, sites in graph.calls.items():
                target = acquires.setdefault(caller, set())
                before = len(target)
                for site in sites:
                    target.update(acquires.get(site.callee, ()))
                if len(target) != before:
                    changed = True
        return acquires


def get_lockflow(project: Project) -> LockFlow:
    """The project's LockFlow, computed once and cached on the project
    (several rules consume the same summaries)."""
    flow = getattr(project, "_lockflow", None)
    if flow is None:
        flow = LockFlow(project)
        project._lockflow = flow  # type: ignore[attr-defined]
    return flow
