"""Project-wide call graph and lock-attribute resolution for insightlint.

The interprocedural rules (IN001/IN005 routed through helpers, IN007
lock-order consistency, IN008 blocking-under-lock) need two things the
per-module :class:`~repro.analysis.lint.framework.ModuleSource` view
cannot provide:

* a **call graph** — which project function does this ``ast.Call``
  land in? — built by :class:`CallGraph`;
* a **lock map** — which registered lock does ``with self._lock:``
  hold? — built by :class:`LockResolver` from the
  ``repro.concurrency.make_lock("name")`` construction sites, so static
  findings speak the same lock names the runtime sanitizer reports.

Resolution is deliberately conservative (a static pass that guesses
wrong drowns the signal in false positives):

* bare-name calls resolve to same-module top-level functions, then to
  project functions imported by name (``from m import f``), then to
  module-attribute calls through imported project modules (``m.f()``);
* ``self.m()`` / ``cls.m()`` resolve within the enclosing class, then
  through base classes named in the project;
* any other ``obj.m()`` resolves only when exactly **one** project
  class defines a method ``m`` — an ambiguous method name produces *no*
  edge rather than a guessed one.  (Known consequence: calls through
  abstract interfaces with several implementations — e.g. a cache's
  ``store.put`` — are invisible to the static pass; the runtime
  sanitizer covers those paths.)
* calls into the standard library or other packages resolve to nothing.

Lock identity: a ``with`` item resolves to a :class:`LockInfo` via the
enclosing class's ``self._attr = make_lock("name")`` assignments (also
dataclass ``field(default_factory=lambda: make_lock(...))`` defaults and
module-level constructions).  A with-item that merely *looks* like a
lock (final name component contains ``lock``, or a bare ``Lock()`` /
``RLock()`` call — the IN001 lexical convention) but has no
``make_lock`` site gets a synthetic per-attribute name, so fixture code
and not-yet-migrated locks still participate in every rule, just
without a registry-stable label.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.lint.framework import ModuleSource, dotted_name

#: Constructors of the named-lock registry (repro.concurrency).
_FACTORY_NAMES = frozenset({"make_lock", "make_rlock"})


@dataclass(frozen=True)
class LockInfo:
    """One lock identity as the static pass sees it."""

    name: str
    guards_io: bool = False
    #: False for heuristically identified locks with no make_lock site.
    registered: bool = True


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    key: str  # "<path>::<qualname>" — unique across the project
    qualname: str  # "ConnectionPool.write", "connect", "f.inner"
    module: ModuleSource
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None  # immediately enclosing class, if any


@dataclass
class CallSite:
    """One resolved call edge, anchored where the call happens."""

    caller: str
    callee: str
    node: ast.Call


@dataclass
class _ClassInfo:
    name: str
    module: ModuleSource
    node: ast.ClassDef
    bases: tuple[str, ...]
    methods: dict[str, str] = field(default_factory=dict)  # name -> key
    #: lock attribute -> LockInfo, from make_lock assignment sites.
    lock_attrs: dict[str, LockInfo] = field(default_factory=dict)


def module_dotted_name(path: str) -> str | None:
    """``repro.storage.pool`` for ``src/repro/storage/pool.py``."""
    parts = path.split("/")
    if parts and parts[0] in ("src", "lib"):
        parts = parts[1:]
    if not parts or not parts[-1].endswith(".py"):
        return None
    parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    if not parts:
        return None
    return ".".join(parts)


def _lock_info_from_call(call: ast.Call) -> LockInfo | None:
    """Decode a ``make_lock("name", guards_io=...)`` construction."""
    func = dotted_name(call.func) or ""
    if func.split(".")[-1] not in _FACTORY_NAMES:
        return None
    if not (call.args and isinstance(call.args[0], ast.Constant)):
        return None
    name = call.args[0].value
    if not isinstance(name, str):
        return None
    guards_io = any(
        keyword.arg == "guards_io"
        and isinstance(keyword.value, ast.Constant)
        and keyword.value.value is True
        for keyword in call.keywords
    )
    return LockInfo(name=name, guards_io=guards_io)


def _unwrap_factory_default(call: ast.Call) -> ast.Call | None:
    """The make_lock call inside ``field(default_factory=lambda: ...)``."""
    if (dotted_name(call.func) or "").split(".")[-1] != "field":
        return None
    for keyword in call.keywords:
        if keyword.arg != "default_factory":
            continue
        value = keyword.value
        if isinstance(value, ast.Lambda) and isinstance(value.body, ast.Call):
            return value.body
    return None


class CallGraph:
    """Functions, classes, lock attributes, and resolved call edges."""

    def __init__(self, modules: list[ModuleSource]) -> None:
        self.modules = modules
        #: key -> FunctionInfo
        self.functions: dict[str, FunctionInfo] = {}
        #: class name -> every _ClassInfo with that name (collisions kept)
        self._classes_by_name: dict[str, list[_ClassInfo]] = {}
        #: (path, class name) -> _ClassInfo
        self._classes: dict[tuple[str, str], _ClassInfo] = {}
        #: method name -> keys of every project method with that name
        self._method_index: dict[str, list[str]] = {}
        #: (path, top-level function name) -> key
        self._module_functions: dict[tuple[str, str], str] = {}
        #: dotted module name -> path, for import resolution
        self._module_paths: dict[str, str] = {}
        #: path -> {local alias -> ("object", module, name) | ("module", module)}
        self._imports: dict[str, dict[str, tuple[str, ...]]] = {}
        #: path -> {module-level lock variable -> LockInfo}
        self._module_locks: dict[str, dict[str, LockInfo]] = {}
        #: lock attribute name -> every LockInfo assigned to it project-wide
        self._lock_attr_index: dict[str, list[LockInfo]] = {}
        #: caller key -> resolved call sites
        self.calls: dict[str, list[CallSite]] = {}

        for module in modules:
            self._index_module(module)
        for module in modules:
            self._collect_lock_attrs(module)
        for info in list(self.functions.values()):
            self.calls[info.key] = list(self._resolve_calls(info))

    # -- indexing ------------------------------------------------------

    def _index_module(self, module: ModuleSource) -> None:
        dotted = module_dotted_name(module.path)
        if dotted is not None:
            self._module_paths[dotted] = module.path
        self._imports[module.path] = self._collect_imports(module.tree)
        self._module_locks[module.path] = {}

        def walk(node: ast.AST, prefix: str, class_name: str | None) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{prefix}{child.name}"
                    info = FunctionInfo(
                        key=f"{module.path}::{qualname}",
                        qualname=qualname,
                        module=module,
                        node=child,
                        class_name=class_name,
                    )
                    self.functions[info.key] = info
                    if class_name is None and prefix == "":
                        self._module_functions[(module.path, child.name)] = (
                            info.key
                        )
                    if class_name is not None:
                        # walk() only passes class_name for direct
                        # children of the ClassDef, so this is a method.
                        owner = self._classes[(module.path, class_name)]
                        owner.methods[child.name] = info.key
                        self._method_index.setdefault(child.name, []).append(
                            info.key
                        )
                    walk(child, f"{qualname}.", None)
                elif isinstance(child, ast.ClassDef):
                    qualname = f"{prefix}{child.name}"
                    bases = tuple(
                        base_name
                        for base in child.bases
                        if (base_name := dotted_name(base)) is not None
                    )
                    cls = _ClassInfo(
                        name=child.name,
                        module=module,
                        node=child,
                        bases=bases,
                    )
                    self._classes[(module.path, child.name)] = cls
                    self._classes_by_name.setdefault(child.name, []).append(cls)
                    walk(child, f"{qualname}.", child.name)
                else:
                    walk(child, prefix, class_name)

        walk(module.tree, "", None)

    def _collect_imports(
        self, tree: ast.Module
    ) -> dict[str, tuple[str, ...]]:
        imports: dict[str, tuple[str, ...]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    imports[local] = ("object", node.module, alias.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    imports[local] = ("module", alias.name)
        return imports

    def _collect_lock_attrs(self, module: ModuleSource) -> None:
        """Map lock attributes/variables to the make_lock names they get."""

        def note_class_attr(cls: _ClassInfo, attr: str, info: LockInfo) -> None:
            cls.lock_attrs[attr] = info
            self._lock_attr_index.setdefault(attr, []).append(info)

        for (path, _), cls in self._classes.items():
            if path != module.path:
                continue
            for stmt in ast.walk(cls.node):
                # self._attr = make_lock("...") anywhere in the class body
                # (methods included — __init__ is the usual site).
                if isinstance(stmt, ast.Assign) and isinstance(
                    stmt.value, ast.Call
                ):
                    info = _lock_info_from_call(stmt.value)
                    if info is None:
                        continue
                    for target in stmt.targets:
                        target_name = dotted_name(target) or ""
                        parts = target_name.split(".")
                        if len(parts) == 2 and parts[0] in ("self", "cls"):
                            note_class_attr(cls, parts[1], info)
                        elif len(parts) == 1:
                            note_class_attr(cls, parts[0], info)
                # dataclass field: attr: LockLike = field(default_factory=...)
                elif (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.value, ast.Call)
                    and isinstance(stmt.target, ast.Name)
                ):
                    inner = _unwrap_factory_default(stmt.value)
                    candidate = inner or stmt.value
                    info = _lock_info_from_call(candidate)
                    if info is not None:
                        note_class_attr(cls, stmt.target.id, info)
        # Module-level: LOCK = make_lock("...")
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
                info = _lock_info_from_call(stmt.value)
                if info is None:
                    continue
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self._module_locks[module.path][target.id] = info

    # -- call resolution -----------------------------------------------

    def _resolve_calls(self, info: FunctionInfo) -> list[CallSite]:
        sites: list[CallSite] = []

        def walk(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                # A nested def/lambda's calls run when *it* is called,
                # not here; the nested function has its own edges.
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    continue
                if isinstance(child, ast.Call):
                    callee = self.resolve_call(info, child)
                    if callee is not None:
                        sites.append(
                            CallSite(
                                caller=info.key, callee=callee, node=child
                            )
                        )
                walk(child)

        walk(info.node)
        return sites

    def resolve_call(
        self, caller: FunctionInfo, call: ast.Call
    ) -> str | None:
        """The key of the project function ``call`` lands in, or None."""
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name(caller.module, func.id)
        if isinstance(func, ast.Attribute):
            receiver = func.value
            method = func.attr
            receiver_name = dotted_name(receiver)
            if receiver_name in ("self", "cls"):
                return self._resolve_method(
                    caller.module, caller.class_name, method
                )
            # Imported project module: pool.connect(...)
            if receiver_name is not None and "." not in receiver_name:
                imported = self._imports.get(caller.module.path, {}).get(
                    receiver_name
                )
                if imported is not None and imported[0] == "module":
                    path = self._module_paths.get(imported[1])
                    if path is not None:
                        return self._module_functions.get((path, method))
            # Any other receiver: unique-method-name resolution only.
            candidates = self._method_index.get(method, [])
            if len(candidates) == 1:
                return candidates[0]
            return None
        return None

    def resolve_callable_ref(
        self, caller: FunctionInfo, expr: ast.expr
    ) -> str | None:
        """Resolve a callable *reference* (not a call) — e.g. the first
        argument of ``executor.submit(self._fetch_block, ...)``."""
        if isinstance(expr, ast.Name):
            return self._resolve_name(caller.module, expr.id)
        if isinstance(expr, ast.Attribute):
            receiver_name = dotted_name(expr.value)
            if receiver_name in ("self", "cls"):
                return self._resolve_method(
                    caller.module, caller.class_name, expr.attr
                )
            candidates = self._method_index.get(expr.attr, [])
            if len(candidates) == 1:
                return candidates[0]
        return None

    def _resolve_name(self, module: ModuleSource, name: str) -> str | None:
        local = self._module_functions.get((module.path, name))
        if local is not None:
            return local
        imported = self._imports.get(module.path, {}).get(name)
        if imported is not None and imported[0] == "object":
            path = self._module_paths.get(imported[1])
            if path is not None:
                return self._module_functions.get((path, imported[2]))
        return None

    def _resolve_method(
        self, module: ModuleSource, class_name: str | None, method: str
    ) -> str | None:
        seen: set[tuple[str, str]] = set()
        path = module.path
        name = class_name
        # Walk the (single-inheritance chain of) base classes by name.
        while name is not None:
            cls = self._classes.get((path, name))
            if cls is None:
                named = self._classes_by_name.get(name, [])
                if len(named) != 1:
                    return None
                cls = named[0]
                path = cls.module.path
            if (path, name) in seen:
                return None
            seen.add((path, name))
            found = cls.methods.get(method)
            if found is not None:
                return found
            name = cls.bases[0].split(".")[-1] if cls.bases else None
        return None

    # -- lock resolution -----------------------------------------------

    def resolve_lock(
        self, caller: FunctionInfo, expr: ast.expr
    ) -> LockInfo | None:
        """The lock a ``with`` item holds, or None when it is not one.

        Resolution order: the enclosing class's make_lock assignments;
        a unique make_lock assignment to that attribute name anywhere in
        the project; a module-level make_lock variable; finally the
        lexical heuristic (name contains ``lock``) with a synthetic,
        unregistered identity.
        """
        name = dotted_name(expr)
        if name is not None:
            parts = name.split(".")
            attr = parts[-1]
            if parts[0] in ("self", "cls") and caller.class_name is not None:
                cls = self._classes.get(
                    (caller.module.path, caller.class_name)
                )
                resolved = self._resolve_class_lock(cls, attr)
                if resolved is not None:
                    return resolved
            if len(parts) == 1:
                module_lock = self._module_locks.get(
                    caller.module.path, {}
                ).get(attr)
                if module_lock is not None:
                    return module_lock
            project_wide = self._lock_attr_index.get(attr, [])
            if len({info.name for info in project_wide}) == 1:
                return project_wide[0]
            if "lock" in attr.lower():
                return LockInfo(
                    name=f"<{caller.module.path}:{name}>",
                    guards_io=False,
                    registered=False,
                )
            return None
        if isinstance(expr, ast.Call):
            direct = _lock_info_from_call(expr)
            if direct is not None:
                return direct
            func = dotted_name(expr.func) or ""
            if func.split(".")[-1] in ("Lock", "RLock"):
                return LockInfo(
                    name=f"<{caller.module.path}:{expr.lineno}:anonymous>",
                    guards_io=False,
                    registered=False,
                )
        return None

    def _resolve_class_lock(
        self, cls: _ClassInfo | None, attr: str
    ) -> LockInfo | None:
        seen: set[tuple[str, str]] = set()
        while cls is not None:
            if (cls.module.path, cls.name) in seen:
                return None
            seen.add((cls.module.path, cls.name))
            info = cls.lock_attrs.get(attr)
            if info is not None:
                return info
            if not cls.bases:
                return None
            base_name = cls.bases[0].split(".")[-1]
            next_cls = self._classes.get((cls.module.path, base_name))
            if next_cls is None:
                named = self._classes_by_name.get(base_name, [])
                next_cls = named[0] if len(named) == 1 else None
            cls = next_cls
        return None


class Project:
    """Every module under analysis plus the shared call graph."""

    def __init__(self, modules: list[ModuleSource]) -> None:
        self.modules = modules
        self.by_path = {module.path: module for module in modules}
        self.graph = CallGraph(modules)
