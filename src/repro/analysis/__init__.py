"""Analysis helpers on top of summary state.

The point of summarizing annotations is to *act* on them; this package
provides the table-level analyses a curation team runs directly over the
summary objects — never over the raw text:

* :func:`~repro.analysis.reports.contested_rows` — rows where one
  classifier label outweighs another (refute vs. approve triage);
* :func:`~repro.analysis.reports.annotation_coverage` — per-row
  annotation counts and the silent (never-annotated) rows;
* :func:`~repro.analysis.reports.label_distribution` — a classifier
  instance's label histogram across a whole relation;
* :func:`~repro.analysis.reports.hot_rows` — the most-annotated rows.
"""

from repro.analysis.reports import (
    ContestedRow,
    CoverageReport,
    annotation_coverage,
    contested_rows,
    hot_rows,
    label_distribution,
)

__all__ = [
    "ContestedRow",
    "CoverageReport",
    "annotation_coverage",
    "contested_rows",
    "hot_rows",
    "label_distribution",
]
