"""CI gate over an insightsan report.

``python -m repro.analysis.sanitizer.check [report.json]`` exits 0 when
the report records no violations, 1 when it does (printing each), and
2 when the report is missing or unreadable — a sanitized run that never
produced a report is a broken job, not a clean one.
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.sanitizer.check",
        description="Fail when an insightsan report records violations.",
    )
    parser.add_argument(
        "report",
        nargs="?",
        default="insightsan-report.json",
        help="path to the report written by the pytest plugin",
    )
    options = parser.parse_args(argv)
    try:
        with open(options.report, encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"insightsan: cannot read report {options.report!r}: {exc}")
        return 2
    violations = report.get("violations", [])
    print(
        f"insightsan: {report.get('acquisitions', 0)} acquisitions, "
        f"{len(report.get('locks', {}))} locks, "
        f"{len(report.get('order_edges', []))} order edges, "
        f"{len(violations)} violation(s)"
    )
    for violation in violations:
        locks = ", ".join(violation.get("locks", []))
        print(
            f"  {violation.get('kind')}: {violation.get('detail')} "
            f"[locks: {locks}] at {violation.get('site')}"
        )
        for witness in violation.get("witnesses", []):
            print(
                f"    {witness.get('edge')}: held at {witness.get('holder_site')}; "
                f"acquired at {witness.get('acquire_site')}"
            )
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
