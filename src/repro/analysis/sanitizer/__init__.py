"""insightsan — runtime lock-order and blocking-under-lock sanitizer.

The runtime twin of insightlint's IN007/IN008 static rules.  When
enabled (programmatically via :func:`enable`, or by setting
``INSIGHT_SANITIZE=1`` so the lock factory self-enables on first
construction), every lock built through :mod:`repro.concurrency`
becomes an instrumented wrapper that maintains a per-thread held-lock
stack and a global acquisition-order graph:

* a newly observed order edge that closes a cycle in the graph is a
  **lock-order-inversion** violation (potential deadlock), reported
  with the named locks on the cycle and witness sites for each edge;
* an unbounded ``Future.result()`` / ``queue.Queue.get()`` entered
  while holding any non-``guards_io`` lock is a
  **blocking-under-lock** violation.

The pytest plugin (``repro.analysis.sanitizer.pytest_plugin``, loaded
from the repository ``conftest.py``) activates all of this for the
tier-1 suite when ``INSIGHT_SANITIZE=1`` and writes
``insightsan-report.json``; ``python -m repro.analysis.sanitizer.check``
turns that report into a CI pass/fail.
"""

from __future__ import annotations

from typing import Any

from repro.concurrency import LockLike, LockSpec, install_lock_factory

from .runtime import (
    InstrumentedLock,
    InstrumentedRLock,
    SanitizerState,
    current_state,
    pop_blocking_patches,
    push_blocking_patches,
)

_enabled = False


def _factory(spec: LockSpec) -> LockLike:
    state = current_state()
    if spec.kind == "rlock":
        return InstrumentedRLock(spec, state)
    return InstrumentedLock(spec, state)


def enable() -> None:
    """Install instrumented lock construction and blocking-call hooks.

    Idempotent.  Only locks constructed *after* this call are
    instrumented — enable before building the sessions under test (the
    pytest plugin does so at configure time, ahead of test imports that
    construct engine objects).
    """
    global _enabled
    if _enabled:
        return
    _enabled = True
    install_lock_factory(_factory)
    push_blocking_patches()


def disable() -> None:
    """Restore plain lock construction and unpatch blocking calls."""
    global _enabled
    if not _enabled:
        return
    _enabled = False
    install_lock_factory(None)
    pop_blocking_patches()


def enabled() -> bool:
    return _enabled


def report() -> dict[str, Any]:
    """The current JSON-able sanitizer report."""
    return current_state().report()


def reset() -> None:
    """Clear accumulated graph edges and violations."""
    current_state().reset()


__all__ = [
    "InstrumentedLock",
    "InstrumentedRLock",
    "SanitizerState",
    "current_state",
    "disable",
    "enable",
    "enabled",
    "report",
    "reset",
]
