"""Pytest plugin that runs the suite under insightsan.

Registered unconditionally from the repository ``conftest.py`` but
inert unless ``INSIGHT_SANITIZE=1`` (the CI ``sanitize`` job's mode).
When active it enables the sanitizer *at configure time* — before test
modules import engine code that constructs locks — and writes the
accumulated report to ``insightsan-report.json`` (override with
``INSIGHT_SANITIZE_REPORT``) at session finish.

The plugin never fails the run itself: pytest's exit status keeps
meaning "tests passed".  CI judges the report in a separate step via
``python -m repro.analysis.sanitizer.check``, which exits non-zero on
any recorded violation.
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.concurrency import sanitize_requested

_REPORT_ENV = "INSIGHT_SANITIZE_REPORT"
_DEFAULT_REPORT = "insightsan-report.json"


def pytest_configure(config: Any) -> None:
    if not sanitize_requested():
        return
    from repro.analysis import sanitizer

    sanitizer.enable()


def pytest_sessionfinish(session: Any, exitstatus: int) -> None:
    if not sanitize_requested():
        return
    from repro.analysis import sanitizer

    if not sanitizer.enabled():
        return
    report = sanitizer.report()
    path = os.environ.get(_REPORT_ENV, _DEFAULT_REPORT)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")


def pytest_terminal_summary(terminalreporter: Any, exitstatus: int) -> None:
    if not sanitize_requested():
        return
    from repro.analysis import sanitizer

    if not sanitizer.enabled():
        return
    report = sanitizer.report()
    violations = report["violations"]
    terminalreporter.write_sep("-", "insightsan")
    terminalreporter.write_line(
        f"insightsan: {report['acquisitions']} acquisitions across "
        f"{len(report['locks'])} named locks, "
        f"{len(report['order_edges'])} order edges, "
        f"{len(violations)} violation(s)"
    )
    for violation in violations:
        terminalreporter.write_line(
            f"  {violation['kind']}: {violation['detail']} "
            f"[locks: {', '.join(violation['locks'])}] at {violation['site']}"
        )
