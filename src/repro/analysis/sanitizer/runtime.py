"""insightsan's runtime core: instrumented locks and the order graph.

The sanitizer mirrors insightlint's static IN007/IN008 rules at runtime:

* every lock built through :mod:`repro.concurrency` while the sanitizer
  is active becomes an :class:`InstrumentedLock` / :class:`InstrumentedRLock`
  that reports acquisitions and releases here;
* each thread keeps a **held-lock stack**; acquiring lock ``B`` while
  holding ``A`` adds the edge ``A → B`` to a global, name-keyed
  **acquisition-order graph**.  A new edge that closes a cycle is a
  potential deadlock — recorded as a ``lock-order-inversion`` violation
  with the witness stacks of every edge on the cycle;
* :func:`note_blocking` — fed by the patches on
  ``concurrent.futures.Future.result`` and ``queue.Queue.get`` that
  :func:`blocking_patches` installs — records a
  ``blocking-under-lock`` violation whenever an unbounded wait starts
  while any non-``guards_io`` lock is held.

Identity model: the graph is keyed by **lock name** (role), not
instance.  Re-entrant re-acquisition of the same instance is invisible
(RLock depth tracking), and nesting two *different instances of the same
role* (striped flight locks, per-shard pools) is tallied as a
``same_role_nesting`` diagnostic rather than an edge — per-instance
ordering of interchangeable stripes is not a discipline the engine
defines, and a name-level self-edge would read as a spurious cycle.

Everything here uses raw ``threading`` primitives — the sanitizer must
never route its own synchronization through the factory it instruments.
"""

from __future__ import annotations

import contextlib
import queue
import threading
import traceback
from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import Any

from repro.concurrency import LockSpec

#: Frames from these files never count as a violation's witness site.
_INTERNAL_MARKERS = ("analysis/sanitizer/runtime.py", "repro/concurrency.py")

#: Bound on recorded violations — a pathological loop must not OOM CI.
_MAX_VIOLATIONS = 200


def _witness_site(skip_threading: bool = True) -> str:
    """``file:line in func`` of the innermost non-sanitizer frame."""
    for frame in reversed(traceback.extract_stack()):
        filename = frame.filename.replace("\\", "/")
        if any(marker in filename for marker in _INTERNAL_MARKERS):
            continue
        if skip_threading and filename.endswith("threading.py"):
            continue
        return f"{frame.filename}:{frame.lineno} in {frame.name}"
    return "<unknown>"


@dataclass(frozen=True)
class _Held:
    """One entry of a thread's held-lock stack."""

    name: str
    lock_id: int
    guards_io: bool
    site: str


@dataclass
class _EdgeWitness:
    """Where an acquisition-order edge was first observed."""

    thread: str
    holder_site: str
    acquire_site: str

    def to_json(self) -> dict[str, str]:
        return {
            "thread": self.thread,
            "holder_site": self.holder_site,
            "acquire_site": self.acquire_site,
        }


@dataclass
class Violation:
    """One sanitizer finding."""

    kind: str  # "lock-order-inversion" | "blocking-under-lock"
    locks: tuple[str, ...]
    detail: str
    thread: str
    site: str
    witnesses: list[dict[str, str]] = field(default_factory=list)

    def key(self) -> tuple[str, tuple[str, ...], str]:
        return (self.kind, self.locks, self.detail)

    def to_json(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "locks": list(self.locks),
            "detail": self.detail,
            "thread": self.thread,
            "site": self.site,
            "witnesses": self.witnesses,
        }


class SanitizerState:
    """All mutable sanitizer state; the global instance backs the
    factory, tests may construct private ones."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._tls = threading.local()
        #: name -> {successor name -> first witness}
        self.order: dict[str, dict[str, _EdgeWitness]] = {}
        self.violations: list[Violation] = []
        self._violation_keys: set[tuple[str, tuple[str, ...], str]] = set()
        self.same_role_nestings: dict[str, int] = {}
        self.lock_specs: dict[str, LockSpec] = {}
        self.acquisitions = 0

    # -- held stack ----------------------------------------------------

    def _stack(self) -> list[_Held]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def held_names(self) -> tuple[str, ...]:
        """Names held by the calling thread, outermost first."""
        return tuple(held.name for held in self._stack())

    # -- lock events ---------------------------------------------------

    def note_acquired(
        self, spec: LockSpec, lock_id: int, site: str | None = None
    ) -> None:
        """Record a successful (outermost, for RLocks) acquisition."""
        stack = self._stack()
        acquire_site = site or _witness_site()
        self.acquisitions += 1
        for held in stack:
            if held.lock_id == lock_id:
                continue  # re-entry is handled by the RLock wrapper
            if held.name == spec.name:
                with self._mutex:
                    self.same_role_nestings[spec.name] = (
                        self.same_role_nestings.get(spec.name, 0) + 1
                    )
                continue
            self._note_edge(held, spec.name, acquire_site)
        stack.append(
            _Held(
                name=spec.name,
                lock_id=lock_id,
                guards_io=spec.guards_io,
                site=acquire_site,
            )
        )

    def note_released(self, lock_id: int) -> None:
        """Drop the most recent stack entry for ``lock_id``."""
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index].lock_id == lock_id:
                del stack[index]
                return

    def _note_edge(self, holder: _Held, name: str, acquire_site: str) -> None:
        successors = self.order.get(holder.name)
        if successors is not None and name in successors:
            return  # fast path: edge already known, no mutex needed
        with self._mutex:
            successors = self.order.setdefault(holder.name, {})
            if name in successors:
                return
            successors[name] = _EdgeWitness(
                thread=threading.current_thread().name,
                holder_site=holder.site,
                acquire_site=acquire_site,
            )
            cycle = self._find_cycle(name, holder.name)
            if cycle is not None:
                self._record_locked(
                    Violation(
                        kind="lock-order-inversion",
                        locks=tuple(sorted(set(cycle))),
                        detail=" -> ".join([holder.name, *cycle]),
                        thread=threading.current_thread().name,
                        site=acquire_site,
                        witnesses=self._cycle_witnesses(holder.name, cycle),
                    )
                )

    def _find_cycle(self, start: str, target: str) -> list[str] | None:
        """A path ``start -> ... -> target`` in the order graph, if any.

        Called with the mutex held, right after inserting
        ``target -> start`` — a found path closes that edge into a cycle.
        """
        path: list[str] = [start]
        seen = {start}

        def walk(node: str) -> list[str] | None:
            if node == target:
                return list(path)
            for successor in self.order.get(node, ()):
                if successor == target:
                    path.append(successor)
                    return list(path)
                if successor in seen:
                    continue
                seen.add(successor)
                path.append(successor)
                found = walk(successor)
                if found is not None:
                    return found
                path.pop()

            return None

        return walk(start)

    def _cycle_witnesses(
        self, head: str, cycle: list[str]
    ) -> list[dict[str, str]]:
        """Witnesses of each edge along ``head -> cycle[0] -> ...``."""
        witnesses: list[dict[str, str]] = []
        nodes = [head, *cycle]
        for source, dest in zip(nodes, nodes[1:]):
            witness = self.order.get(source, {}).get(dest)
            if witness is not None:
                witnesses.append(
                    {"edge": f"{source} -> {dest}", **witness.to_json()}
                )
        return witnesses

    # -- blocking calls ------------------------------------------------

    def note_blocking(self, detail: str) -> None:
        """Record a blocking-under-lock violation if any held lock is
        not a documented ``guards_io`` serialization point."""
        offending = tuple(
            held.name for held in self._stack() if not held.guards_io
        )
        if not offending:
            return
        violation = Violation(
            kind="blocking-under-lock",
            locks=offending,
            detail=detail,
            thread=threading.current_thread().name,
            site=_witness_site(),
        )
        with self._mutex:
            self._record_locked(violation)

    def _record_locked(self, violation: Violation) -> None:
        if len(self.violations) >= _MAX_VIOLATIONS:
            return
        if violation.key() in self._violation_keys:
            return
        self._violation_keys.add(violation.key())
        self.violations.append(violation)

    # -- registration / reporting --------------------------------------

    def register_spec(self, spec: LockSpec) -> None:
        with self._mutex:
            self.lock_specs[spec.name] = spec

    def report(self) -> dict[str, Any]:
        """The JSON-able sanitizer report (CI uploads this artifact)."""
        with self._mutex:
            return {
                "version": 1,
                "acquisitions": self.acquisitions,
                "locks": {
                    name: {"kind": spec.kind, "guards_io": spec.guards_io}
                    for name, spec in sorted(self.lock_specs.items())
                },
                "order_edges": [
                    {"from": source, "to": dest, **witness.to_json()}
                    for source, successors in sorted(self.order.items())
                    for dest, witness in sorted(successors.items())
                ],
                "same_role_nestings": dict(
                    sorted(self.same_role_nestings.items())
                ),
                "violations": [v.to_json() for v in self.violations],
            }

    def reset(self) -> None:
        """Clear the graph and violations (lock specs are kept)."""
        with self._mutex:
            self.order.clear()
            self.violations.clear()
            self._violation_keys.clear()
            self.same_role_nestings.clear()
            self.acquisitions = 0


# -- instrumented lock types -------------------------------------------


class InstrumentedLock:
    """A named ``threading.Lock`` that reports to a sanitizer state."""

    __slots__ = ("spec", "_state", "_lock")

    def __init__(self, spec: LockSpec, state: SanitizerState) -> None:
        self.spec = spec
        self._state = state
        self._lock = threading.Lock()
        state.register_spec(spec)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self._state.note_acquired(self.spec, id(self))
        return acquired

    def release(self) -> None:
        self._state.note_released(id(self))
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<InstrumentedLock {self.spec.name!r}>"


class InstrumentedRLock:
    """A named ``threading.RLock``; only the outermost acquire/release
    pair touches the held-lock stack."""

    __slots__ = ("spec", "_state", "_lock", "_depth")

    def __init__(self, spec: LockSpec, state: SanitizerState) -> None:
        self.spec = spec
        self._state = state
        self._lock = threading.RLock()
        self._depth = threading.local()
        state.register_spec(spec)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            depth = getattr(self._depth, "value", 0)
            if depth == 0:
                self._state.note_acquired(self.spec, id(self))
            self._depth.value = depth + 1
        return acquired

    def release(self) -> None:
        depth = getattr(self._depth, "value", 0)
        if depth <= 1:
            self._state.note_released(id(self))
        self._depth.value = max(0, depth - 1)
        self._lock.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<InstrumentedRLock {self.spec.name!r}>"


# -- global state and blocking-call patches ----------------------------

_STATE = SanitizerState()


def current_state() -> SanitizerState:
    """The state instrumented locks report to."""
    return _STATE


@contextlib.contextmanager
def swap_state(state: SanitizerState) -> Iterator[SanitizerState]:
    """Temporarily replace the global state (sanitizer's own tests).

    Keeps a manufactured violation out of the ambient report when the
    test suite itself runs under ``INSIGHT_SANITIZE=1``.
    """
    global _STATE
    previous = _STATE
    _STATE = state
    try:
        yield state
    finally:
        _STATE = previous


def note_blocking(detail: str) -> None:
    """Module-level hook the blocking-call patches report through."""
    _STATE.note_blocking(detail)


_patch_depth = 0
_patch_guard = threading.Lock()
_original_future_result: Any = None
_original_queue_get: Any = None


def _apply_blocking_patches() -> None:
    global _original_future_result, _original_queue_get
    from concurrent.futures import Future

    _original_future_result = Future.result
    _original_queue_get = queue.Queue.get
    original_result = _original_future_result
    original_get = _original_queue_get

    def patched_result(self: Any, timeout: float | None = None) -> Any:
        if timeout is None and not self.done():
            note_blocking("concurrent.futures.Future.result() without timeout")
        return original_result(self, timeout)

    def patched_get(
        self: Any, block: bool = True, timeout: float | None = None
    ) -> Any:
        if block and timeout is None:
            note_blocking("queue.Queue.get() without timeout")
        return original_get(self, block, timeout)

    Future.result = patched_result  # type: ignore[method-assign]
    queue.Queue.get = patched_get  # type: ignore[method-assign]


def _remove_blocking_patches() -> None:
    global _original_future_result, _original_queue_get
    from concurrent.futures import Future

    if _original_future_result is not None:
        Future.result = _original_future_result  # type: ignore[method-assign]
        _original_future_result = None
    if _original_queue_get is not None:
        queue.Queue.get = _original_queue_get  # type: ignore[method-assign]
        _original_queue_get = None


def push_blocking_patches() -> None:
    """Install the ``Future.result`` / ``Queue.get`` hooks (refcounted,
    so a test's temporary patch nests inside an ambient sanitizer)."""
    global _patch_depth
    with _patch_guard:
        _patch_depth += 1
        if _patch_depth == 1:
            _apply_blocking_patches()


def pop_blocking_patches() -> None:
    global _patch_depth
    with _patch_guard:
        _patch_depth = max(0, _patch_depth - 1)
        if _patch_depth == 0:
            _remove_blocking_patches()


@contextlib.contextmanager
def blocking_patches() -> Iterator[None]:
    """Context-managed :func:`push_blocking_patches`."""
    push_blocking_patches()
    try:
        yield
    finally:
        pop_blocking_patches()
