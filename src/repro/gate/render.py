"""Plain-text rendering of results, summaries, traces, and zoom-ins.

These functions are pure (value in, string out) so the REPL, the examples,
and the tests all share one rendering path.
"""

from __future__ import annotations

from typing import Any

from repro.engine.operators import Tracer
from repro.engine.results import QueryResult
from repro.model.tuple import AnnotatedTuple
from repro.zoomin.executor import ZoomInResult


def _format_value(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def render_table(columns: tuple[str, ...], rows: list[tuple[Any, ...]]) -> str:
    """An ASCII table of ``rows`` under ``columns``."""
    headers = list(columns)
    rendered_rows = [[_format_value(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    separator = "+" + "+".join("-" * (width + 2) for width in widths) + "+"
    lines = [separator]
    lines.append(
        "|"
        + "|".join(f" {header.ljust(width)} " for header, width in zip(headers, widths))
        + "|"
    )
    lines.append(separator)
    for row in rendered_rows:
        lines.append(
            "|"
            + "|".join(f" {cell.ljust(width)} " for cell, width in zip(row, widths))
            + "|"
        )
    lines.append(separator)
    return "\n".join(lines)


def render_result(result: QueryResult, max_rows: int = 50) -> str:
    """Tabular rendering of a query result with its QID header."""
    shown = result.tuples[:max_rows]
    table = render_table(result.columns, [row.values for row in shown])
    footer = f"{len(result)} row(s), QID = {result.qid}"
    if len(result) > max_rows:
        footer += f" (showing first {max_rows})"
    return f"{table}\n{footer}"


def render_summaries(row: AnnotatedTuple) -> str:
    """The "Visualize Annotation Summaries" window for one result row.

    Summaries are grouped into the three sections of the GUI window:
    Classifier-Type, Cluster-Type, and Snippet-Type.
    """
    sections: dict[str, list[str]] = {}
    for _name, obj in sorted(row.summaries.items()):
        sections.setdefault(f"{obj.type_name}-Type", []).append(obj.render())
    if not sections:
        return "(no summary instances linked)"
    lines: list[str] = []
    for section in ("Classifier-Type", "Cluster-Type", "Snippet-Type"):
        if section in sections:
            lines.append(f"== {section} ==")
            lines.extend(f"  {entry}" for entry in sections.pop(section))
    for section, entries in sorted(sections.items()):  # custom types
        lines.append(f"== {section} ==")
        lines.extend(f"  {entry}" for entry in entries)
    return "\n".join(lines)


def render_trace(tracer: Tracer, max_per_operator: int = 8) -> str:
    """The under-the-hood view: intermediate tuples per operator."""
    lines: list[str] = []
    for operator, entries in tracer.by_operator().items():
        lines.append(f"-- {operator} ({len(entries)} tuple(s))")
        for entry in entries[:max_per_operator]:
            lines.append(f"   {entry.values}")
            for name, rendering in entry.summaries.items():
                lines.append(f"     {rendering}")
        if len(entries) > max_per_operator:
            lines.append(f"   ... {len(entries) - max_per_operator} more")
    return "\n".join(lines) if lines else "(no trace recorded)"


def render_zoomin(result: ZoomInResult, max_annotations: int = 20) -> str:
    """Rendering of a zoom-in expansion: components and raw annotations."""
    lines = [
        f"ZoomIn on {result.command.instance}"
        + (f" index {result.command.index}" if result.command.index else "")
        + f" (QID {result.command.qid}, "
        + ("cache hit" if result.cache_hit else "cache miss")
        + ")"
    ]
    for match in result.matches:
        lines.append(
            f"* tuple {match.values} -> [{match.component.label}] "
            f"{match.component.count} annotation(s)"
        )
        for annotation in match.annotations[:max_annotations]:
            preview = annotation.display_title()
            lines.append(f"    #{annotation.annotation_id} ({annotation.author}): {preview}")
        if len(match.annotations) > max_annotations:
            lines.append(f"    ... {len(match.annotations) - max_annotations} more")
    if not result.matches:
        lines.append("(no tuples matched)")
    return "\n".join(lines)
