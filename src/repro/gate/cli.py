"""The InsightNotesGate REPL.

A line-oriented front-end over one :class:`~repro.engine.session.InsightNotes`
session.  Plain input is executed as SQL (or as a ZOOMIN command when it
starts with the keyword); backslash commands cover the GUI's other
buttons:

==================  ====================================================
``\\help``           command overview
``\\demo``           load the generated ornithology demo workload
``\\tables``         list tables and row counts
``\\instances``      list summary instances and their links
``\\annotate``       ``\\annotate <table> <row_id> [col,col] <text...>``
``\\summaries``      ``\\summaries <qid> <row#>`` — visualize one row
``\\qbe``            ``\\qbe <table> [col=value ...]`` query-by-example
``\\link``           ``\\link <instance> <table>`` (``\\unlink`` reverses)
``\\trace``          toggle under-the-hood operator tracing
``\\explain``        ``\\explain <sql>`` — show the normalized plan
``\\stats``          session statistics (maintenance, caches, volumes)
``\\delete-annotation``  ``\\delete-annotation <id>``
``\\quit``           exit
==================  ====================================================
"""

from __future__ import annotations

import sys
from collections.abc import Iterable

from repro.engine.results import QueryResult
from repro.engine.session import InsightNotes
from repro.errors import InsightNotesError
from repro.gate.render import (
    render_result,
    render_summaries,
    render_trace,
    render_zoomin,
)

_HELP = __doc__ or ""


class GateREPL:
    """Interprets Gate commands against one session."""

    def __init__(self, session: InsightNotes | None = None) -> None:
        self.session = session or InsightNotes()
        self.trace_enabled = False
        self._last_result: QueryResult | None = None

    # -- command dispatch -------------------------------------------------

    def handle(self, line: str) -> str:
        """Execute one input line; returns the text to display.

        Raises ``SystemExit`` on ``\\quit``.
        """
        line = line.strip()
        if not line:
            return ""
        try:
            if line.startswith("\\"):
                return self._handle_backslash(line)
            if line.lower().lstrip().startswith("zoomin"):
                return render_zoomin(self.session.zoomin(line))
            first_word = line.split(None, 1)[0].lower()
            if first_word in ("create", "insert", "delete"):
                return str(self.session.execute(line))
            return self._run_sql(line)
        except InsightNotesError as error:
            return f"error: {error}"

    def _run_sql(self, sql: str) -> str:
        result = self.session.query(sql, trace=self.trace_enabled)
        self._last_result = result
        output = render_result(result)
        if self.trace_enabled and result.trace is not None:
            output += "\n\nUnder the hood:\n" + render_trace(result.trace)
        return output

    def _handle_backslash(self, line: str) -> str:
        parts = line.split()
        command, args = parts[0].lower(), parts[1:]
        if command in ("\\quit", "\\q", "\\exit"):
            raise SystemExit(0)
        if command == "\\help":
            return _HELP
        if command == "\\demo":
            return self._load_demo()
        if command == "\\tables":
            return self._list_tables()
        if command == "\\instances":
            return self._list_instances()
        if command == "\\trace":
            self.trace_enabled = not self.trace_enabled
            return f"trace {'on' if self.trace_enabled else 'off'}"
        if command == "\\stats":
            return self._show_stats()
        if command == "\\explain":
            sql = line.split(None, 1)[1] if len(parts) > 1 else ""
            if not sql:
                return "usage: \\explain <sql>"
            return self.session.explain(sql)
        if command == "\\delete-annotation":
            if len(args) != 1 or not args[0].isdigit():
                return "usage: \\delete-annotation <id>"
            self.session.delete_annotation(int(args[0]))
            return f"annotation #{args[0]} deleted"
        if command == "\\export":
            if len(args) != 1:
                return "usage: \\export <path>"
            from repro.tools import export_to_file

            export_to_file(self.session, args[0])
            return f"database exported to {args[0]}"
        if command == "\\annotate":
            return self._annotate(args, line)
        if command == "\\summaries":
            return self._show_summaries(args)
        if command == "\\qbe":
            return self._qbe(args)
        if command == "\\link":
            return self._link(args, unlink=False)
        if command == "\\unlink":
            return self._link(args, unlink=True)
        return f"unknown command {command!r}; try \\help"

    # -- individual commands ----------------------------------------------

    def _load_demo(self) -> str:
        from repro.workloads.generator import WorkloadConfig, build_workload

        if self.session.db.tables():
            return "error: session already has tables; \\demo needs a fresh session"
        workload = build_workload(
            WorkloadConfig(num_birds=8, num_sightings=16, annotations_per_row=12),
            session=self.session,
        )
        return (
            f"demo loaded: {len(workload.bird_rows)} birds, "
            f"{len(workload.sighting_rows)} sightings, "
            f"{workload.annotation_count} annotations, "
            f"instances: {', '.join(workload.instance_names())}"
        )

    def _list_tables(self) -> str:
        tables = self.session.db.tables()
        if not tables:
            return "(no tables; try \\demo)"
        return "\n".join(
            f"{table} ({self.session.db.row_count(table)} rows): "
            + ", ".join(self.session.db.columns(table))
            for table in tables
        )

    def _show_stats(self) -> str:
        lines = []
        for key, value in self.session.statistics().items():
            if isinstance(value, dict):
                lines.append(f"{key}:")
                lines.extend(f"  {k}: {_fmt_stat(v)}" for k, v in value.items())
            else:
                lines.append(f"{key}: {_fmt_stat(value)}")
        return "\n".join(lines)

    def _list_instances(self) -> str:
        catalog = self.session.catalog
        names = catalog.instance_names()
        if not names:
            return "(no summary instances defined)"
        links: dict[str, list[str]] = {}
        for instance, table in catalog.links():
            links.setdefault(instance, []).append(table)
        lines = []
        for name in names:
            instance = catalog.get_instance(name)
            linked = ", ".join(links.get(name, [])) or "(unlinked)"
            lines.append(f"{instance.describe()} -> {linked}")
        return "\n".join(lines)

    def _annotate(self, args: list[str], line: str) -> str:
        if len(args) < 3:
            return "usage: \\annotate <table> <row_id> [col,col] <text...>"
        table, row_text = args[0], args[1]
        if not row_text.isdigit():
            return f"error: row_id must be an integer, got {row_text!r}"
        row_id = int(row_text)
        columns: list[str] | None = None
        words_before_text = 3  # \annotate, table, row_id
        table_columns = set(self.session.db.columns(table))
        if len(args) > 3 and set(args[2].split(",")) <= table_columns:
            columns = args[2].split(",")
            words_before_text = 4
        text = line.split(None, words_before_text)[-1]
        annotation = self.session.add_annotation(
            text, table=table, row_id=row_id, columns=columns
        )
        return f"annotation #{annotation.annotation_id} added"

    def _show_summaries(self, args: list[str]) -> str:
        if len(args) != 2 or not all(a.isdigit() for a in args):
            return "usage: \\summaries <qid> <row#>"
        qid, position = int(args[0]), int(args[1])
        result = self.session.results.get(qid)
        if not 0 <= position < len(result.tuples):
            return f"error: row# must be in [0, {len(result.tuples) - 1}]"
        return render_summaries(result.tuples[position])

    def _qbe(self, args: list[str]) -> str:
        if not args:
            return "usage: \\qbe <table> [col=value ...]"
        table = args[0]
        predicates = []
        for pair in args[1:]:
            if "=" not in pair:
                return f"error: QBE field {pair!r} must be col=value"
            column, value = pair.split("=", 1)
            rendered = value if _is_number(value) else f"'{value}'"
            predicates.append(f"{column} = {rendered}")
        sql = f"SELECT * FROM {table}"
        if predicates:
            sql += " WHERE " + " AND ".join(predicates)
        return self._run_sql(sql)

    def _link(self, args: list[str], unlink: bool) -> str:
        if len(args) != 2:
            verb = "unlink" if unlink else "link"
            return f"usage: \\{verb} <instance> <table>"
        instance, table = args
        if unlink:
            self.session.unlink(instance, table)
            return f"unlinked {instance} from {table}"
        self.session.link(instance, table)
        return f"linked {instance} to {table} (existing rows summarized)"


def _fmt_stat(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _is_number(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True


def run_script(lines: Iterable[str], session: InsightNotes | None = None) -> list[str]:
    """Run Gate commands non-interactively; returns per-line outputs."""
    repl = GateREPL(session)
    outputs = []
    for line in lines:
        try:
            outputs.append(repl.handle(line))
        except SystemExit:
            break
    return outputs


def main() -> int:  # pragma: no cover - interactive entry point
    """Interactive entry point (``insightnotes-gate``)."""
    repl = GateREPL()
    print("InsightNotesGate — type \\help for commands, \\demo for sample data")
    while True:
        try:
            line = input("insightnotes> ")
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        try:
            output = repl.handle(line)
        except SystemExit:
            return 0
        if output:
            print(output)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
