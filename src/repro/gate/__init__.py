"""InsightNotesGate — the interactive front-end.

The paper demonstrates an Excel-based GUI; this package provides the
terminal equivalent with the same operations: querying (SQL and a
query-by-example helper), visualizing the annotation summaries attached to
result rows, adding annotations, linking/unlinking summary instances, the
ZOOMIN command, and the under-the-hood operator trace view.

:mod:`repro.gate.render` holds the pure formatting functions;
:mod:`repro.gate.cli` wires them into a REPL (installed as the
``insightnotes-gate`` console script).
"""

from repro.gate.render import (
    render_result,
    render_summaries,
    render_trace,
    render_zoomin,
)

__all__ = [
    "render_result",
    "render_summaries",
    "render_trace",
    "render_zoomin",
]
