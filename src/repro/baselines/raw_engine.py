"""Raw-annotation propagation engine (the classical baseline).

Prior annotation management systems propagate the raw annotations
themselves through the query pipeline: each tuple carries every attached
annotation (id, text, and which columns it covers), and the operators
apply the standard propagation semantics — projection drops annotations
whose columns disappear, join unions both sides' annotations
(deduplicated by id), grouping and duplicate elimination union the
collapsed tuples' annotations.

The engine consumes the same logical plans as the summary-aware planner,
so benchmarks run *identical* queries on both engines.  The asymptotic
difference is intentional and is the paper's motivation: a tuple with 250
raw annotations drags 250 text payloads through every operator here,
versus a handful of fixed-size summary objects in InsightNotes.
"""

from __future__ import annotations

import time
from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import Any

from repro.engine import plan as lp
from repro.engine.expressions import Expression, resolve_column
from repro.errors import ExpressionError, PlanError
from repro.model.annotation import Annotation
from repro.model.tuple import AnnotatedTuple
from repro.storage.annotations import AnnotationStore
from repro.storage.database import Database


@dataclass(slots=True)
class RawTuple:
    """A tuple carrying its full raw annotations.

    ``annotations`` maps annotation id to ``(annotation, columns)`` where
    ``columns`` are the tuple's current schema columns the annotation is
    attached to.
    """

    values: tuple[Any, ...]
    annotations: dict[int, tuple[Annotation, frozenset[str]]] = field(
        default_factory=dict
    )

    def annotation_ids(self) -> frozenset[int]:
        """Ids of all annotations attached to this tuple."""
        return frozenset(self.annotations)

    def payload_bytes(self) -> int:
        """Total annotation text carried by this tuple."""
        return sum(
            len(annotation.text)
            for annotation, _columns in self.annotations.values()
        )

    def _as_annotated(self) -> AnnotatedTuple:
        """Adapter so shared Expression.evaluate works on raw tuples."""
        return AnnotatedTuple(values=self.values)


@dataclass
class RawResult:
    """Materialized output of the raw engine."""

    columns: tuple[str, ...]
    tuples: list[RawTuple]
    elapsed_seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.tuples)

    def rows(self) -> list[tuple[Any, ...]]:
        """Plain value rows."""
        return [row.values for row in self.tuples]

    def total_payload_bytes(self) -> int:
        """Annotation text volume the query dragged to the output."""
        return sum(row.payload_bytes() for row in self.tuples)


class RawQueryEngine:
    """Executes logical plans with raw-annotation propagation."""

    def __init__(self, database: Database, annotations: AnnotationStore) -> None:
        self._db = database
        self._annotations = annotations

    def execute(self, node: lp.PlanNode) -> RawResult:
        """Run ``node`` and materialize the result."""
        started = time.perf_counter()
        schema, rows = self._run(node)
        tuples = list(rows)
        elapsed = time.perf_counter() - started
        return RawResult(columns=schema, tuples=tuples, elapsed_seconds=elapsed)

    # -- recursive evaluation -------------------------------------------

    def _run(
        self, node: lp.PlanNode
    ) -> tuple[tuple[str, ...], Iterator[RawTuple]]:
        if isinstance(node, lp.Scan):
            return self._scan(node)
        if isinstance(node, lp.Hydrate):
            # Raw propagation attaches annotations at the scan itself, so
            # the summary engine's hydration point is a no-op here.
            return self._run(node.child)
        if isinstance(node, lp.Select):
            schema, rows = self._run(node.child)
            return schema, self._select(node.predicate, schema, rows)
        if isinstance(node, lp.Project):
            return self._project(node)
        if isinstance(node, lp.Join):
            return self._join(node)
        if isinstance(node, lp.GroupBy):
            return self._group(node)
        if isinstance(node, lp.Distinct):
            schema, rows = self._run(node.child)
            return schema, self._distinct(rows)
        if isinstance(node, lp.Sort):
            schema, rows = self._run(node.child)
            return schema, self._sort(node, schema, rows)
        if isinstance(node, lp.Limit):
            schema, rows = self._run(node.child)
            return schema, (row for i, row in enumerate(rows) if i < node.count)
        if isinstance(node, lp.Union):
            return self._union(node)
        if isinstance(node, lp.Compute):
            return self._compute(node)
        raise PlanError(f"raw engine cannot execute {type(node).__name__}")

    def _compute(
        self, node: lp.Compute
    ) -> tuple[tuple[str, ...], Iterator[RawTuple]]:
        child_schema, child_rows = self._run(node.child)
        schema = tuple(name for _, name in node.items)
        column_map: dict[str, set[str]] = {}
        for expression, name in node.items:
            for reference in expression.referenced_columns():
                index = resolve_column(child_schema, reference)
                column_map.setdefault(child_schema[index], set()).add(name)

        def rows() -> Iterator[RawTuple]:
            for row in child_rows:
                adapter = row._as_annotated()
                values = tuple(
                    expression.evaluate(adapter, child_schema)
                    for expression, _name in node.items
                )
                surviving: dict[int, tuple[Annotation, frozenset[str]]] = {}
                for annotation_id, (annotation, columns) in row.annotations.items():
                    outputs: set[str] = set()
                    for column in columns:
                        outputs |= column_map.get(column, set())
                    if outputs:
                        surviving[annotation_id] = (
                            annotation, frozenset(outputs),
                        )
                yield RawTuple(values=values, annotations=surviving)

        return schema, rows()

    def _union(
        self, node: lp.Union
    ) -> tuple[tuple[str, ...], Iterator[RawTuple]]:
        import itertools

        left_schema, left_rows = self._run(node.left)
        right_schema, right_rows = self._run(node.right)
        if len(left_schema) != len(right_schema):
            raise PlanError(
                f"union arity mismatch: {len(left_schema)} vs {len(right_schema)}"
            )
        combined = itertools.chain(left_rows, right_rows)
        if node.distinct:
            return left_schema, self._distinct(combined)
        return left_schema, combined

    def _scan(
        self, node: lp.Scan
    ) -> tuple[tuple[str, ...], Iterator[RawTuple]]:
        schema = tuple(
            f"{node.alias}.{column}" for column in self._db.columns(node.table)
        )

        where_sql = params = None
        if node.storage_filter is not None:
            where_sql = node.storage_filter.sql
            params = node.storage_filter.params

        def rows() -> Iterator[RawTuple]:
            for row_id, values in self._db.scan(
                node.table, where_sql, params or (), node.storage_limit
            ):
                attached = {
                    annotation.annotation_id: (
                        annotation,
                        frozenset(f"{node.alias}.{c}" for c in columns),
                    )
                    for annotation, columns in self._annotations.annotations_for_row(
                        node.table, row_id
                    )
                }
                yield RawTuple(values=values, annotations=attached)

        return schema, rows()

    @staticmethod
    def _select(
        predicate: Expression, schema: tuple[str, ...], rows: Iterator[RawTuple]
    ) -> Iterator[RawTuple]:
        for row in rows:
            if predicate.evaluate(row._as_annotated(), schema):
                yield row

    def _project(
        self, node: lp.Project
    ) -> tuple[tuple[str, ...], Iterator[RawTuple]]:
        child_schema, child_rows = self._run(node.child)
        indices = tuple(resolve_column(child_schema, name) for name in node.columns)
        schema = tuple(child_schema[i] for i in indices)
        kept = set(schema)

        def rows() -> Iterator[RawTuple]:
            for row in child_rows:
                surviving: dict[int, tuple[Annotation, frozenset[str]]] = {}
                for annotation_id, (annotation, columns) in row.annotations.items():
                    remaining = columns & kept
                    if remaining:
                        surviving[annotation_id] = (annotation, frozenset(remaining))
                yield RawTuple(
                    values=tuple(row.values[i] for i in indices),
                    annotations=surviving,
                )

        return schema, rows()

    def _join(self, node: lp.Join) -> tuple[tuple[str, ...], Iterator[RawTuple]]:
        left_schema, left_rows = self._run(node.left)
        right_schema, right_rows = self._run(node.right)
        schema = left_schema + right_schema
        materialized_right = list(right_rows)
        equivalent = _equivalent_columns(node.predicate, left_schema, right_schema)

        def rows() -> Iterator[RawTuple]:
            for left in left_rows:
                matched = False
                for right in materialized_right:
                    combined = RawTuple(
                        values=left.values + right.values,
                        annotations=_union_annotations(
                            left.annotations, right.annotations
                        ),
                    )
                    if node.predicate is None or node.predicate.evaluate(
                        combined._as_annotated(), schema
                    ):
                        matched = True
                        if equivalent:
                            combined.annotations = {
                                annotation_id: (
                                    annotation,
                                    _extend_columns(columns, equivalent),
                                )
                                for annotation_id, (annotation, columns)
                                in combined.annotations.items()
                            }
                        yield combined
                if node.outer and not matched:
                    yield RawTuple(
                        values=left.values + (None,) * len(right_schema),
                        annotations=dict(left.annotations),
                    )

        return schema, rows()

    def _group(
        self, node: lp.GroupBy
    ) -> tuple[tuple[str, ...], Iterator[RawTuple]]:
        child_schema, child_rows = self._run(node.child)
        key_indices = tuple(resolve_column(child_schema, k) for k in node.keys)
        key_names = tuple(child_schema[i] for i in key_indices)
        agg_names: list[str] = []
        agg_indices: list[int | None] = []
        for aggregate in node.aggregates:
            if aggregate.argument is None:
                agg_indices.append(None)
                agg_names.append("count(*)")
            else:
                index = resolve_column(child_schema, aggregate.argument.name)
                agg_indices.append(index)
                agg_names.append(f"{aggregate.function}({child_schema[index]})")
        schema = key_names + tuple(agg_names)

        def rows() -> Iterator[RawTuple]:
            groups: dict[tuple[Any, ...], list[RawTuple]] = {}
            for row in child_rows:
                key = tuple(row.values[i] for i in key_indices)
                groups.setdefault(key, []).append(row)
            if not groups and not key_indices:
                values = tuple(
                    _aggregate(aggregate, index, [])
                    for aggregate, index in zip(node.aggregates, agg_indices)
                )
                out = RawTuple(values=values)
                if node.having is None or node.having.evaluate(
                    out._as_annotated(), schema
                ):
                    yield out
                return
            for key, members in groups.items():
                annotations: dict[int, tuple[Annotation, frozenset[str]]] = {}
                for member in members:
                    annotations = _union_annotations(annotations, member.annotations)
                values = key + tuple(
                    _aggregate(aggregate, index, members)
                    for aggregate, index in zip(node.aggregates, agg_indices)
                )
                out = RawTuple(values=values, annotations=annotations)
                if node.having is None or node.having.evaluate(
                    out._as_annotated(), schema
                ):
                    yield out

        return schema, rows()

    @staticmethod
    def _distinct(rows: Iterator[RawTuple]) -> Iterator[RawTuple]:
        seen: dict[tuple[Any, ...], RawTuple] = {}
        for row in rows:
            existing = seen.get(row.values)
            if existing is None:
                seen[row.values] = row
            else:
                existing.annotations = _union_annotations(
                    existing.annotations, row.annotations
                )
        yield from seen.values()

    @staticmethod
    def _sort(
        node: lp.Sort, schema: tuple[str, ...], rows: Iterator[RawTuple]
    ) -> Iterator[RawTuple]:
        materialized = list(rows)
        descending = node.descending or tuple(False for _ in node.keys)
        for key, desc in reversed(list(zip(node.keys, descending))):
            materialized.sort(
                key=lambda row: _sort_token(key.evaluate(row._as_annotated(), schema)),
                reverse=desc,
            )
        yield from materialized


def _equivalent_columns(
    predicate: Expression | None,
    left_schema: tuple[str, ...],
    right_schema: tuple[str, ...],
) -> tuple[tuple[str, str], ...]:
    """Equi-joined column-name pairs in the predicate's top-level ANDs.

    Matches the summary engine's semantics: annotations on one side of an
    equality also cover the value-equivalent column on the other side.
    """
    from repro.engine.expressions import BooleanOp, Column, Comparison

    if predicate is None:
        return ()
    conjuncts: list[Expression]
    if isinstance(predicate, BooleanOp) and predicate.op == "and":
        conjuncts = list(predicate.operands)
    else:
        conjuncts = [predicate]
    pairs: list[tuple[str, str]] = []
    for conjunct in conjuncts:
        if not (
            isinstance(conjunct, Comparison)
            and conjunct.op == "="
            and isinstance(conjunct.left, Column)
            and isinstance(conjunct.right, Column)
        ):
            continue
        for first, second in (
            (conjunct.left.name, conjunct.right.name),
            (conjunct.right.name, conjunct.left.name),
        ):
            try:
                left_index = resolve_column(left_schema, first)
                right_index = resolve_column(right_schema, second)
            except ExpressionError:
                # This orientation doesn't match the schemas; the swapped
                # orientation is tried next.
                continue
            pairs.append((left_schema[left_index], right_schema[right_index]))
            break
    return tuple(pairs)


def _extend_columns(
    columns: frozenset[str], equivalent: tuple[tuple[str, str], ...]
) -> frozenset[str]:
    """Spread a column set across value-equivalent join columns."""
    extra: set[str] = set()
    for left_name, right_name in equivalent:
        if left_name in columns:
            extra.add(right_name)
        if right_name in columns:
            extra.add(left_name)
    return columns | extra if extra else columns


def _union_annotations(
    left: dict[int, tuple[Annotation, frozenset[str]]],
    right: dict[int, tuple[Annotation, frozenset[str]]],
) -> dict[int, tuple[Annotation, frozenset[str]]]:
    """Dedup-by-id union; shared annotations union their column sets."""
    merged = dict(left)
    for annotation_id, (annotation, columns) in right.items():
        existing = merged.get(annotation_id)
        if existing is None:
            merged[annotation_id] = (annotation, columns)
        else:
            merged[annotation_id] = (annotation, existing[1] | columns)
    return merged


def _aggregate(
    aggregate: lp.Aggregate, index: int | None, members: list[RawTuple]
) -> Any:
    if index is None:
        return len(members)
    values = [m.values[index] for m in members if m.values[index] is not None]
    if aggregate.function == "count":
        return len(values)
    if not values:
        return None
    if aggregate.function == "sum":
        return sum(values)
    if aggregate.function == "avg":
        return sum(values) / len(values)
    if aggregate.function == "min":
        return min(values)
    return max(values)


def _sort_token(value: Any) -> tuple[int, Any]:
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    if isinstance(value, str):
        return (2, value)
    return (3, str(value))
