"""Comparison baselines.

:class:`~repro.baselines.raw_engine.RawQueryEngine` is the conventional
annotation-management approach (DBNotes / pSQL style, [6, 11, 20]): every
query operator propagates the **full raw annotation sets** attached to its
input tuples.  InsightNotes' core claim is that propagating compact
summary objects instead keeps query cost flat while raw propagation grows
with the annotation ratio — the EXP-QP1 benchmark puts the two engines
side by side on identical plans.
"""

from repro.baselines.raw_engine import RawQueryEngine, RawResult, RawTuple

__all__ = ["RawQueryEngine", "RawResult", "RawTuple"]
