"""Operational tooling around the engine.

Currently: portable export/import of an entire annotated database
(:mod:`repro.tools.export`) — schemas, rows, raw annotations with their
cell attachments, and summary-instance definitions travel as one JSON
document; summaries are rebuilt on import.
"""

from repro.tools.export import (
    export_database,
    export_to_file,
    import_database,
    import_from_file,
)

__all__ = [
    "export_database",
    "export_to_file",
    "import_database",
    "import_from_file",
]
