"""Portable export / import of annotated databases.

The export format is a single JSON document capturing everything a peer
needs to reproduce the database: table schemas and rows (with their
rowids — annotation attachments are keyed on them), the raw annotations
with cell attachments, and the summary-instance definitions and links
(including trained classifier models, which live in the instance config).

Summary *state* is deliberately not exported: it is derived data, and the
import path rebuilds it by replaying every annotation through the
maintenance layer — which doubles as an end-to-end consistency check of
the summarization pipeline on the receiving side.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from repro.engine.session import InsightNotes
from repro.errors import InsightNotesError
from repro.model.annotation import AnnotationKind
from repro.model.cell import CellRef
from repro.summaries.registry import SummaryTypeRegistry

#: Format version stamped into every export.
FORMAT_VERSION = 1


def export_database(session: InsightNotes) -> dict[str, Any]:
    """Capture ``session``'s full annotated database as a JSON-able dict."""
    db = session.db
    tables = [
        {
            "name": table,
            "columns": list(db.columns(table)),
            "rows": [
                {"row_id": row_id, "values": list(values)}
                for row_id, values in db.rows(table)
            ],
        }
        for table in db.tables()
    ]
    annotations = [
        {
            "annotation_id": annotation.annotation_id,
            "text": annotation.text,
            "author": annotation.author,
            "created_at": annotation.created_at,
            "kind": annotation.kind.value,
            "title": annotation.title,
            "cells": [
                {"table": cell.table, "row_id": cell.row_id,
                 "column": cell.column}
                for cell in session.annotations.cells_of(
                    annotation.annotation_id
                )
            ],
        }
        for annotation in session.annotations.iter_all()
    ]
    instances = []
    for name in session.catalog.instance_names():
        instance = session.catalog.get_instance(name)
        instances.append(
            {
                "name": name,
                "type": instance.type_name,
                "config": instance.config(),
            }
        )
    return {
        "format_version": FORMAT_VERSION,
        "tables": tables,
        "annotations": annotations,
        "instances": instances,
        "links": [
            {"instance": instance, "table": table}
            for instance, table in session.catalog.links()
        ],
    }


def import_database(
    data: dict[str, Any],
    path: str = ":memory:",
    registry: SummaryTypeRegistry | None = None,
) -> InsightNotes:
    """Rebuild a session from an export, re-summarizing everything.

    Annotations are replayed in id order through the live maintenance
    path, so the imported summaries are guaranteed consistent with the
    raw annotations (and with what a fresh deployment would compute).
    """
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise InsightNotesError(
            f"unsupported export format version: {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    session = InsightNotes(path, registry=registry)
    for table in data.get("tables", []):
        session.create_table(table["name"], table["columns"])
        for row in table["rows"]:
            session.db.insert(
                table["name"], row["values"], row_id=row["row_id"]
            )
    for instance in data.get("instances", []):
        session.define_instance(
            instance["type"], instance["name"], instance["config"]
        )
    for link in data.get("links", []):
        session.catalog.link(link["instance"], link["table"])
    for entry in sorted(
        data.get("annotations", []), key=lambda a: a["annotation_id"]
    ):
        cells = [
            CellRef(cell["table"], cell["row_id"], cell["column"])
            for cell in entry["cells"]
        ]
        annotation = session.annotations.add(
            entry["text"],
            cells,
            author=entry.get("author", "anonymous"),
            kind=AnnotationKind(entry.get("kind", "comment")),
            title=entry.get("title", ""),
            created_at=entry.get("created_at"),
            annotation_id=entry["annotation_id"],
        )
        session.manager.on_annotation_added(annotation, cells)
    return session


def export_to_file(session: InsightNotes, path: str | pathlib.Path) -> None:
    """Write :func:`export_database` output as JSON to ``path``."""
    payload = export_database(session)
    pathlib.Path(path).write_text(json.dumps(payload, indent=1))


def import_from_file(
    path: str | pathlib.Path,
    db_path: str = ":memory:",
    registry: SummaryTypeRegistry | None = None,
) -> InsightNotes:
    """Rebuild a session from a JSON export file."""
    data = json.loads(pathlib.Path(path).read_text())
    return import_database(data, path=db_path, registry=registry)
