"""The summary-aware query engine.

Implements the extended relational algebra of InsightNotes: every physical
operator consumes and produces :class:`~repro.model.tuple.AnnotatedTuple`
streams, manipulating the attached summary objects according to the
extended semantics of [30] — selection passes summaries through,
projection removes the effect of annotations on dropped columns, join and
grouping merge counterpart objects without double counting, and the
planner normalizes plans so un-needed annotations are projected out before
any merge (Theorems 1–2).

The public entry point is :class:`~repro.engine.session.InsightNotes`,
which ties the storage stack, maintenance, query execution, and zoom-in
together behind one facade.
"""

from repro.engine.executor import execute_plan
from repro.engine.planner import Planner
from repro.engine.results import QueryResult, ResultRegistry
from repro.engine.session import InsightNotes
from repro.engine.sqlparser import parse_sql

__all__ = [
    "InsightNotes",
    "Planner",
    "QueryResult",
    "ResultRegistry",
    "execute_plan",
    "parse_sql",
]
