"""A small SQL dialect for InsightNotes.

Supports the query classes the demonstration exercises: select-project-join
with conjunctive/disjunctive predicates, DISTINCT, GROUP BY with COUNT /
SUM / AVG / MIN / MAX and HAVING, ORDER BY, LIMIT, LIKE, IN, arithmetic,
and the summary functions ``SUMMARY_COUNT(...)`` / ``GROUP_COUNT(...)`` in
predicates and ORDER BY.

The parser is purely syntactic: it produces a :class:`SelectStatement` IR;
:func:`build_logical` then constructs the logical plan (it needs catalog
schemas, supplied through the planner).  Dialect restrictions, by design:

* the select list contains columns, aggregates, or ``*`` — computed
  expressions belong in WHERE / HAVING / ORDER BY;
* ORDER BY keys must be selected columns, canonical aggregate names, or
  summary functions (sorting happens after projection).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.engine import plan as lp
from repro.engine.expressions import (
    Arithmetic,
    BooleanOp,
    Column,
    Comparison,
    Expression,
    GroupCount,
    InList,
    InSubquery,
    IsNull,
    Like,
    Literal,
    Not,
    ScalarFunction,
    SummaryCount,
    conjunction,
    resolve_column,
)
from repro.errors import SQLSyntaxError

_KEYWORDS = frozenset(
    """
    select distinct from where group by having order limit and or not like
    in join inner left outer on as asc desc union all between is null
    with summaries no
    """.split()
)

_AGGREGATE_NAMES = frozenset(lp.AGGREGATE_FUNCTIONS)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)?)
  | (?P<op><=|>=|!=|<>|=|<|>|\(|\)|,|\*|\+|-|/)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    kind: str  # "number" | "string" | "ident" | "keyword" | "op" | "eof"
    value: str
    position: int


def tokenize_sql(text: str) -> list[Token]:
    """Lex ``text`` into tokens, raising on unrecognized input."""
    tokens: list[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise SQLSyntaxError(
                f"unexpected character {text[position]!r}", position
            )
        position = match.end()
        if match.lastgroup == "ws":
            continue
        value = match.group()
        kind = match.lastgroup or "op"
        if kind == "ident" and value.lower() in _KEYWORDS:
            tokens.append(Token("keyword", value.lower(), match.start()))
        else:
            tokens.append(Token(kind, value, match.start()))
    tokens.append(Token("eof", "", len(text)))
    return tokens


@dataclass
class SelectStatement:
    """Parsed form of a SELECT statement."""

    select_star: bool
    select_items: list[tuple[str, object]]  # ("column", Column)|("aggregate", Aggregate)
    distinct: bool
    tables: list[tuple[str, str]]  # (table, alias)
    joins: list[tuple[str, str, Expression, bool]]  # (+ outer flag)
    where: Expression | None
    group_by: list[str]
    having: Expression | None
    order_by: list[tuple[Expression, bool]]  # (key, descending)
    limit: int | None
    #: None = all linked instances; () = none; otherwise the named subset.
    summary_instances: tuple[str, ...] | None = None

    @property
    def is_grouped(self) -> bool:
        """True for aggregate queries (explicit GROUP BY or bare aggregates)."""
        return bool(self.group_by) or any(
            kind == "aggregate" for kind, _ in self.select_items
        )


@dataclass
class CompoundSelect:
    """A UNION [ALL] chain with trailing ORDER BY / LIMIT."""

    parts: list[SelectStatement]
    all_flags: list[bool]  # one per UNION; True = UNION ALL
    order_by: list[tuple[Expression, bool]]
    limit: int | None


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token helpers -----------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        self._index += 1
        return token

    def _check(self, kind: str, value: str | None = None) -> bool:
        token = self._current
        return token.kind == kind and (value is None or token.value == value)

    def _accept(self, kind: str, value: str | None = None) -> Token | None:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: str, value: str | None = None) -> Token:
        token = self._accept(kind, value)
        if token is None:
            wanted = value or kind
            raise SQLSyntaxError(
                f"expected {wanted!r}, found {self._current.value!r}",
                self._current.position,
            )
        return token

    def _fail(self, message: str) -> SQLSyntaxError:
        return SQLSyntaxError(message, self._current.position)

    # -- grammar ---------------------------------------------------------

    def parse_statement(self) -> SelectStatement | CompoundSelect:
        first = self._parse_select_core()
        parts = [first]
        all_flags: list[bool] = []
        while self._accept("keyword", "union"):
            all_flags.append(self._accept("keyword", "all") is not None)
            parts.append(self._parse_select_core())
        order_by = self._parse_order_by_clause()
        limit = self._parse_limit_clause()
        self._expect("eof")
        if len(parts) == 1:
            first.order_by = order_by
            first.limit = limit
            return first
        return CompoundSelect(
            parts=parts, all_flags=all_flags, order_by=order_by, limit=limit
        )

    def _parse_order_by_clause(self) -> list[tuple[Expression, bool]]:
        order_by: list[tuple[Expression, bool]] = []
        if self._accept("keyword", "order"):
            self._expect("keyword", "by")
            order_by.append(self._parse_order_item())
            while self._accept("op", ","):
                order_by.append(self._parse_order_item())
        return order_by

    def _parse_limit_clause(self) -> int | None:
        if not self._accept("keyword", "limit"):
            return None
        token = self._expect("number")
        if "." in token.value:
            raise SQLSyntaxError("LIMIT must be an integer", token.position)
        return int(token.value)

    def _parse_select_core(self) -> SelectStatement:
        self._expect("keyword", "select")
        distinct = self._accept("keyword", "distinct") is not None
        select_star, select_items = self._parse_select_list()
        self._expect("keyword", "from")
        tables = [self._parse_table_ref()]
        while self._accept("op", ","):
            tables.append(self._parse_table_ref())
        joins: list[tuple[str, str, Expression, bool]] = []
        while (
            self._check("keyword", "join")
            or self._check("keyword", "inner")
            or self._check("keyword", "left")
        ):
            outer = False
            if self._accept("keyword", "left"):
                self._accept("keyword", "outer")
                outer = True
            else:
                self._accept("keyword", "inner")
            self._expect("keyword", "join")
            table, alias = self._parse_table_ref()
            self._expect("keyword", "on")
            joins.append((table, alias, self.parse_expression(), outer))
        where = None
        if self._accept("keyword", "where"):
            where = self.parse_expression()
        group_by: list[str] = []
        if self._accept("keyword", "group"):
            self._expect("keyword", "by")
            group_by.append(self._expect("ident").value)
            while self._accept("op", ","):
                group_by.append(self._expect("ident").value)
        having = None
        if self._accept("keyword", "having"):
            having = self.parse_expression()
        summary_instances = self._parse_with_summaries()
        return SelectStatement(
            select_star=select_star,
            select_items=select_items,
            distinct=distinct,
            tables=tables,
            joins=joins,
            where=where,
            group_by=group_by,
            having=having,
            order_by=[],
            limit=None,
            summary_instances=summary_instances,
        )

    def _parse_with_summaries(self) -> tuple[str, ...] | None:
        """``WITH SUMMARIES (a, b)`` or ``WITH NO SUMMARIES``."""
        if not self._accept("keyword", "with"):
            return None
        if self._accept("keyword", "no"):
            self._expect("keyword", "summaries")
            return ()
        self._expect("keyword", "summaries")
        self._expect("op", "(")
        names = [self._expect("ident").value]
        while self._accept("op", ","):
            names.append(self._expect("ident").value)
        self._expect("op", ")")
        return tuple(names)

    def _parse_select_list(self) -> tuple[bool, list[tuple[str, object]]]:
        if self._accept("op", "*"):
            return True, []
        items = [self._parse_select_item()]
        while self._accept("op", ","):
            items.append(self._parse_select_item())
        return False, items

    def _parse_select_item(self) -> tuple[str, object]:
        token = self._current
        if token.kind == "ident" and token.value.lower() in _AGGREGATE_NAMES:
            peek = self._tokens[self._index + 1]
            if peek.kind == "op" and peek.value == "(":
                return "aggregate", self._parse_aggregate()
        expression = self.parse_expression()
        alias = None
        if self._accept("keyword", "as"):
            alias = self._expect("ident").value
            if "." in alias:
                raise SQLSyntaxError(f"aliases cannot be qualified: {alias!r}")
        if isinstance(expression, Column) and alias is None:
            return "column", expression
        return "expr", (expression, alias)

    def _parse_aggregate(self) -> lp.Aggregate:
        function = self._expect("ident").value.lower()
        self._expect("op", "(")
        if self._accept("op", "*"):
            self._expect("op", ")")
            if function != "count":
                raise self._fail(f"{function.upper()}(*) is not supported")
            return lp.Aggregate("count", None)
        argument = Column(self._expect("ident").value)
        self._expect("op", ")")
        return lp.Aggregate(function, argument)

    def _parse_order_item(self) -> tuple[Expression, bool]:
        token = self._current
        key: Expression
        if token.kind == "ident" and token.value.lower() in _AGGREGATE_NAMES:
            peek = self._tokens[self._index + 1]
            if peek.kind == "op" and peek.value == "(":
                aggregate = self._parse_aggregate()
                key = Column(aggregate.output_name)
            else:
                key = self.parse_expression()
        else:
            key = self.parse_expression()
        descending = False
        if self._accept("keyword", "desc"):
            descending = True
        else:
            self._accept("keyword", "asc")
        return key, descending

    def _parse_table_ref(self) -> tuple[str, str]:
        table_token = self._expect("ident")
        if "." in table_token.value:
            raise SQLSyntaxError(
                f"table names cannot be qualified: {table_token.value!r}",
                table_token.position,
            )
        table = table_token.value
        self._accept("keyword", "as")
        alias_token = self._accept("ident")
        alias = table
        if alias_token is not None:
            if "." in alias_token.value:
                raise SQLSyntaxError(
                    f"aliases cannot be qualified: {alias_token.value!r}",
                    alias_token.position,
                )
            alias = alias_token.value
        return table, alias

    # -- expressions -------------------------------------------------

    def parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        operands = [self._parse_and()]
        while self._accept("keyword", "or"):
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return BooleanOp("or", tuple(operands))

    def _parse_and(self) -> Expression:
        operands = [self._parse_not()]
        while self._accept("keyword", "and"):
            operands.append(self._parse_not())
        if len(operands) == 1:
            return operands[0]
        return BooleanOp("and", tuple(operands))

    def _parse_not(self) -> Expression:
        if self._accept("keyword", "not"):
            return Not(self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expression:
        left = self._parse_additive()
        token = self._current
        if token.kind == "op" and token.value in ("=", "!=", "<>", "<", "<=", ">", ">="):
            self._advance()
            operator = "!=" if token.value == "<>" else token.value
            return Comparison(operator, left, self._parse_additive())
        if self._accept("keyword", "like"):
            pattern = self._expect("string")
            return Like(left, _unquote(pattern.value))
        if self._accept("keyword", "between"):
            low = self._parse_additive()
            self._expect("keyword", "and")
            high = self._parse_additive()
            return BooleanOp(
                "and",
                (Comparison(">=", left, low), Comparison("<=", left, high)),
            )
        if self._accept("keyword", "is"):
            negated = self._accept("keyword", "not") is not None
            self._expect("keyword", "null")
            return IsNull(left, negated=negated)
        if self._accept("keyword", "in"):
            self._expect("op", "(")
            if self._check("keyword", "select"):
                statement = self._parse_select_core()
                self._expect("op", ")")
                return InSubquery(left, statement)
            values = [self._parse_literal_value()]
            while self._accept("op", ","):
                values.append(self._parse_literal_value())
            self._expect("op", ")")
            return InList(left, tuple(values))
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_term()
        while self._check("op", "+") or self._check("op", "-"):
            operator = self._advance().value
            left = Arithmetic(operator, left, self._parse_term())
        return left

    def _parse_term(self) -> Expression:
        left = self._parse_factor()
        while self._check("op", "*") or self._check("op", "/"):
            operator = self._advance().value
            left = Arithmetic(operator, left, self._parse_factor())
        return left

    def _parse_factor(self) -> Expression:
        if self._accept("op", "("):
            inner = self.parse_expression()
            self._expect("op", ")")
            return inner
        if self._check("number"):
            return Literal(_parse_number(self._advance().value))
        if self._check("string"):
            return Literal(_unquote(self._advance().value))
        if self._accept("keyword", "null"):
            return Literal(None)
        if self._check("op", "-"):
            self._advance()
            operand = self._parse_factor()
            return Arithmetic("-", Literal(0), operand)
        token = self._expect("ident")
        lowered = token.value.lower()
        if lowered in ("summary_count", "group_count") and self._check("op", "("):
            return self._parse_summary_function(lowered)
        if lowered in ("lower", "upper", "length", "abs", "round") and self._check(
            "op", "("
        ):
            self._expect("op", "(")
            operand = self.parse_expression()
            self._expect("op", ")")
            return ScalarFunction(lowered, operand)
        if lowered in _AGGREGATE_NAMES and self._check("op", "("):
            # An aggregate inside HAVING / ORDER BY references the grouped
            # output column by its canonical name.
            self._index -= 1
            aggregate = self._parse_aggregate()
            return Column(aggregate.output_name)
        return Column(token.value)

    def _parse_summary_function(self, name: str) -> Expression:
        self._expect("op", "(")
        instance = _unquote(self._expect("string").value)
        label: str | None = None
        if self._accept("op", ","):
            label = _unquote(self._expect("string").value)
        self._expect("op", ")")
        if name == "group_count":
            if label is not None:
                raise self._fail("GROUP_COUNT takes a single instance argument")
            return GroupCount(instance)
        return SummaryCount(instance, label)

    def _parse_literal_value(self):
        if self._check("number"):
            return _parse_number(self._advance().value)
        if self._check("string"):
            return _unquote(self._advance().value)
        raise self._fail("expected a literal in IN list")


def _parse_number(text: str) -> int | float:
    return float(text) if "." in text else int(text)


def _unquote(text: str) -> str:
    return text[1:-1].replace("''", "'")


def parse_sql(text: str) -> SelectStatement:
    """Parse a SELECT statement into its IR."""
    return _Parser(tokenize_sql(text)).parse_statement()


def parse_expression(text: str) -> Expression:
    """Parse a standalone expression (used by ZOOMIN WHERE clauses)."""
    parser = _Parser(tokenize_sql(text))
    expression = parser.parse_expression()
    parser._expect("eof")
    return expression


def continue_expression(
    tokens: list[Token], index: int
) -> tuple[Expression, int]:
    """Parse one expression starting at ``tokens[index]``.

    Returns the expression and the index of the first unconsumed token.
    Lets other command languages (ZOOMIN) embed SQL expressions.
    """
    parser = _Parser(tokens)
    parser._index = index
    expression = parser.parse_expression()
    return expression, parser._index


def build_logical(
    statement: SelectStatement | CompoundSelect, planner
) -> lp.PlanNode:
    """Construct the logical plan for a parsed statement.

    ``planner`` supplies schema inference (:meth:`Planner.schema_of`) for
    validating grouped select lists and expanding ``*``.
    """
    if isinstance(statement, CompoundSelect):
        return _build_compound(statement, planner)
    seen_aliases: set[str] = set()
    node: lp.PlanNode | None = None
    instances = statement.summary_instances
    for table, alias in statement.tables:
        if alias in seen_aliases:
            raise SQLSyntaxError(f"duplicate alias {alias!r}")
        seen_aliases.add(alias)
        scan = lp.Scan(table, alias, instances)
        node = scan if node is None else lp.Join(node, scan, None)
    assert node is not None
    for table, alias, predicate, outer in statement.joins:
        if alias in seen_aliases:
            raise SQLSyntaxError(f"duplicate alias {alias!r}")
        seen_aliases.add(alias)
        node = lp.Join(node, lp.Scan(table, alias, instances), predicate, outer)
    if statement.where is not None:
        node = lp.Select(node, statement.where)

    if statement.is_grouped:
        node = _build_grouped(statement, node, planner)
    elif not statement.select_star:
        if any(kind == "expr" for kind, _ in statement.select_items):
            node = _build_computed(statement, node, planner)
        else:
            columns = tuple(
                item.name
                for kind, item in statement.select_items
                if isinstance(item, Column)
            )
            node = lp.Project(node, columns)
    if statement.distinct:
        node = lp.Distinct(node)
    if statement.order_by:
        keys = tuple(key for key, _ in statement.order_by)
        descending = tuple(desc for _, desc in statement.order_by)
        node = lp.Sort(node, keys, descending)
    if statement.limit is not None:
        node = lp.Limit(node, statement.limit)
    return node


def _build_computed(
    statement: SelectStatement, child: lp.PlanNode, planner
) -> lp.PlanNode:
    """Expression select list -> a Compute node over the FROM tree."""
    child_schema = planner.schema_of(child)
    items: list[tuple[Expression, str]] = []
    for kind, item in statement.select_items:
        if kind == "column":
            assert isinstance(item, Column)
            qualified = child_schema[resolve_column(child_schema, item.name)]
            items.append((item, qualified))
        else:
            expression, alias = item  # type: ignore[misc]
            items.append((expression, alias or str(expression)))
    names = [name for _, name in items]
    if len(set(names)) != len(names):
        raise SQLSyntaxError(
            f"duplicate output columns in select list: {names}; use AS"
        )
    return lp.Compute(child, tuple(items))


def _build_grouped(
    statement: SelectStatement, child: lp.PlanNode, planner
) -> lp.PlanNode:
    if any(kind == "expr" for kind, _ in statement.select_items):
        raise SQLSyntaxError(
            "computed select items cannot be combined with aggregation"
        )
    child_schema = planner.schema_of(child)
    key_resolved = {
        child_schema[resolve_column(child_schema, key)] for key in statement.group_by
    }
    aggregates: list[lp.Aggregate] = []
    output_columns: list[str] = []
    for kind, item in statement.select_items:
        if kind == "aggregate":
            assert isinstance(item, lp.Aggregate)
            aggregates.append(item)
            if item.argument is None:
                output_columns.append("count(*)")
            else:
                index = resolve_column(child_schema, item.argument.name)
                output_columns.append(f"{item.function}({child_schema[index]})")
        else:
            assert isinstance(item, Column)
            resolved = child_schema[resolve_column(child_schema, item.name)]
            if resolved not in key_resolved:
                raise SQLSyntaxError(
                    f"column {item.name!r} must appear in GROUP BY"
                )
            output_columns.append(resolved)
    if statement.select_star:
        raise SQLSyntaxError("SELECT * cannot be combined with GROUP BY")
    grouped = lp.GroupBy(
        child,
        keys=tuple(statement.group_by),
        aggregates=tuple(aggregates),
        having=statement.having,
    )
    grouped_schema = planner.schema_of(grouped)
    if tuple(output_columns) == grouped_schema:
        return grouped
    return lp.Project(grouped, tuple(output_columns))


def _build_compound(compound: CompoundSelect, planner) -> lp.PlanNode:
    """Left-deep UNION chain with trailing ORDER BY / LIMIT."""
    node = build_logical(compound.parts[0], planner)
    width = len(planner.schema_of(node))
    for part, all_flag in zip(compound.parts[1:], compound.all_flags):
        right = build_logical(part, planner)
        if len(planner.schema_of(right)) != width:
            raise SQLSyntaxError(
                "UNION arms must select the same number of columns"
            )
        node = lp.Union(node, right, distinct=not all_flag)
    if compound.order_by:
        keys = tuple(key for key, _ in compound.order_by)
        descending = tuple(desc for _, desc in compound.order_by)
        node = lp.Sort(node, keys, descending)
    if compound.limit is not None:
        node = lp.Limit(node, compound.limit)
    return node
