"""The EXPLAIN surface of the cost-based planner.

``InsightNotes.explain(sql)`` returns an :class:`Explanation` — a
``str`` subclass, so every existing caller that treats the rendering as
text (substring checks, ``splitlines()``, printing) keeps working —
that additionally carries the prepared logical plan and per-operator
cost/cardinality estimates, ZOOMIN-style:

    Sort(count(*) DESC)  [rows~3 cost~188.4]
      GroupBy(keys=[r.region]; aggs=[count(*)])  [rows~3 cost~185.2]
        Scan(readings AS r) [pushed: r.value > 10]  [rows~300 cost~75.0]

``to_json()`` exposes the same tree structurally for tooling (the serve
layer, notebooks), mirroring the engine's other ``to_json`` payloads.
"""

from __future__ import annotations

from typing import Any

from repro.engine import plan as lp
from repro.engine.cost import CostEstimate, CostModel


class Explanation(str):
    """A rendered plan explanation that is also the plan.

    Being a ``str`` keeps the original ``explain()`` contract (callers
    split lines, grep for operator names); :attr:`plan` and
    :meth:`to_json` add the structured view.
    """

    plan: lp.PlanNode
    _estimates: dict[int, CostEstimate]

    def __new__(
        cls,
        text: str,
        plan: lp.PlanNode,
        estimates: dict[int, CostEstimate],
    ) -> "Explanation":
        rendered = super().__new__(cls, text)
        rendered.plan = plan
        rendered._estimates = estimates
        return rendered

    def estimate_for(self, node: lp.PlanNode) -> CostEstimate:
        """The cost/cardinality estimate attached to one plan node."""
        return self._estimates[id(node)]

    def to_json(self) -> dict[str, Any]:
        """Nested per-operator view of the explained plan."""
        return self._node_json(self.plan)

    def _node_json(self, node: lp.PlanNode) -> dict[str, Any]:
        estimate = self._estimates[id(node)]
        return {
            "operator": type(node).__name__,
            "describe": node.describe(),
            "estimated_rows": round(estimate.rows, 2),
            "estimated_cost": round(estimate.cost, 2),
            "children": [
                self._node_json(child) for child in node.children()
            ],
        }


def build_explanation(plan: lp.PlanNode, model: CostModel) -> Explanation:
    """Render ``plan`` with per-operator estimates from ``model``.

    Estimates are computed per subtree, so every line prices the work
    up to and including that operator — the root's cost is the whole
    plan's.  The suffix format deliberately avoids operator-name words
    (plain ``rows~``/``cost~``) so substring checks against operator
    names keep meaning what they meant.
    """
    estimates: dict[int, CostEstimate] = {}
    lines: list[str] = []

    def annotate(node: lp.PlanNode, indent: int) -> None:
        estimate = model.estimate(node)
        estimates[id(node)] = estimate
        lines.append(
            "  " * indent
            + f"{node.describe()}  "
            + f"[rows~{estimate.rows:.0f} cost~{estimate.cost:.1f}]"
        )
        for child in node.children():
            annotate(child, indent + 1)

    annotate(plan, 0)
    return Explanation("\n".join(lines), plan, estimates)
