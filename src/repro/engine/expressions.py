"""Expression evaluation for predicates and select lists.

Expressions evaluate against an :class:`~repro.model.tuple.AnnotatedTuple`
and the operator's column schema.  Besides ordinary column references,
comparisons, boolean connectives, arithmetic, LIKE, and IN, the engine
exposes two **summary functions** — the "new query operators specific for
annotation summaries" of the paper — usable anywhere an expression is:

* ``SUMMARY_COUNT('<instance>', '<label>')`` — the annotation count under a
  classifier label (or total for the instance when the label is omitted);
* ``GROUP_COUNT('<instance>')`` — the number of groups in a cluster
  summary.

These make summary-based filtering and sorting (``WHERE
SUMMARY_COUNT('ClassBird1','Disease') > 5 ORDER BY GROUP_COUNT(...)``)
plug into any stage of the pipeline, as §2.1 requires.
"""

from __future__ import annotations

import abc
import re
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

from repro.errors import ExpressionError
from repro.model.tuple import AnnotatedTuple
from repro.summaries.classifier import ClassifierSummary
from repro.summaries.cluster import ClusterSummary

# Resolution cache: (schema, name) -> column index.  Schemas are small
# tuples, so the cache stays tiny while avoiding a linear scan per row.
_RESOLUTION_CACHE: dict[tuple[tuple[str, ...], str], int] = {}


def resolve_column(schema: tuple[str, ...], name: str) -> int:
    """Index of column ``name`` in ``schema``.

    Exact (qualified) matches win; otherwise an unqualified name matches a
    unique qualified column with that suffix.  Ambiguous or unknown names
    raise :class:`ExpressionError`.
    """
    key = (schema, name)
    cached = _RESOLUTION_CACHE.get(key)
    if cached is not None:
        return cached
    if name in schema:
        index = schema.index(name)
    else:
        matches = [
            i for i, column in enumerate(schema) if _suffix_matches(column, name)
        ]
        if not matches:
            raise ExpressionError(
                f"unknown column {name!r}; available: {list(schema)}"
            )
        if len(matches) > 1:
            ambiguous = [schema[i] for i in matches]
            raise ExpressionError(f"ambiguous column {name!r}: {ambiguous}")
        index = matches[0]
    _RESOLUTION_CACHE[key] = index
    return index


_AGGREGATE_NAME_RE = re.compile(r"([a-z]+)\((.*)\)")


def _suffix_matches(column: str, name: str) -> bool:
    """Unqualified-match test, aggregate-name aware.

    ``b`` matches ``r.b``; ``sum(b)`` matches ``sum(r.b)``; ``count(*)``
    only matches exactly (handled by the caller's fast path).
    """
    aggregate = _AGGREGATE_NAME_RE.fullmatch(name)
    if aggregate is not None:
        candidate = _AGGREGATE_NAME_RE.fullmatch(column)
        if candidate is None or candidate.group(1) != aggregate.group(1):
            return False
        inner_column, inner_name = candidate.group(2), aggregate.group(2)
        return inner_column == inner_name or _suffix_matches(
            inner_column, inner_name
        )
    return column.rsplit(".", 1)[-1] == name


class Expression(abc.ABC):
    """Base class of the expression AST."""

    @abc.abstractmethod
    def evaluate(self, row: AnnotatedTuple, schema: tuple[str, ...]) -> Any:
        """Value of the expression for ``row`` under ``schema``."""

    @abc.abstractmethod
    def referenced_columns(self) -> set[str]:
        """Column names (as written) this expression references."""

    @abc.abstractmethod
    def __str__(self) -> str:
        """SQL-ish rendering, used in plan displays and output names."""


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value."""

    value: Any

    def evaluate(self, row: AnnotatedTuple, schema: tuple[str, ...]) -> Any:
        return self.value

    def referenced_columns(self) -> set[str]:
        return set()

    def __str__(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)


@dataclass(frozen=True)
class Column(Expression):
    """A (possibly qualified) column reference."""

    name: str

    def evaluate(self, row: AnnotatedTuple, schema: tuple[str, ...]) -> Any:
        return row.values[resolve_column(schema, self.name)]

    def referenced_columns(self) -> set[str]:
        return {self.name}

    def __str__(self) -> str:
        return self.name


_COMPARISONS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Comparison(Expression):
    """A binary comparison; NULL (None) operands compare false."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARISONS:
            raise ExpressionError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, row: AnnotatedTuple, schema: tuple[str, ...]) -> bool:
        left = self.left.evaluate(row, schema)
        right = self.right.evaluate(row, schema)
        if left is None or right is None:
            return False
        try:
            return _COMPARISONS[self.op](left, right)
        except TypeError as exc:
            raise ExpressionError(
                f"cannot compare {left!r} {self.op} {right!r}"
            ) from exc

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class BooleanOp(Expression):
    """N-ary AND / OR with short-circuit evaluation."""

    op: str  # "and" | "or"
    operands: tuple[Expression, ...]

    def __post_init__(self) -> None:
        if self.op not in ("and", "or"):
            raise ExpressionError(f"unknown boolean operator {self.op!r}")
        if len(self.operands) < 2:
            raise ExpressionError(f"{self.op.upper()} needs >= 2 operands")

    def evaluate(self, row: AnnotatedTuple, schema: tuple[str, ...]) -> bool:
        if self.op == "and":
            return all(op.evaluate(row, schema) for op in self.operands)
        return any(op.evaluate(row, schema) for op in self.operands)

    def referenced_columns(self) -> set[str]:
        columns: set[str] = set()
        for operand in self.operands:
            columns |= operand.referenced_columns()
        return columns

    def __str__(self) -> str:
        joiner = f" {self.op.upper()} "
        return "(" + joiner.join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Not(Expression):
    """Logical negation."""

    operand: Expression

    def evaluate(self, row: AnnotatedTuple, schema: tuple[str, ...]) -> bool:
        return not self.operand.evaluate(row, schema)

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def __str__(self) -> str:
        return f"NOT ({self.operand})"


_ARITHMETIC = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


@dataclass(frozen=True)
class Arithmetic(Expression):
    """Binary arithmetic over numeric operands."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _ARITHMETIC:
            raise ExpressionError(f"unknown arithmetic operator {self.op!r}")

    def evaluate(self, row: AnnotatedTuple, schema: tuple[str, ...]) -> Any:
        left = self.left.evaluate(row, schema)
        right = self.right.evaluate(row, schema)
        if left is None or right is None:
            return None
        try:
            return _ARITHMETIC[self.op](left, right)
        except (TypeError, ZeroDivisionError) as exc:
            raise ExpressionError(
                f"cannot evaluate {left!r} {self.op} {right!r}"
            ) from exc

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Like(Expression):
    """SQL LIKE with ``%`` and ``_`` wildcards, case-insensitive."""

    operand: Expression
    pattern: str

    def evaluate(self, row: AnnotatedTuple, schema: tuple[str, ...]) -> bool:
        value = self.operand.evaluate(row, schema)
        if value is None:
            return False
        regex = re.escape(self.pattern).replace("%", ".*").replace("_", ".")
        return re.fullmatch(regex, str(value), re.IGNORECASE) is not None

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def __str__(self) -> str:
        return f"{self.operand} LIKE '{self.pattern}'"


@dataclass(frozen=True)
class IsNull(Expression):
    """SQL ``IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False

    def evaluate(self, row: AnnotatedTuple, schema: tuple[str, ...]) -> bool:
        is_null = self.operand.evaluate(row, schema) is None
        return not is_null if self.negated else is_null

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def __str__(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{self.operand} {suffix}"


@dataclass(frozen=True)
class InList(Expression):
    """SQL IN over a literal list."""

    operand: Expression
    values: tuple[Any, ...]

    def evaluate(self, row: AnnotatedTuple, schema: tuple[str, ...]) -> bool:
        return self.operand.evaluate(row, schema) in self.values

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def __str__(self) -> str:
        rendered = ", ".join(str(Literal(value)) for value in self.values)
        return f"{self.operand} IN ({rendered})"


_SCALAR_FUNCTIONS = {
    "lower": lambda v: v.lower() if isinstance(v, str) else v,
    "upper": lambda v: v.upper() if isinstance(v, str) else v,
    "length": lambda v: len(v) if isinstance(v, str) else None,
    "abs": lambda v: abs(v) if isinstance(v, (int, float)) else None,
    "round": lambda v: round(v) if isinstance(v, (int, float)) else None,
}


@dataclass(frozen=True)
class ScalarFunction(Expression):
    """A built-in scalar function: LOWER, UPPER, LENGTH, ABS, ROUND.

    NULL inputs yield NULL; type-mismatched inputs yield NULL rather than
    raising, matching SQL's permissive scalar semantics.
    """

    name: str
    operand: Expression

    def __post_init__(self) -> None:
        if self.name not in _SCALAR_FUNCTIONS:
            raise ExpressionError(f"unknown scalar function {self.name!r}")

    def evaluate(self, row: AnnotatedTuple, schema: tuple[str, ...]) -> Any:
        value = self.operand.evaluate(row, schema)
        if value is None:
            return None
        return _SCALAR_FUNCTIONS[self.name](value)

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def __str__(self) -> str:
        return f"{self.name.upper()}({self.operand})"


@dataclass(frozen=True)
class InSubquery(Expression):
    """``operand IN (SELECT ...)`` — an uncorrelated subquery membership.

    The engine flattens these before execution: the subquery runs once and
    the node is replaced by an :class:`InList` over its values (see
    :meth:`repro.engine.session.InsightNotes.query`).  Evaluating an
    unflattened node is therefore an error.
    """

    operand: Expression
    statement: Any  # SelectStatement; typed loosely to avoid a cycle

    def evaluate(self, row: AnnotatedTuple, schema: tuple[str, ...]) -> bool:
        raise ExpressionError(
            "IN (SELECT ...) must be flattened before evaluation; "
            "run the query through the session"
        )

    def referenced_columns(self) -> set[str]:
        # Only the outer operand references the outer query's columns;
        # the subquery is self-contained (uncorrelated by definition).
        return self.operand.referenced_columns()

    def __str__(self) -> str:
        return f"{self.operand} IN (<subquery>)"


@dataclass(frozen=True)
class SummaryCount(Expression):
    """``SUMMARY_COUNT('<instance>'[, '<label>'])`` — summary-based value.

    For classifier summaries, the count under ``label`` (or the total when
    ``label`` is None).  For any other summary type, the total number of
    contributing annotations.  Tuples without the instance score 0.
    """

    instance: str
    label: str | None = None

    def evaluate(self, row: AnnotatedTuple, schema: tuple[str, ...]) -> int:
        obj = row.summaries.get(self.instance)
        if obj is None:
            return 0
        if self.label is not None:
            if not isinstance(obj, ClassifierSummary):
                raise ExpressionError(
                    f"SUMMARY_COUNT with a label requires a classifier "
                    f"summary; {self.instance!r} is {obj.type_name}"
                )
            return obj.count(self.label)
        return len(obj.annotation_ids())

    def referenced_columns(self) -> set[str]:
        return set()

    def __str__(self) -> str:
        if self.label is None:
            return f"SUMMARY_COUNT('{self.instance}')"
        return f"SUMMARY_COUNT('{self.instance}', '{self.label}')"


@dataclass(frozen=True)
class GroupCount(Expression):
    """``GROUP_COUNT('<instance>')`` — number of cluster groups."""

    instance: str

    def evaluate(self, row: AnnotatedTuple, schema: tuple[str, ...]) -> int:
        obj = row.summaries.get(self.instance)
        if obj is None:
            return 0
        if not isinstance(obj, ClusterSummary):
            raise ExpressionError(
                f"GROUP_COUNT requires a cluster summary; "
                f"{self.instance!r} is {obj.type_name}"
            )
        return len(obj.groups)

    def referenced_columns(self) -> set[str]:
        return set()

    def __str__(self) -> str:
        return f"GROUP_COUNT('{self.instance}')"


def uses_summaries(expr: Expression) -> bool:
    """True when ``expr`` reads summary objects (SUMMARY_COUNT/GROUP_COUNT).

    Used by the planner to decide whether a predicate or sort key needs
    hydrated rows, and whether an IN-subquery plan can skip hydration.
    """
    if isinstance(expr, (SummaryCount, GroupCount)):
        return True
    if isinstance(expr, (Comparison, Arithmetic)):
        return uses_summaries(expr.left) or uses_summaries(expr.right)
    if isinstance(expr, BooleanOp):
        return any(uses_summaries(op) for op in expr.operands)
    if isinstance(expr, (Not, Like, IsNull, InList, ScalarFunction, InSubquery)):
        return uses_summaries(expr.operand)
    return False


def conjunction(parts: Sequence[Expression]) -> Expression | None:
    """AND together ``parts``; None for empty, the part itself for one."""
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return BooleanOp("and", tuple(parts))
