"""Compilation of sargable predicates into storage-level SQL.

The planner sinks selections until they sit directly above scans
(:meth:`Planner.push_down_selections`); this module goes one step
further and compiles the *sargable* conjuncts — comparisons, IN lists,
BETWEEN (already desugared to two comparisons by the parser), and NULL
tests over plain data columns with literal operands — into a
parameterized SQL ``WHERE`` fragment that SQLite evaluates inside
:meth:`repro.storage.database.Database.scan`.  Conjuncts the compiler
cannot prove equivalent (LIKE, NOT, bare columns, summary functions,
expressions over multiple columns) stay behind as a *residual* that the
in-memory :class:`~repro.engine.operators.SelectOperator` evaluates.

Equivalence notes (engine semantics vs. SQLite):

* Comparisons with a NULL operand evaluate false in the engine and NULL
  in SQLite — both exclude the row, so comparisons are pushable.
* ``IN`` lists are pushed only when no element is NULL: Python's
  ``None in (None,)`` is true while SQLite's ``x IN (NULL)`` never is.
* ``NOT`` is never pushed: the engine's ``NOT (x = 5)`` keeps a row
  whose ``x`` is NULL, SQLite's filters it out.
* ``LIKE`` is never pushed: the engine matches case-insensitively over
  full Unicode, SQLite only over ASCII.
* Ordering comparisons assume type-homogeneous columns (the workload
  generator's guarantee): the engine raises on ``'text' < 5`` where
  SQLite would order across types.
* Disjunctions are pushed when every branch is; an all-false/NULL OR
  excludes the row on both sides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.engine.expressions import (
    BooleanOp,
    Column,
    Comparison,
    Expression,
    InList,
    IsNull,
    Literal,
    resolve_column,
)
from repro.errors import ExpressionError

#: Literal types whose Python comparison semantics match SQLite's over
#: homogeneous columns (bool is an int subclass and binds as 0/1).
_PUSHABLE_LITERALS = (int, float, str)


@dataclass(frozen=True)
class StorageFilter:
    """A compiled WHERE fragment executed inside the storage scan.

    ``sql`` is a parameterized fragment over the table's *unqualified*
    (quoted) column names; ``params`` are the literal operands in
    placeholder order; ``display`` is the original predicate rendering
    used by EXPLAIN output and operator descriptions.
    """

    sql: str
    params: tuple[Any, ...]
    display: str

    def merge(self, other: "StorageFilter") -> "StorageFilter":
        """AND two compiled filters (stacked selections over one scan)."""
        return StorageFilter(
            sql=f"({self.sql}) AND ({other.sql})",
            params=self.params + other.params,
            display=f"({self.display}) AND ({other.display})",
        )

    def __str__(self) -> str:
        return self.display


def compile_conjuncts(
    conjuncts: list[Expression],
    scan_schema: tuple[str, ...],
    table_columns: tuple[str, ...],
) -> tuple[StorageFilter | None, list[Expression]]:
    """Split ``conjuncts`` into a pushable filter and a residual list.

    ``scan_schema`` is the scan's alias-qualified output schema;
    ``table_columns`` the matching storage column names.  Returns the
    compiled filter (None when nothing is pushable) and the conjuncts
    that must stay in the in-memory selection, in their original order.
    """
    pushed_sql: list[str] = []
    pushed_params: list[Any] = []
    pushed_display: list[str] = []
    residual: list[Expression] = []
    for conjunct in conjuncts:
        compiled = _compile(conjunct, scan_schema, table_columns)
        if compiled is None:
            residual.append(conjunct)
        else:
            sql, params = compiled
            pushed_sql.append(sql)
            pushed_params.extend(params)
            pushed_display.append(str(conjunct))
    if not pushed_sql:
        return None, residual
    return (
        StorageFilter(
            sql=" AND ".join(pushed_sql),
            params=tuple(pushed_params),
            display=" AND ".join(pushed_display),
        ),
        residual,
    )


def _column_sql(
    name: str, scan_schema: tuple[str, ...], table_columns: tuple[str, ...]
) -> str | None:
    """Quoted storage column for a referenced name, or None."""
    try:
        index = resolve_column(scan_schema, name)
    except ExpressionError:
        return None
    quoted = table_columns[index].replace('"', '""')
    return f'"{quoted}"'


def _pushable_literal(value: Any) -> bool:
    return isinstance(value, _PUSHABLE_LITERALS)


def _compile(
    expr: Expression,
    scan_schema: tuple[str, ...],
    table_columns: tuple[str, ...],
) -> tuple[str, tuple[Any, ...]] | None:
    """Compile one predicate to ``(sql, params)``; None when not sargable."""
    if isinstance(expr, Comparison):
        left, right = expr.left, expr.right
        if isinstance(left, Column) and isinstance(right, Literal):
            if not _pushable_literal(right.value):
                return None
            column = _column_sql(left.name, scan_schema, table_columns)
            if column is None:
                return None
            return f"{column} {expr.op} ?", (right.value,)
        if isinstance(left, Literal) and isinstance(right, Column):
            if not _pushable_literal(left.value):
                return None
            column = _column_sql(right.name, scan_schema, table_columns)
            if column is None:
                return None
            return f"? {expr.op} {column}", (left.value,)
        return None
    if isinstance(expr, InList):
        if not isinstance(expr.operand, Column) or not expr.values:
            return None
        if not all(_pushable_literal(value) for value in expr.values):
            return None
        column = _column_sql(expr.operand.name, scan_schema, table_columns)
        if column is None:
            return None
        marks = ", ".join("?" for _ in expr.values)
        return f"{column} IN ({marks})", tuple(expr.values)
    if isinstance(expr, IsNull):
        if not isinstance(expr.operand, Column):
            return None
        column = _column_sql(expr.operand.name, scan_schema, table_columns)
        if column is None:
            return None
        suffix = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"{column} {suffix}", ()
    if isinstance(expr, BooleanOp):
        parts: list[str] = []
        params: list[Any] = []
        for operand in expr.operands:
            compiled = _compile(operand, scan_schema, table_columns)
            if compiled is None:
                return None
            sql, operand_params = compiled
            parts.append(sql)
            params.extend(operand_params)
        joiner = " AND " if expr.op == "and" else " OR "
        return "(" + joiner.join(parts) + ")", tuple(params)
    return None
