"""Logical-plan construction, normalization, and physical lowering.

The planner owns the rewrite that makes summary propagation *plan
invariant*.  Theorems 1 and 2 of the engine paper [30] show that equivalent
relational plans produce identical annotation summaries **iff** un-needed
annotations are projected out before any merge operation (join, grouping,
duplicate elimination).  :meth:`Planner.normalize` enforces this by
computing the columns each subtree must supply (top-down) and inserting
projections so no merge ever sees a column — and therefore an annotation —
that the rest of the plan does not need.

The planner also pushes single-relation WHERE conjuncts below joins and
turns join-condition conjuncts into join predicates (enabling the hash
join); these rewrites move whole tuples, never individual annotations, so
they are summary-neutral.

Set ``normalize=False`` to lower plans as written — the EXP-QP3 ablation
uses this to demonstrate that merge-before-project plans can disagree.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.engine import plan as lp
from repro.engine.expressions import (
    BooleanOp,
    Expression,
    conjunction,
    resolve_column,
)
from repro.engine.operators import (
    DEFAULT_SCAN_BLOCK_SIZE,
    ComputeOperator,
    DistinctOperator,
    GroupByOperator,
    JoinOperator,
    LimitOperator,
    Operator,
    ProjectOperator,
    ScanOperator,
    SelectOperator,
    SortOperator,
    Tracer,
    UnionOperator,
)
from repro.errors import PlanError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.maintenance.incremental import SummaryManager
    from repro.storage.annotations import AnnotationStore
    from repro.storage.catalog import SummaryCatalog
    from repro.storage.database import Database


class Planner:
    """Turns logical plans into summary-aware physical pipelines."""

    def __init__(
        self,
        database: "Database",
        annotations: "AnnotationStore",
        catalog: "SummaryCatalog",
        manager: "SummaryManager | None" = None,
        normalize: bool = True,
        push_selections: bool = True,
        scan_block_size: int = DEFAULT_SCAN_BLOCK_SIZE,
    ) -> None:
        self._db = database
        self._annotations = annotations
        self._catalog = catalog
        self._manager = manager
        self.normalize_plans = normalize
        self.push_selections = push_selections
        if scan_block_size < 1:
            raise ValueError(
                f"scan_block_size must be >= 1, got {scan_block_size}"
            )
        self.scan_block_size = scan_block_size

    # -- schema inference ---------------------------------------------

    def schema_of(self, node: lp.PlanNode) -> tuple[str, ...]:
        """Qualified output schema of a logical node."""
        if isinstance(node, lp.Scan):
            return tuple(
                f"{node.alias}.{column}" for column in self._db.columns(node.table)
            )
        if isinstance(node, (lp.Select, lp.Sort, lp.Limit, lp.Distinct)):
            return self.schema_of(node.children()[0])
        if isinstance(node, lp.Project):
            child_schema = self.schema_of(node.child)
            return tuple(
                child_schema[resolve_column(child_schema, name)]
                for name in node.columns
            )
        if isinstance(node, lp.Compute):
            return tuple(name for _, name in node.items)
        if isinstance(node, lp.Join):
            return self.schema_of(node.left) + self.schema_of(node.right)
        if isinstance(node, lp.GroupBy):
            child_schema = self.schema_of(node.child)
            keys = tuple(
                child_schema[resolve_column(child_schema, key)] for key in node.keys
            )
            aggs = tuple(
                self._canonical_aggregate_name(aggregate, child_schema)
                for aggregate in node.aggregates
            )
            return keys + aggs
        if isinstance(node, lp.Union):
            return self.schema_of(node.left)
        raise PlanError(f"cannot infer schema of {type(node).__name__}")

    @staticmethod
    def _canonical_aggregate_name(
        aggregate: lp.Aggregate, child_schema: tuple[str, ...]
    ) -> str:
        if aggregate.argument is None:
            return "count(*)"
        index = resolve_column(child_schema, aggregate.argument.name)
        return f"{aggregate.function}({child_schema[index]})"

    # -- selection pushdown -------------------------------------------

    def push_down_selections(self, node: lp.PlanNode) -> lp.PlanNode:
        """Push WHERE conjuncts toward their relations.

        A conjunct referencing only one side of a join moves below it; a
        conjunct spanning both sides becomes (part of) the join predicate.
        Tuple-level only — summary propagation is unaffected.
        """
        if isinstance(node, lp.Select):
            child = self.push_down_selections(node.child)
            conjuncts = _split_conjuncts(node.predicate)
            remaining, child = self._sink_conjuncts(conjuncts, child)
            predicate = conjunction(remaining)
            return lp.Select(child, predicate) if predicate is not None else child
        if isinstance(node, lp.Join):
            return lp.Join(
                self.push_down_selections(node.left),
                self.push_down_selections(node.right),
                node.predicate,
                node.outer,
            )
        rebuilt = _rebuild_with_children(
            node, tuple(self.push_down_selections(c) for c in node.children())
        )
        return rebuilt

    def _sink_conjuncts(
        self, conjuncts: list[Expression], node: lp.PlanNode
    ) -> tuple[list[Expression], lp.PlanNode]:
        """Sink as many conjuncts as possible into ``node``; return the rest."""
        if not conjuncts:
            return [], node
        if isinstance(node, lp.Join):
            if node.outer:
                # Sinking predicates past an outer join changes which left
                # tuples survive NULL-padded; keep the selection above it.
                return conjuncts, node
            left_schema = self.schema_of(node.left)
            right_schema = self.schema_of(node.right)
            left_conjuncts: list[Expression] = []
            right_conjuncts: list[Expression] = []
            join_conjuncts: list[Expression] = []
            remaining: list[Expression] = []
            for conjunct in conjuncts:
                columns = conjunct.referenced_columns()
                if not columns:
                    remaining.append(conjunct)
                elif _all_resolvable(columns, left_schema):
                    left_conjuncts.append(conjunct)
                elif _all_resolvable(columns, right_schema):
                    right_conjuncts.append(conjunct)
                elif _all_resolvable(columns, left_schema + right_schema):
                    join_conjuncts.append(conjunct)
                else:
                    remaining.append(conjunct)
            _, left = self._sink_conjuncts(left_conjuncts, node.left)
            _, right = self._sink_conjuncts(right_conjuncts, node.right)
            predicate_parts = join_conjuncts
            if node.predicate is not None:
                predicate_parts = _split_conjuncts(node.predicate) + join_conjuncts
            return remaining, lp.Join(left, right, conjunction(predicate_parts))
        if isinstance(node, (lp.Select, lp.Scan, lp.Project)):
            predicate = conjunction(conjuncts)
            assert predicate is not None
            return [], lp.Select(node, predicate)
        # Other operators: keep the selection above them.
        return conjuncts, node

    # -- Theorems 1-2 normalization ----------------------------------

    def normalize(self, node: lp.PlanNode) -> lp.PlanNode:
        """Insert projections so merges never see un-needed columns."""
        required = list(self.schema_of(node))
        return self._prune(node, required)

    def _prune(self, node: lp.PlanNode, required: Sequence[str]) -> lp.PlanNode:
        """Rewrite ``node`` to output exactly ``required`` (in order)."""
        schema = self.schema_of(node)
        needed = list(dict.fromkeys(required)) or [schema[0]]

        if isinstance(node, lp.Scan):
            return self._wrap(node, schema, needed)

        if isinstance(node, lp.Project):
            # The projection collapses into the pruning itself.
            return self._prune(node.child, needed)

        if isinstance(node, lp.Compute):
            kept = [
                (expression, name)
                for expression, name in node.items
                if name in set(needed)
            ] or [node.items[0]]
            child_schema = self.schema_of(node.child)
            child_required: list[str] = []
            for expression, _name in kept:
                child_required.extend(
                    _resolve_all(expression.referenced_columns(), child_schema)
                )
            child_required = list(dict.fromkeys(child_required))
            child = self._prune(node.child, child_required or [child_schema[0]])
            computed = lp.Compute(child, tuple(kept))
            return self._wrap(
                computed, [name for _, name in kept], needed
            )

        if isinstance(node, lp.Select):
            child_schema = self.schema_of(node.child)
            child_required = _merge_required(
                needed, _resolve_all(node.predicate.referenced_columns(), child_schema)
            )
            child = self._prune(node.child, child_required)
            return self._wrap(lp.Select(child, node.predicate), child_required, needed)

        if isinstance(node, lp.Sort):
            child_schema = self.schema_of(node.child)
            key_columns: list[str] = []
            for key in node.keys:
                key_columns.extend(
                    _resolve_all(key.referenced_columns(), child_schema)
                )
            child_required = _merge_required(needed, key_columns)
            child = self._prune(node.child, child_required)
            return self._wrap(
                lp.Sort(child, node.keys, node.descending), child_required, needed
            )

        if isinstance(node, lp.Limit):
            return lp.Limit(self._prune(node.child, needed), node.count)

        if isinstance(node, lp.Distinct):
            return lp.Distinct(self._prune(node.child, needed))

        if isinstance(node, lp.Join):
            left_schema = self.schema_of(node.left)
            right_schema = self.schema_of(node.right)
            predicate_columns = (
                _resolve_all(
                    node.predicate.referenced_columns(), left_schema + right_schema
                )
                if node.predicate is not None
                else []
            )
            wanted = _merge_required(needed, predicate_columns)
            left_required = [c for c in wanted if c in set(left_schema)]
            right_required = [c for c in wanted if c in set(right_schema)]
            left = self._prune(node.left, left_required or [left_schema[0]])
            right = self._prune(node.right, right_required or [right_schema[0]])
            joined = lp.Join(left, right, node.predicate, node.outer)
            produced = (left_required or [left_schema[0]]) + (
                right_required or [right_schema[0]]
            )
            return self._wrap(joined, produced, needed)

        if isinstance(node, lp.GroupBy):
            child_schema = self.schema_of(node.child)
            child_required = [
                child_schema[resolve_column(child_schema, key)] for key in node.keys
            ]
            for aggregate in node.aggregates:
                if aggregate.argument is not None:
                    child_required.append(
                        child_schema[
                            resolve_column(child_schema, aggregate.argument.name)
                        ]
                    )
            child_required = list(dict.fromkeys(child_required))
            child = self._prune(node.child, child_required or [child_schema[0]])
            grouped = lp.GroupBy(child, node.keys, node.aggregates, node.having)
            return self._wrap(grouped, self.schema_of(grouped), needed)

        if isinstance(node, lp.Union):
            left_schema = self.schema_of(node.left)
            right_schema = self.schema_of(node.right)
            positions = [left_schema.index(name) for name in needed]
            left = self._prune(node.left, [left_schema[i] for i in positions])
            right = self._prune(node.right, [right_schema[i] for i in positions])
            union: lp.PlanNode = lp.Union(left, right, node.distinct)
            if node.distinct:
                union = lp.Distinct(lp.Union(left, right, False))
            return union

        raise PlanError(f"cannot normalize {type(node).__name__}")

    def _wrap(
        self,
        node: lp.PlanNode,
        produced: Sequence[str],
        needed: Sequence[str],
    ) -> lp.PlanNode:
        """Project ``node`` down to ``needed`` unless it already matches."""
        if tuple(produced) == tuple(needed):
            return node
        return lp.Project(node, tuple(needed))

    # -- physical lowering -----------------------------------------------

    def prepare(self, node: lp.PlanNode) -> lp.PlanNode:
        """Apply the configured rewrites to a logical plan."""
        if self.push_selections:
            node = self.push_down_selections(node)
        if self.normalize_plans:
            node = self.normalize(node)
        return node

    def physical(
        self, node: lp.PlanNode, tracer: Tracer | None = None
    ) -> Operator:
        """Lower a (prepared) logical plan to a physical operator tree."""
        if isinstance(node, lp.Scan):
            return ScanOperator(
                self._db,
                self._annotations,
                self._catalog,
                node.table,
                node.alias,
                manager=self._manager,
                instances=node.instances,
                tracer=tracer,
                block_size=self.scan_block_size,
            )
        if isinstance(node, lp.Select):
            return SelectOperator(
                self.physical(node.child, tracer), node.predicate, tracer=tracer
            )
        if isinstance(node, lp.Project):
            return ProjectOperator(
                self.physical(node.child, tracer), node.columns, tracer=tracer
            )
        if isinstance(node, lp.Compute):
            return ComputeOperator(
                self.physical(node.child, tracer), node.items, tracer=tracer
            )
        if isinstance(node, lp.Join):
            return JoinOperator(
                self.physical(node.left, tracer),
                self.physical(node.right, tracer),
                node.predicate,
                outer=node.outer,
                tracer=tracer,
            )
        if isinstance(node, lp.GroupBy):
            return GroupByOperator(
                self.physical(node.child, tracer),
                node.keys,
                node.aggregates,
                having=node.having,
                tracer=tracer,
            )
        if isinstance(node, lp.Distinct):
            return DistinctOperator(self.physical(node.child, tracer), tracer=tracer)
        if isinstance(node, lp.Sort):
            return SortOperator(
                self.physical(node.child, tracer),
                node.keys,
                node.descending,
                tracer=tracer,
            )
        if isinstance(node, lp.Limit):
            return LimitOperator(
                self.physical(node.child, tracer), node.count, tracer=tracer
            )
        if isinstance(node, lp.Union):
            operator: Operator = UnionOperator(
                self.physical(node.left, tracer),
                self.physical(node.right, tracer),
                tracer=tracer,
            )
            if node.distinct:
                operator = DistinctOperator(operator, tracer=tracer)
            return operator
        raise PlanError(f"cannot lower {type(node).__name__}")


def _split_conjuncts(predicate: Expression) -> list[Expression]:
    """Flatten nested top-level ANDs into a conjunct list."""
    if isinstance(predicate, BooleanOp) and predicate.op == "and":
        conjuncts: list[Expression] = []
        for operand in predicate.operands:
            conjuncts.extend(_split_conjuncts(operand))
        return conjuncts
    return [predicate]


def _all_resolvable(columns: set[str], schema: tuple[str, ...]) -> bool:
    """True when every referenced column resolves against ``schema``."""
    for name in columns:
        try:
            resolve_column(schema, name)
        except Exception:
            return False
    return True


def _resolve_all(columns: set[str], schema: tuple[str, ...]) -> list[str]:
    """Resolve referenced names to qualified schema columns, sorted."""
    return sorted(schema[resolve_column(schema, name)] for name in columns)


def _merge_required(base: Sequence[str], extra: Sequence[str]) -> list[str]:
    """Union two required-column lists, keeping first-seen order."""
    return list(dict.fromkeys([*base, *extra]))


def _rebuild_with_children(
    node: lp.PlanNode, children: tuple[lp.PlanNode, ...]
) -> lp.PlanNode:
    """Clone a logical node with replaced children."""
    if isinstance(node, lp.Scan):
        return node
    if isinstance(node, lp.Select):
        return lp.Select(children[0], node.predicate)
    if isinstance(node, lp.Project):
        return lp.Project(children[0], node.columns)
    if isinstance(node, lp.Compute):
        return lp.Compute(children[0], node.items)
    if isinstance(node, lp.Join):
        return lp.Join(children[0], children[1], node.predicate, node.outer)
    if isinstance(node, lp.GroupBy):
        return lp.GroupBy(children[0], node.keys, node.aggregates, node.having)
    if isinstance(node, lp.Distinct):
        return lp.Distinct(children[0])
    if isinstance(node, lp.Sort):
        return lp.Sort(children[0], node.keys, node.descending)
    if isinstance(node, lp.Limit):
        return lp.Limit(children[0], node.count)
    if isinstance(node, lp.Union):
        return lp.Union(children[0], children[1], node.distinct)
    raise PlanError(f"cannot rebuild {type(node).__name__}")
