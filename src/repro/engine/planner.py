"""Logical-plan construction, normalization, and physical lowering.

The planner owns the rewrite that makes summary propagation *plan
invariant*.  Theorems 1 and 2 of the engine paper [30] show that equivalent
relational plans produce identical annotation summaries **iff** un-needed
annotations are projected out before any merge operation (join, grouping,
duplicate elimination).  :meth:`Planner.normalize` enforces this by
computing the columns each subtree must supply (top-down) and inserting
projections so no merge ever sees a column — and therefore an annotation —
that the rest of the plan does not need.

The planner also pushes single-relation WHERE conjuncts below joins and
turns join-condition conjuncts into join predicates (enabling the hash
join); these rewrites move whole tuples, never individual annotations, so
they are summary-neutral.

Set ``normalize=False`` to lower plans as written — the EXP-QP3 ablation
uses this to demonstrate that merge-before-project plans can disagree.
"""

from __future__ import annotations

import dataclasses
import itertools
from collections.abc import Iterator, Sequence
from typing import TYPE_CHECKING

from repro.engine import plan as lp
from repro.engine.cost import CatalogStatistics, CostModel, PlannerCounters
from repro.engine.expressions import (
    BooleanOp,
    Expression,
    ExpressionError,
    conjunction,
    resolve_column,
    uses_summaries,
)
from repro.engine.operators import (
    DEFAULT_SCAN_BLOCK_SIZE,
    ComputeOperator,
    DistinctOperator,
    ExecutionStats,
    GroupByOperator,
    HydrateOperator,
    JoinOperator,
    LimitOperator,
    Operator,
    ProjectOperator,
    ScanOperator,
    SelectOperator,
    SortOperator,
    StorageAggregateOperator,
    Tracer,
    UnionOperator,
)
from repro.engine.pushdown import compile_conjuncts
from repro.errors import PlanError

#: Join regions up to this many relations are ordered by exhaustive
#: enumeration; larger regions fall back to a greedy cheapest-next order.
MAX_EXHAUSTIVE_JOIN_LEAVES = 5

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.maintenance.incremental import SummaryManager
    from repro.storage.annotations import AnnotationStore
    from repro.storage.catalog import SummaryCatalog
    from repro.storage.database import Database


class Planner:
    """Turns logical plans into summary-aware physical pipelines."""

    def __init__(
        self,
        database: "Database",
        annotations: "AnnotationStore",
        catalog: "SummaryCatalog",
        manager: "SummaryManager | None" = None,
        normalize: bool = True,
        push_selections: bool = True,
        scan_block_size: int = DEFAULT_SCAN_BLOCK_SIZE,
        pushdown: bool = True,
        workers: int = 1,
        cost_planner: bool = False,
        statistics: CatalogStatistics | None = None,
    ) -> None:
        self._db = database
        self._annotations = annotations
        self._catalog = catalog
        self._manager = manager
        self.normalize_plans = normalize
        self.push_selections = push_selections
        #: Cost-driven rewrites (join order, hydrate placement, storage
        #: aggregation).  Off by default here — the session turns it on —
        #: so directly-constructed planners keep the rule-based behaviour.
        self.cost_planner = cost_planner
        self._statistics = statistics
        self.counters = PlannerCounters()
        #: Storage-level pushdown + lazy hydration.  When off, sargable
        #: predicates stay in memory and every scanned row is hydrated
        #: eagerly — the pre-pushdown engine, kept for comparison
        #: benchmarks and equivalence testing.
        self.pushdown = pushdown
        if scan_block_size < 1:
            raise ValueError(
                f"scan_block_size must be >= 1, got {scan_block_size}"
            )
        self.scan_block_size = scan_block_size
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        #: Hydration fan-out: block fetches run on up to this many
        #: pooled read connections (1 = today's serial pipeline).
        self.workers = workers

    # -- schema inference ---------------------------------------------

    def schema_of(self, node: lp.PlanNode) -> tuple[str, ...]:
        """Qualified output schema of a logical node."""
        if isinstance(node, lp.Scan):
            return tuple(
                f"{node.alias}.{column}" for column in self._db.columns(node.table)
            )
        if isinstance(node, (lp.Select, lp.Sort, lp.Limit, lp.Distinct, lp.Hydrate)):
            return self.schema_of(node.children()[0])
        if isinstance(node, lp.Project):
            child_schema = self.schema_of(node.child)
            return tuple(
                child_schema[resolve_column(child_schema, name)]
                for name in node.columns
            )
        if isinstance(node, lp.Compute):
            return tuple(name for _, name in node.items)
        if isinstance(node, lp.Join):
            return self.schema_of(node.left) + self.schema_of(node.right)
        if isinstance(node, lp.GroupBy):
            child_schema = self.schema_of(node.child)
            keys = tuple(
                child_schema[resolve_column(child_schema, key)] for key in node.keys
            )
            aggs = tuple(
                self._canonical_aggregate_name(aggregate, child_schema)
                for aggregate in node.aggregates
            )
            return keys + aggs
        if isinstance(node, lp.Union):
            return self.schema_of(node.left)
        if isinstance(node, lp.StorageAggregate):
            return node.output_keys + node.output_aggregates
        raise PlanError(f"cannot infer schema of {type(node).__name__}")

    @property
    def cost_model(self) -> CostModel:
        """A cost model over the planner's statistics (cheap to build)."""
        return CostModel(self._statistics, self.schema_of)

    @staticmethod
    def _canonical_aggregate_name(
        aggregate: lp.Aggregate, child_schema: tuple[str, ...]
    ) -> str:
        if aggregate.argument is None:
            return "count(*)"
        index = resolve_column(child_schema, aggregate.argument.name)
        return f"{aggregate.function}({child_schema[index]})"

    # -- selection pushdown -------------------------------------------

    def push_down_selections(self, node: lp.PlanNode) -> lp.PlanNode:
        """Push WHERE conjuncts toward their relations.

        A conjunct referencing only one side of a join moves below it; a
        conjunct spanning both sides becomes (part of) the join predicate.
        Tuple-level only — summary propagation is unaffected.
        """
        if isinstance(node, lp.Select):
            child = self.push_down_selections(node.child)
            conjuncts = _split_conjuncts(node.predicate)
            remaining, child = self._sink_conjuncts(conjuncts, child)
            predicate = conjunction(remaining)
            return lp.Select(child, predicate) if predicate is not None else child
        if isinstance(node, lp.Join):
            return lp.Join(
                self.push_down_selections(node.left),
                self.push_down_selections(node.right),
                node.predicate,
                node.outer,
            )
        rebuilt = _rebuild_with_children(
            node, tuple(self.push_down_selections(c) for c in node.children())
        )
        return rebuilt

    def _sink_conjuncts(
        self, conjuncts: list[Expression], node: lp.PlanNode
    ) -> tuple[list[Expression], lp.PlanNode]:
        """Sink as many conjuncts as possible into ``node``; return the rest."""
        if not conjuncts:
            return [], node
        if isinstance(node, lp.Join):
            if node.outer:
                # Sinking predicates past an outer join changes which left
                # tuples survive NULL-padded; keep the selection above it.
                return conjuncts, node
            left_schema = self.schema_of(node.left)
            right_schema = self.schema_of(node.right)
            left_conjuncts: list[Expression] = []
            right_conjuncts: list[Expression] = []
            join_conjuncts: list[Expression] = []
            remaining: list[Expression] = []
            for conjunct in conjuncts:
                columns = conjunct.referenced_columns()
                if not columns:
                    remaining.append(conjunct)
                elif _all_resolvable(columns, left_schema):
                    left_conjuncts.append(conjunct)
                elif _all_resolvable(columns, right_schema):
                    right_conjuncts.append(conjunct)
                elif _all_resolvable(columns, left_schema + right_schema):
                    join_conjuncts.append(conjunct)
                else:
                    remaining.append(conjunct)
            _, left = self._sink_conjuncts(left_conjuncts, node.left)
            _, right = self._sink_conjuncts(right_conjuncts, node.right)
            predicate_parts = join_conjuncts
            if node.predicate is not None:
                predicate_parts = _split_conjuncts(node.predicate) + join_conjuncts
            return remaining, lp.Join(left, right, conjunction(predicate_parts))
        if isinstance(node, (lp.Select, lp.Scan, lp.Project)):
            predicate = conjunction(conjuncts)
            assert predicate is not None
            return [], lp.Select(node, predicate)
        # Other operators: keep the selection above them.
        return conjuncts, node

    # -- Theorems 1-2 normalization ----------------------------------

    def normalize(self, node: lp.PlanNode) -> lp.PlanNode:
        """Insert projections so merges never see un-needed columns."""
        required = list(self.schema_of(node))
        return self._prune(node, required)

    def _prune(self, node: lp.PlanNode, required: Sequence[str]) -> lp.PlanNode:
        """Rewrite ``node`` to output exactly ``required`` (in order)."""
        schema = self.schema_of(node)
        needed = list(dict.fromkeys(required)) or [schema[0]]

        if isinstance(node, lp.Scan):
            return self._wrap(node, schema, needed)

        if isinstance(node, lp.Project):
            # The projection collapses into the pruning itself.
            return self._prune(node.child, needed)

        if isinstance(node, lp.Compute):
            kept = [
                (expression, name)
                for expression, name in node.items
                if name in set(needed)
            ] or [node.items[0]]
            child_schema = self.schema_of(node.child)
            child_required: list[str] = []
            for expression, _name in kept:
                child_required.extend(
                    _resolve_all(expression.referenced_columns(), child_schema)
                )
            child_required = list(dict.fromkeys(child_required))
            child = self._prune(node.child, child_required or [child_schema[0]])
            computed = lp.Compute(child, tuple(kept))
            return self._wrap(
                computed, [name for _, name in kept], needed
            )

        if isinstance(node, lp.Select):
            child_schema = self.schema_of(node.child)
            child_required = _merge_required(
                needed, _resolve_all(node.predicate.referenced_columns(), child_schema)
            )
            child = self._prune(node.child, child_required)
            return self._wrap(lp.Select(child, node.predicate), child_required, needed)

        if isinstance(node, lp.Sort):
            child_schema = self.schema_of(node.child)
            key_columns: list[str] = []
            for key in node.keys:
                key_columns.extend(
                    _resolve_all(key.referenced_columns(), child_schema)
                )
            child_required = _merge_required(needed, key_columns)
            child = self._prune(node.child, child_required)
            return self._wrap(
                lp.Sort(child, node.keys, node.descending), child_required, needed
            )

        if isinstance(node, lp.Limit):
            return lp.Limit(self._prune(node.child, needed), node.count)

        if isinstance(node, lp.Distinct):
            return lp.Distinct(self._prune(node.child, needed))

        if isinstance(node, lp.Join):
            left_schema = self.schema_of(node.left)
            right_schema = self.schema_of(node.right)
            predicate_columns = (
                _resolve_all(
                    node.predicate.referenced_columns(), left_schema + right_schema
                )
                if node.predicate is not None
                else []
            )
            wanted = _merge_required(needed, predicate_columns)
            left_required = [c for c in wanted if c in set(left_schema)]
            right_required = [c for c in wanted if c in set(right_schema)]
            left = self._prune(node.left, left_required or [left_schema[0]])
            right = self._prune(node.right, right_required or [right_schema[0]])
            joined = lp.Join(left, right, node.predicate, node.outer)
            produced = (left_required or [left_schema[0]]) + (
                right_required or [right_schema[0]]
            )
            return self._wrap(joined, produced, needed)

        if isinstance(node, lp.GroupBy):
            child_schema = self.schema_of(node.child)
            child_required = [
                child_schema[resolve_column(child_schema, key)] for key in node.keys
            ]
            for aggregate in node.aggregates:
                if aggregate.argument is not None:
                    child_required.append(
                        child_schema[
                            resolve_column(child_schema, aggregate.argument.name)
                        ]
                    )
            child_required = list(dict.fromkeys(child_required))
            child = self._prune(node.child, child_required or [child_schema[0]])
            grouped = lp.GroupBy(child, node.keys, node.aggregates, node.having)
            return self._wrap(grouped, self.schema_of(grouped), needed)

        if isinstance(node, lp.Union):
            left_schema = self.schema_of(node.left)
            right_schema = self.schema_of(node.right)
            positions = [left_schema.index(name) for name in needed]
            left = self._prune(node.left, [left_schema[i] for i in positions])
            right = self._prune(node.right, [right_schema[i] for i in positions])
            union: lp.PlanNode = lp.Union(left, right, node.distinct)
            if node.distinct:
                union = lp.Distinct(lp.Union(left, right, False))
            return union

        raise PlanError(f"cannot normalize {type(node).__name__}")

    def _wrap(
        self,
        node: lp.PlanNode,
        produced: Sequence[str],
        needed: Sequence[str],
    ) -> lp.PlanNode:
        """Project ``node`` down to ``needed`` unless it already matches."""
        if tuple(produced) == tuple(needed):
            return node
        return lp.Project(node, tuple(needed))

    # -- cost-driven join ordering ------------------------------------

    def reorder_joins(self, node: lp.PlanNode) -> lp.PlanNode:
        """Pick the cheapest join order for each inner-join region.

        A *region* is a maximal tree of non-outer joins; its leaves and
        the pooled join-predicate conjuncts are order-independent, so
        any left-deep chain over the same leaves is tuple-equivalent,
        and (post-normalization, Theorems 1–2) summary-equivalent too.
        Outer joins are barriers — their operand order is semantic —
        but their subtrees still reorder internally.  The original tree
        always competes as a candidate, so a region is only rewritten
        when the model prices an alternative strictly cheaper.
        """
        if isinstance(node, lp.Join) and not node.outer:
            leaves, conjuncts = self._collect_join_region(node)
            leaves = [self.reorder_joins(leaf) for leaf in leaves]
            return self._order_join_region(node, leaves, conjuncts)
        return _rebuild_with_children(
            node, tuple(self.reorder_joins(c) for c in node.children())
        )

    def _collect_join_region(
        self, node: lp.PlanNode
    ) -> tuple[list[lp.PlanNode], list[Expression]]:
        """Flatten a region into its leaf subtrees + pooled conjuncts."""
        leaves: list[lp.PlanNode] = []
        conjuncts: list[Expression] = []

        def visit(current: lp.PlanNode) -> None:
            if isinstance(current, lp.Join) and not current.outer:
                if current.predicate is not None:
                    conjuncts.extend(_split_conjuncts(current.predicate))
                visit(current.left)
                visit(current.right)
            else:
                leaves.append(current)

        visit(node)
        return leaves, conjuncts

    def _order_join_region(
        self,
        original: lp.PlanNode,
        leaves: list[lp.PlanNode],
        conjuncts: list[Expression],
    ) -> lp.PlanNode:
        model = self.cost_model
        original_schema = self.schema_of(original)
        best = _rebuild_region(original, leaves)
        best_cost = model.estimate(best).cost
        orders = self._candidate_orders(leaves, conjuncts, model)
        self.counters.record("join_orders_considered", len(orders))
        rewritten = False
        for order in orders:
            candidate = self._build_join_chain(leaves, order, conjuncts)
            if candidate is None:
                continue
            cost = model.estimate(candidate).cost
            if cost < best_cost:
                best, best_cost, rewritten = candidate, cost, True
        if not rewritten:
            return best
        self.counters.record("join_orders_rewritten")
        # Restore the original column order; normalization collapses
        # this projection into its own pruning.
        return lp.Project(best, original_schema)

    def _candidate_orders(
        self,
        leaves: list[lp.PlanNode],
        conjuncts: list[Expression],
        model: CostModel,
    ) -> list[tuple[int, ...]]:
        indices = tuple(range(len(leaves)))
        if len(leaves) < 2:
            return []
        if len(leaves) <= MAX_EXHAUSTIVE_JOIN_LEAVES:
            return list(itertools.permutations(indices))
        return [indices, self._greedy_order(leaves, conjuncts, model)]

    def _greedy_order(
        self,
        leaves: list[lp.PlanNode],
        conjuncts: list[Expression],
        model: CostModel,
    ) -> tuple[int, ...]:
        """Cheapest-next heuristic for regions too wide to enumerate."""
        remaining = list(range(len(leaves)))
        start = min(remaining, key=lambda i: model.estimate(leaves[i]).rows)
        order = [start]
        remaining.remove(start)
        while remaining:
            scored: list[tuple[float, int]] = []
            for candidate in remaining:
                chain = self._build_join_chain(
                    leaves, tuple(order + [candidate]), conjuncts
                )
                cost = (
                    model.estimate(chain).cost
                    if chain is not None
                    else float("inf")
                )
                scored.append((cost, candidate))
            _, chosen = min(scored)
            order.append(chosen)
            remaining.remove(chosen)
        return tuple(order)

    def _build_join_chain(
        self,
        leaves: list[lp.PlanNode],
        order: tuple[int, ...],
        conjuncts: list[Expression],
    ) -> lp.PlanNode | None:
        """Left-deep chain over ``leaves`` in ``order``.

        Each pooled conjunct attaches to the first join where it fully
        resolves; joins with no applicable conjunct become crosses (the
        cost model prices them accordingly).  When building a prefix
        (greedy scoring), unplaced conjuncts are simply left off.
        """
        current = leaves[order[0]]
        schema = self.schema_of(current)
        remaining = list(range(len(conjuncts)))
        for index in order[1:]:
            leaf = leaves[index]
            combined = schema + self.schema_of(leaf)
            applicable = [
                i
                for i in remaining
                if _all_resolvable(
                    conjuncts[i].referenced_columns(), combined
                )
            ]
            remaining = [i for i in remaining if i not in applicable]
            predicate = conjunction([conjuncts[i] for i in applicable])
            current = lp.Join(current, leaf, predicate)
            schema = combined
        if remaining and len(order) == len(leaves):
            # A conjunct that resolves nowhere (shouldn't happen for a
            # well-formed region) keeps its tuple semantics as a
            # selection above the chain.
            predicate = conjunction([conjuncts[i] for i in remaining])
            assert predicate is not None
            current = lp.Select(current, predicate)
        return current

    # -- cost-driven aggregation pushdown -----------------------------

    def push_down_aggregates(self, node: lp.PlanNode) -> lp.PlanNode:
        """Lower GROUP BY / DISTINCT over summary-free scans to storage.

        Gated three ways to preserve Theorem 1–2 equivalence and result
        bytes: the scanned table must be provably summary-free (no
        linked instances, no attachments — grouping then merges nothing),
        the backend single-shard (GROUP_CONCAT/AVG don't merge across
        partial aggregates), and the lowering strictly cheaper under the
        cost model.
        """
        rebuilt = _rebuild_with_children(
            node, tuple(self.push_down_aggregates(c) for c in node.children())
        )
        if isinstance(rebuilt, lp.GroupBy):
            lowered = self._lower_aggregate(
                rebuilt.child, rebuilt.keys, rebuilt.aggregates, distinct=False
            )
            if lowered is not None and self._cheaper(lowered, rebuilt):
                self.counters.record("aggregates_pushed")
                if rebuilt.having is not None:
                    return lp.Select(lowered, rebuilt.having)
                return lowered
        if isinstance(rebuilt, lp.Distinct):
            keys = self.schema_of(rebuilt.child)
            lowered = self._lower_aggregate(
                rebuilt.child, keys, (), distinct=True
            )
            if lowered is not None and self._cheaper(lowered, rebuilt):
                self.counters.record("distincts_pushed")
                return lowered
        return rebuilt

    def _cheaper(self, candidate: lp.PlanNode, baseline: lp.PlanNode) -> bool:
        model = self.cost_model
        return model.estimate(candidate).cost < model.estimate(baseline).cost

    def _lower_aggregate(
        self,
        child: lp.PlanNode,
        keys: Sequence[str],
        aggregates: Sequence[lp.Aggregate],
        distinct: bool,
    ) -> lp.StorageAggregate | None:
        """A StorageAggregate equivalent to grouping ``child``, or None."""
        if self._db.shard_count != 1:
            return None
        scan = _scan_under_projects(child)
        if scan is None or scan.storage_limit is not None:
            return None
        if not self._summary_free(scan):
            return None
        child_schema = self.schema_of(child)
        table_columns = set(self._db.columns(scan.table))
        key_columns: list[str] = []
        output_keys: list[str] = []
        for key in keys:
            column = self._storage_column(
                key, child_schema, scan, table_columns
            )
            if column is None:
                return None
            key_columns.append(column[0])
            output_keys.append(column[1])
        aggregate_pairs: list[tuple[str, str | None]] = []
        output_aggregates: list[str] = []
        for aggregate in aggregates:
            if aggregate.argument is None:
                aggregate_pairs.append(("count", None))
                output_aggregates.append("count(*)")
                continue
            column = self._storage_column(
                aggregate.argument.name, child_schema, scan, table_columns
            )
            if column is None:
                return None
            aggregate_pairs.append((aggregate.function, column[0]))
            output_aggregates.append(f"{aggregate.function}({column[1]})")
        return lp.StorageAggregate(
            scan.table,
            scan.alias,
            tuple(key_columns),
            tuple(output_keys),
            tuple(aggregate_pairs),
            tuple(output_aggregates),
            scan.storage_filter,
            distinct,
        )

    def _storage_column(
        self,
        name: str,
        child_schema: tuple[str, ...],
        scan: lp.Scan,
        table_columns: set[str],
    ) -> tuple[str, str] | None:
        """Map a referenced column to ``(storage_name, qualified_name)``."""
        try:
            qualified = child_schema[resolve_column(child_schema, name)]
        except ExpressionError:
            return None
        alias, _, column = qualified.rpartition(".")
        if alias != scan.alias or column not in table_columns:
            return None
        return column, qualified

    def _summary_free(self, scan: lp.Scan) -> bool:
        """True when hydrating ``scan`` would contribute nothing.

        WITH NO SUMMARIES scans skip hydration outright; otherwise the
        table must have neither linked summary instances nor annotation
        attachments — then grouped tuples carry no summaries and no
        attachments, and merge order cannot matter.
        """
        if scan.instances == ():
            return True
        if self._catalog.instances_for_table(scan.table):
            return False
        return not self._annotations.table_has_attachments(scan.table)

    # -- storage pushdown ---------------------------------------------

    def push_into_storage(self, node: lp.PlanNode) -> lp.PlanNode:
        """Compile sargable conjuncts into the scan's storage filter.

        A selection sitting above a scan (possibly through normalization's
        projections) has its sargable conjuncts — comparisons, IN lists,
        NULL tests over data columns with literal operands (see
        :mod:`repro.engine.pushdown`) — compiled to a parameterized SQL
        WHERE executed inside :meth:`Database.scan`.  Non-sargable
        conjuncts stay behind as an in-memory residual selection.
        """
        if isinstance(node, lp.Select):
            child = self.push_into_storage(node.child)
            scan = _scan_under_projects(child)
            if scan is not None:
                table_columns = self._db.columns(scan.table)
                scan_schema = tuple(
                    f"{scan.alias}.{column}" for column in table_columns
                )
                pushed, residual = compile_conjuncts(
                    _split_conjuncts(node.predicate), scan_schema, table_columns
                )
                if pushed is not None:
                    merged = (
                        scan.storage_filter.merge(pushed)
                        if scan.storage_filter is not None
                        else pushed
                    )
                    child = _replace_scan(
                        child, dataclasses.replace(scan, storage_filter=merged)
                    )
                    predicate = conjunction(residual)
                    if predicate is None:
                        return child
                    return lp.Select(child, predicate)
            return lp.Select(child, node.predicate)
        rebuilt = _rebuild_with_children(
            node, tuple(self.push_into_storage(c) for c in node.children())
        )
        # A fully-pushed selection can leave two adjacent projections
        # (normalization put one on each side of it); compose them.
        if isinstance(rebuilt, lp.Project) and isinstance(rebuilt.child, lp.Project):
            inner = rebuilt.child
            inner_schema = self.schema_of(inner)
            composed = tuple(
                inner.columns[resolve_column(inner_schema, name)]
                for name in rebuilt.columns
            )
            return lp.Project(inner.child, composed)
        return rebuilt

    def push_down_limits(self, node: lp.PlanNode) -> lp.PlanNode:
        """Push LIMIT into the storage statement where order-safe.

        A limit descends through row-count-preserving, order-preserving
        nodes (Project, Compute, nested Limit) onto the scan; Sort,
        residual Select, Distinct, GroupBy, and Join block it.  The
        in-memory Limit stays as the authoritative cap.
        """
        node = _rebuild_with_children(
            node, tuple(self.push_down_limits(c) for c in node.children())
        )
        if isinstance(node, lp.Limit):
            sunk = self._sink_limit(node.child, node.count)
            if sunk is not None:
                return lp.Limit(sunk, node.count)
        return node

    def _sink_limit(self, node: lp.PlanNode, count: int) -> lp.PlanNode | None:
        if isinstance(node, lp.Scan):
            limit = (
                count
                if node.storage_limit is None
                else min(node.storage_limit, count)
            )
            return dataclasses.replace(node, storage_limit=limit)
        if isinstance(node, (lp.Project, lp.Compute, lp.Limit)):
            child = self._sink_limit(node.children()[0], count)
            if child is None:
                return None
            return _rebuild_with_children(node, (child,))
        return None

    # -- lazy hydration -----------------------------------------------

    def insert_hydration(self, node: lp.PlanNode) -> lp.PlanNode:
        """Place Hydrate operators over every scan's surviving rows.

        With pushdown on, each scan's pass-through chain (residual
        selection, projections, limit, value-only sort) runs on plain
        tuples and Hydrate sits at the chain's top — directly below the
        first operator that consumes summaries (compute/join/group-by/
        distinct/union/output) — so only surviving rows are hydrated.
        With pushdown off, Hydrate sits eagerly above each scan,
        reproducing the old hydrate-at-scan pipeline.
        """
        if not self.pushdown:
            return self._hydrate_eager(node)
        return self._hydrate_subtree(node)

    def _hydrate_eager(self, node: lp.PlanNode) -> lp.PlanNode:
        if isinstance(node, lp.Scan):
            return self._wrap_hydrate(node, node, eager=True)
        return _rebuild_with_children(
            node, tuple(self._hydrate_eager(c) for c in node.children())
        )

    @staticmethod
    def _wrap_hydrate(
        node: lp.PlanNode, scan: lp.Scan, eager: bool = False
    ) -> lp.PlanNode:
        if scan.instances == ():
            # WITH NO SUMMARIES: plain relational processing, nothing to
            # hydrate (no attachment bookkeeping either).
            return node
        return lp.Hydrate(node, scan.table, scan.alias, scan.instances, eager)

    def _hydrate_subtree(self, node: lp.PlanNode) -> lp.PlanNode:
        rewritten, scan = self._hydrate_chain(node)
        if scan is not None:
            return self._wrap_hydrate(rewritten, scan)
        return rewritten

    def _hydrate_chain(
        self, node: lp.PlanNode
    ) -> tuple[lp.PlanNode, lp.Scan | None]:
        """Rewrite ``node``; the scan is non-None while ``node`` heads an
        un-hydrated pass-through chain whose caller must hydrate."""
        if isinstance(node, lp.Scan):
            return node, node
        if isinstance(node, lp.Select) and not uses_summaries(node.predicate):
            child, scan = self._hydrate_chain(node.child)
            return lp.Select(child, node.predicate), scan
        if isinstance(node, lp.Project):
            child, scan = self._hydrate_chain(node.child)
            return lp.Project(child, node.columns), scan
        if isinstance(node, lp.Limit):
            child, scan = self._hydrate_chain(node.child)
            return lp.Limit(child, node.count), scan
        if isinstance(node, lp.Sort) and not any(
            uses_summaries(key) for key in node.keys
        ):
            child, scan = self._hydrate_chain(node.child)
            return lp.Sort(child, node.keys, node.descending), scan
        if (
            isinstance(node, lp.Select)
            and self.cost_planner
            and self.normalize_plans
        ):
            split = self._split_residual_select(node)
            if split is not None:
                return split, None
        # Barrier (merge or summary-consuming node): hydrate each child
        # subtree at its own top.
        children = tuple(self._hydrate_subtree(c) for c in node.children())
        return _rebuild_with_children(node, children), None

    def _split_residual_select(self, node: lp.Select) -> lp.PlanNode | None:
        """Cost-driven hydrate placement for mixed residual selections.

        A selection mixing value-only and summary-function conjuncts is
        a hydration barrier under the fixed rules: every row below it
        hydrates.  Splitting it evaluates the value-only conjuncts on
        plain tuples first and hydrates only the survivors — identical
        rows, identical order (Select preserves order), identical
        summaries (hydration commutes with value-only filtering) — so
        the flip is taken whenever the model prices the saved hydration
        above zero.
        """
        conjuncts = _split_conjuncts(node.predicate)
        value_conjuncts = [c for c in conjuncts if not uses_summaries(c)]
        summary_conjuncts = [c for c in conjuncts if uses_summaries(c)]
        if not value_conjuncts or not summary_conjuncts:
            return None
        value_predicate = conjunction(value_conjuncts)
        summary_predicate = conjunction(summary_conjuncts)
        assert value_predicate is not None and summary_predicate is not None
        inner = lp.Select(node.child, value_predicate)
        rewritten, scan = self._hydrate_chain(inner)
        if scan is None:
            return None  # no chain below: the plain barrier is as good
        model = self.cost_model
        child_rows = model.estimate(node.child).rows
        survivors = model.filter_selectivity(value_predicate, node.child)
        saved = (
            child_rows
            * (1.0 - survivors)
            * model.hydration_cost_per_row(scan.table, scan.instances)
        )
        if saved <= 0.0:
            return None
        self.counters.record("hydrate_placements_flipped")
        hydrated = self._wrap_hydrate(rewritten, scan)
        return lp.Select(hydrated, summary_predicate)

    # -- physical lowering -----------------------------------------------

    def prepare(self, node: lp.PlanNode, hydrate: bool = True) -> lp.PlanNode:
        """Apply the configured rewrites to a logical plan.

        ``hydrate=False`` skips hydration entirely — used for plans whose
        consumers only read values (uncorrelated IN-subqueries with no
        summary functions).
        """
        if self.push_selections:
            node = self.push_down_selections(node)
        # Cost rewrites are gated on normalization: Theorems 1-2 make
        # the alternatives summary-equivalent only with project-out
        # before merge in force.
        cost_rewrites = self.cost_planner and self.normalize_plans
        if cost_rewrites:
            node = self.reorder_joins(node)
        if self.normalize_plans:
            node = self.normalize(node)
        if self.pushdown:
            node = self.push_into_storage(node)
            node = self.push_down_limits(node)
            if cost_rewrites:
                node = self.push_down_aggregates(node)
        if hydrate:
            node = self.insert_hydration(node)
        if self.cost_planner:
            self.counters.record("plans_costed")
        return node

    def physical(
        self,
        node: lp.PlanNode,
        tracer: Tracer | None = None,
        stats: ExecutionStats | None = None,
    ) -> Operator:
        """Lower a (prepared) logical plan to a physical operator tree."""
        if isinstance(node, lp.Scan):
            return ScanOperator(
                self._db,
                node.table,
                node.alias,
                tracer=tracer,
                storage_filter=node.storage_filter,
                storage_limit=node.storage_limit,
                stats=stats,
            )
        if isinstance(node, lp.Hydrate):
            return HydrateOperator(
                self.physical(node.child, tracer, stats),
                self._annotations,
                self._catalog,
                node.table,
                node.alias,
                manager=self._manager,
                instances=node.instances,
                tracer=tracer,
                block_size=self.scan_block_size,
                eager=node.eager,
                stats=stats,
                workers=self.workers,
            )
        if isinstance(node, lp.Select):
            return SelectOperator(
                self.physical(node.child, tracer, stats),
                node.predicate,
                tracer=tracer,
            )
        if isinstance(node, lp.Project):
            return ProjectOperator(
                self.physical(node.child, tracer, stats),
                node.columns,
                tracer=tracer,
            )
        if isinstance(node, lp.Compute):
            return ComputeOperator(
                self.physical(node.child, tracer, stats), node.items, tracer=tracer
            )
        if isinstance(node, lp.Join):
            return JoinOperator(
                self.physical(node.left, tracer, stats),
                self.physical(node.right, tracer, stats),
                node.predicate,
                outer=node.outer,
                tracer=tracer,
            )
        if isinstance(node, lp.GroupBy):
            return GroupByOperator(
                self.physical(node.child, tracer, stats),
                node.keys,
                node.aggregates,
                having=node.having,
                tracer=tracer,
            )
        if isinstance(node, lp.Distinct):
            return DistinctOperator(
                self.physical(node.child, tracer, stats), tracer=tracer
            )
        if isinstance(node, lp.StorageAggregate):
            return StorageAggregateOperator(
                self._db,
                node.table,
                node.alias,
                node.key_columns,
                node.output_keys,
                node.aggregates,
                node.output_aggregates,
                storage_filter=node.storage_filter,
                distinct=node.distinct,
                tracer=tracer,
                stats=stats,
            )
        if isinstance(node, lp.Sort):
            return SortOperator(
                self.physical(node.child, tracer, stats),
                node.keys,
                node.descending,
                tracer=tracer,
            )
        if isinstance(node, lp.Limit):
            return LimitOperator(
                self.physical(node.child, tracer, stats), node.count, tracer=tracer
            )
        if isinstance(node, lp.Union):
            operator: Operator = UnionOperator(
                self.physical(node.left, tracer, stats),
                self.physical(node.right, tracer, stats),
                tracer=tracer,
            )
            if node.distinct:
                operator = DistinctOperator(operator, tracer=tracer)
            return operator
        raise PlanError(f"cannot lower {type(node).__name__}")


def _split_conjuncts(predicate: Expression) -> list[Expression]:
    """Flatten nested top-level ANDs into a conjunct list."""
    if isinstance(predicate, BooleanOp) and predicate.op == "and":
        conjuncts: list[Expression] = []
        for operand in predicate.operands:
            conjuncts.extend(_split_conjuncts(operand))
        return conjuncts
    return [predicate]


def _all_resolvable(columns: set[str], schema: tuple[str, ...]) -> bool:
    """True when every referenced column resolves against ``schema``."""
    for name in columns:
        try:
            resolve_column(schema, name)
        except Exception:
            return False
    return True


def _resolve_all(columns: set[str], schema: tuple[str, ...]) -> list[str]:
    """Resolve referenced names to qualified schema columns, sorted."""
    return sorted(schema[resolve_column(schema, name)] for name in columns)


def _merge_required(base: Sequence[str], extra: Sequence[str]) -> list[str]:
    """Union two required-column lists, keeping first-seen order."""
    return list(dict.fromkeys([*base, *extra]))


def _rebuild_region(
    node: lp.PlanNode, leaves: Sequence[lp.PlanNode]
) -> lp.PlanNode:
    """Rebuild a join region's original shape over (rewritten) leaves.

    ``leaves`` must be in the region's visit order (the order
    ``_collect_join_region`` produced them in).
    """
    iterator = iter(leaves)

    def rebuild(current: lp.PlanNode) -> lp.PlanNode:
        if isinstance(current, lp.Join) and not current.outer:
            left = rebuild(current.left)
            right = rebuild(current.right)
            return lp.Join(left, right, current.predicate, current.outer)
        return next(iterator)

    return rebuild(node)


def _scan_under_projects(node: lp.PlanNode) -> lp.Scan | None:
    """The scan beneath a (possibly empty) chain of projections, if any.

    Normalization inserts projections between a selection and its scan;
    row identity and column values are unchanged through them, so a
    filter compiled against the scan's full schema applies unmodified.
    """
    while isinstance(node, lp.Project):
        node = node.child
    return node if isinstance(node, lp.Scan) else None


def _replace_scan(node: lp.PlanNode, scan: lp.Scan) -> lp.PlanNode:
    """Swap the scan at the bottom of a projection chain for ``scan``."""
    if isinstance(node, lp.Scan):
        return scan
    assert isinstance(node, lp.Project)
    return lp.Project(_replace_scan(node.child, scan), node.columns)


def _node_expressions(node: lp.PlanNode) -> Iterator[Expression]:
    """Every expression a logical node evaluates."""
    if isinstance(node, lp.Select):
        yield node.predicate
    elif isinstance(node, lp.Compute):
        for expression, _name in node.items:
            yield expression
    elif isinstance(node, lp.Join):
        if node.predicate is not None:
            yield node.predicate
    elif isinstance(node, lp.GroupBy):
        if node.having is not None:
            yield node.having
    elif isinstance(node, lp.Sort):
        yield from node.keys


def plan_uses_summaries(node: lp.PlanNode) -> bool:
    """True when any expression in the plan reads summary objects."""
    return any(
        uses_summaries(expression)
        for n in lp.walk(node)
        for expression in _node_expressions(n)
    )


def _rebuild_with_children(
    node: lp.PlanNode, children: tuple[lp.PlanNode, ...]
) -> lp.PlanNode:
    """Clone a logical node with replaced children."""
    if isinstance(node, lp.Scan):
        return node
    if isinstance(node, lp.Hydrate):
        return lp.Hydrate(
            children[0], node.table, node.alias, node.instances, node.eager
        )
    if isinstance(node, lp.Select):
        return lp.Select(children[0], node.predicate)
    if isinstance(node, lp.Project):
        return lp.Project(children[0], node.columns)
    if isinstance(node, lp.Compute):
        return lp.Compute(children[0], node.items)
    if isinstance(node, lp.Join):
        return lp.Join(children[0], children[1], node.predicate, node.outer)
    if isinstance(node, lp.GroupBy):
        return lp.GroupBy(children[0], node.keys, node.aggregates, node.having)
    if isinstance(node, lp.Distinct):
        return lp.Distinct(children[0])
    if isinstance(node, lp.Sort):
        return lp.Sort(children[0], node.keys, node.descending)
    if isinstance(node, lp.Limit):
        return lp.Limit(children[0], node.count)
    if isinstance(node, lp.Union):
        return lp.Union(children[0], children[1], node.distinct)
    if isinstance(node, lp.StorageAggregate):
        return node
    raise PlanError(f"cannot rebuild {type(node).__name__}")
