"""Logical-plan construction, normalization, and physical lowering.

The planner owns the rewrite that makes summary propagation *plan
invariant*.  Theorems 1 and 2 of the engine paper [30] show that equivalent
relational plans produce identical annotation summaries **iff** un-needed
annotations are projected out before any merge operation (join, grouping,
duplicate elimination).  :meth:`Planner.normalize` enforces this by
computing the columns each subtree must supply (top-down) and inserting
projections so no merge ever sees a column — and therefore an annotation —
that the rest of the plan does not need.

The planner also pushes single-relation WHERE conjuncts below joins and
turns join-condition conjuncts into join predicates (enabling the hash
join); these rewrites move whole tuples, never individual annotations, so
they are summary-neutral.

Set ``normalize=False`` to lower plans as written — the EXP-QP3 ablation
uses this to demonstrate that merge-before-project plans can disagree.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator, Sequence
from typing import TYPE_CHECKING

from repro.engine import plan as lp
from repro.engine.expressions import (
    BooleanOp,
    Expression,
    conjunction,
    resolve_column,
    uses_summaries,
)
from repro.engine.operators import (
    DEFAULT_SCAN_BLOCK_SIZE,
    ComputeOperator,
    DistinctOperator,
    ExecutionStats,
    GroupByOperator,
    HydrateOperator,
    JoinOperator,
    LimitOperator,
    Operator,
    ProjectOperator,
    ScanOperator,
    SelectOperator,
    SortOperator,
    Tracer,
    UnionOperator,
)
from repro.engine.pushdown import compile_conjuncts
from repro.errors import PlanError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.maintenance.incremental import SummaryManager
    from repro.storage.annotations import AnnotationStore
    from repro.storage.catalog import SummaryCatalog
    from repro.storage.database import Database


class Planner:
    """Turns logical plans into summary-aware physical pipelines."""

    def __init__(
        self,
        database: "Database",
        annotations: "AnnotationStore",
        catalog: "SummaryCatalog",
        manager: "SummaryManager | None" = None,
        normalize: bool = True,
        push_selections: bool = True,
        scan_block_size: int = DEFAULT_SCAN_BLOCK_SIZE,
        pushdown: bool = True,
        workers: int = 1,
    ) -> None:
        self._db = database
        self._annotations = annotations
        self._catalog = catalog
        self._manager = manager
        self.normalize_plans = normalize
        self.push_selections = push_selections
        #: Storage-level pushdown + lazy hydration.  When off, sargable
        #: predicates stay in memory and every scanned row is hydrated
        #: eagerly — the pre-pushdown engine, kept for comparison
        #: benchmarks and equivalence testing.
        self.pushdown = pushdown
        if scan_block_size < 1:
            raise ValueError(
                f"scan_block_size must be >= 1, got {scan_block_size}"
            )
        self.scan_block_size = scan_block_size
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        #: Hydration fan-out: block fetches run on up to this many
        #: pooled read connections (1 = today's serial pipeline).
        self.workers = workers

    # -- schema inference ---------------------------------------------

    def schema_of(self, node: lp.PlanNode) -> tuple[str, ...]:
        """Qualified output schema of a logical node."""
        if isinstance(node, lp.Scan):
            return tuple(
                f"{node.alias}.{column}" for column in self._db.columns(node.table)
            )
        if isinstance(node, (lp.Select, lp.Sort, lp.Limit, lp.Distinct, lp.Hydrate)):
            return self.schema_of(node.children()[0])
        if isinstance(node, lp.Project):
            child_schema = self.schema_of(node.child)
            return tuple(
                child_schema[resolve_column(child_schema, name)]
                for name in node.columns
            )
        if isinstance(node, lp.Compute):
            return tuple(name for _, name in node.items)
        if isinstance(node, lp.Join):
            return self.schema_of(node.left) + self.schema_of(node.right)
        if isinstance(node, lp.GroupBy):
            child_schema = self.schema_of(node.child)
            keys = tuple(
                child_schema[resolve_column(child_schema, key)] for key in node.keys
            )
            aggs = tuple(
                self._canonical_aggregate_name(aggregate, child_schema)
                for aggregate in node.aggregates
            )
            return keys + aggs
        if isinstance(node, lp.Union):
            return self.schema_of(node.left)
        raise PlanError(f"cannot infer schema of {type(node).__name__}")

    @staticmethod
    def _canonical_aggregate_name(
        aggregate: lp.Aggregate, child_schema: tuple[str, ...]
    ) -> str:
        if aggregate.argument is None:
            return "count(*)"
        index = resolve_column(child_schema, aggregate.argument.name)
        return f"{aggregate.function}({child_schema[index]})"

    # -- selection pushdown -------------------------------------------

    def push_down_selections(self, node: lp.PlanNode) -> lp.PlanNode:
        """Push WHERE conjuncts toward their relations.

        A conjunct referencing only one side of a join moves below it; a
        conjunct spanning both sides becomes (part of) the join predicate.
        Tuple-level only — summary propagation is unaffected.
        """
        if isinstance(node, lp.Select):
            child = self.push_down_selections(node.child)
            conjuncts = _split_conjuncts(node.predicate)
            remaining, child = self._sink_conjuncts(conjuncts, child)
            predicate = conjunction(remaining)
            return lp.Select(child, predicate) if predicate is not None else child
        if isinstance(node, lp.Join):
            return lp.Join(
                self.push_down_selections(node.left),
                self.push_down_selections(node.right),
                node.predicate,
                node.outer,
            )
        rebuilt = _rebuild_with_children(
            node, tuple(self.push_down_selections(c) for c in node.children())
        )
        return rebuilt

    def _sink_conjuncts(
        self, conjuncts: list[Expression], node: lp.PlanNode
    ) -> tuple[list[Expression], lp.PlanNode]:
        """Sink as many conjuncts as possible into ``node``; return the rest."""
        if not conjuncts:
            return [], node
        if isinstance(node, lp.Join):
            if node.outer:
                # Sinking predicates past an outer join changes which left
                # tuples survive NULL-padded; keep the selection above it.
                return conjuncts, node
            left_schema = self.schema_of(node.left)
            right_schema = self.schema_of(node.right)
            left_conjuncts: list[Expression] = []
            right_conjuncts: list[Expression] = []
            join_conjuncts: list[Expression] = []
            remaining: list[Expression] = []
            for conjunct in conjuncts:
                columns = conjunct.referenced_columns()
                if not columns:
                    remaining.append(conjunct)
                elif _all_resolvable(columns, left_schema):
                    left_conjuncts.append(conjunct)
                elif _all_resolvable(columns, right_schema):
                    right_conjuncts.append(conjunct)
                elif _all_resolvable(columns, left_schema + right_schema):
                    join_conjuncts.append(conjunct)
                else:
                    remaining.append(conjunct)
            _, left = self._sink_conjuncts(left_conjuncts, node.left)
            _, right = self._sink_conjuncts(right_conjuncts, node.right)
            predicate_parts = join_conjuncts
            if node.predicate is not None:
                predicate_parts = _split_conjuncts(node.predicate) + join_conjuncts
            return remaining, lp.Join(left, right, conjunction(predicate_parts))
        if isinstance(node, (lp.Select, lp.Scan, lp.Project)):
            predicate = conjunction(conjuncts)
            assert predicate is not None
            return [], lp.Select(node, predicate)
        # Other operators: keep the selection above them.
        return conjuncts, node

    # -- Theorems 1-2 normalization ----------------------------------

    def normalize(self, node: lp.PlanNode) -> lp.PlanNode:
        """Insert projections so merges never see un-needed columns."""
        required = list(self.schema_of(node))
        return self._prune(node, required)

    def _prune(self, node: lp.PlanNode, required: Sequence[str]) -> lp.PlanNode:
        """Rewrite ``node`` to output exactly ``required`` (in order)."""
        schema = self.schema_of(node)
        needed = list(dict.fromkeys(required)) or [schema[0]]

        if isinstance(node, lp.Scan):
            return self._wrap(node, schema, needed)

        if isinstance(node, lp.Project):
            # The projection collapses into the pruning itself.
            return self._prune(node.child, needed)

        if isinstance(node, lp.Compute):
            kept = [
                (expression, name)
                for expression, name in node.items
                if name in set(needed)
            ] or [node.items[0]]
            child_schema = self.schema_of(node.child)
            child_required: list[str] = []
            for expression, _name in kept:
                child_required.extend(
                    _resolve_all(expression.referenced_columns(), child_schema)
                )
            child_required = list(dict.fromkeys(child_required))
            child = self._prune(node.child, child_required or [child_schema[0]])
            computed = lp.Compute(child, tuple(kept))
            return self._wrap(
                computed, [name for _, name in kept], needed
            )

        if isinstance(node, lp.Select):
            child_schema = self.schema_of(node.child)
            child_required = _merge_required(
                needed, _resolve_all(node.predicate.referenced_columns(), child_schema)
            )
            child = self._prune(node.child, child_required)
            return self._wrap(lp.Select(child, node.predicate), child_required, needed)

        if isinstance(node, lp.Sort):
            child_schema = self.schema_of(node.child)
            key_columns: list[str] = []
            for key in node.keys:
                key_columns.extend(
                    _resolve_all(key.referenced_columns(), child_schema)
                )
            child_required = _merge_required(needed, key_columns)
            child = self._prune(node.child, child_required)
            return self._wrap(
                lp.Sort(child, node.keys, node.descending), child_required, needed
            )

        if isinstance(node, lp.Limit):
            return lp.Limit(self._prune(node.child, needed), node.count)

        if isinstance(node, lp.Distinct):
            return lp.Distinct(self._prune(node.child, needed))

        if isinstance(node, lp.Join):
            left_schema = self.schema_of(node.left)
            right_schema = self.schema_of(node.right)
            predicate_columns = (
                _resolve_all(
                    node.predicate.referenced_columns(), left_schema + right_schema
                )
                if node.predicate is not None
                else []
            )
            wanted = _merge_required(needed, predicate_columns)
            left_required = [c for c in wanted if c in set(left_schema)]
            right_required = [c for c in wanted if c in set(right_schema)]
            left = self._prune(node.left, left_required or [left_schema[0]])
            right = self._prune(node.right, right_required or [right_schema[0]])
            joined = lp.Join(left, right, node.predicate, node.outer)
            produced = (left_required or [left_schema[0]]) + (
                right_required or [right_schema[0]]
            )
            return self._wrap(joined, produced, needed)

        if isinstance(node, lp.GroupBy):
            child_schema = self.schema_of(node.child)
            child_required = [
                child_schema[resolve_column(child_schema, key)] for key in node.keys
            ]
            for aggregate in node.aggregates:
                if aggregate.argument is not None:
                    child_required.append(
                        child_schema[
                            resolve_column(child_schema, aggregate.argument.name)
                        ]
                    )
            child_required = list(dict.fromkeys(child_required))
            child = self._prune(node.child, child_required or [child_schema[0]])
            grouped = lp.GroupBy(child, node.keys, node.aggregates, node.having)
            return self._wrap(grouped, self.schema_of(grouped), needed)

        if isinstance(node, lp.Union):
            left_schema = self.schema_of(node.left)
            right_schema = self.schema_of(node.right)
            positions = [left_schema.index(name) for name in needed]
            left = self._prune(node.left, [left_schema[i] for i in positions])
            right = self._prune(node.right, [right_schema[i] for i in positions])
            union: lp.PlanNode = lp.Union(left, right, node.distinct)
            if node.distinct:
                union = lp.Distinct(lp.Union(left, right, False))
            return union

        raise PlanError(f"cannot normalize {type(node).__name__}")

    def _wrap(
        self,
        node: lp.PlanNode,
        produced: Sequence[str],
        needed: Sequence[str],
    ) -> lp.PlanNode:
        """Project ``node`` down to ``needed`` unless it already matches."""
        if tuple(produced) == tuple(needed):
            return node
        return lp.Project(node, tuple(needed))

    # -- storage pushdown ---------------------------------------------

    def push_into_storage(self, node: lp.PlanNode) -> lp.PlanNode:
        """Compile sargable conjuncts into the scan's storage filter.

        A selection sitting above a scan (possibly through normalization's
        projections) has its sargable conjuncts — comparisons, IN lists,
        NULL tests over data columns with literal operands (see
        :mod:`repro.engine.pushdown`) — compiled to a parameterized SQL
        WHERE executed inside :meth:`Database.scan`.  Non-sargable
        conjuncts stay behind as an in-memory residual selection.
        """
        if isinstance(node, lp.Select):
            child = self.push_into_storage(node.child)
            scan = _scan_under_projects(child)
            if scan is not None:
                table_columns = self._db.columns(scan.table)
                scan_schema = tuple(
                    f"{scan.alias}.{column}" for column in table_columns
                )
                pushed, residual = compile_conjuncts(
                    _split_conjuncts(node.predicate), scan_schema, table_columns
                )
                if pushed is not None:
                    merged = (
                        scan.storage_filter.merge(pushed)
                        if scan.storage_filter is not None
                        else pushed
                    )
                    child = _replace_scan(
                        child, dataclasses.replace(scan, storage_filter=merged)
                    )
                    predicate = conjunction(residual)
                    if predicate is None:
                        return child
                    return lp.Select(child, predicate)
            return lp.Select(child, node.predicate)
        rebuilt = _rebuild_with_children(
            node, tuple(self.push_into_storage(c) for c in node.children())
        )
        # A fully-pushed selection can leave two adjacent projections
        # (normalization put one on each side of it); compose them.
        if isinstance(rebuilt, lp.Project) and isinstance(rebuilt.child, lp.Project):
            inner = rebuilt.child
            inner_schema = self.schema_of(inner)
            composed = tuple(
                inner.columns[resolve_column(inner_schema, name)]
                for name in rebuilt.columns
            )
            return lp.Project(inner.child, composed)
        return rebuilt

    def push_down_limits(self, node: lp.PlanNode) -> lp.PlanNode:
        """Push LIMIT into the storage statement where order-safe.

        A limit descends through row-count-preserving, order-preserving
        nodes (Project, Compute, nested Limit) onto the scan; Sort,
        residual Select, Distinct, GroupBy, and Join block it.  The
        in-memory Limit stays as the authoritative cap.
        """
        node = _rebuild_with_children(
            node, tuple(self.push_down_limits(c) for c in node.children())
        )
        if isinstance(node, lp.Limit):
            sunk = self._sink_limit(node.child, node.count)
            if sunk is not None:
                return lp.Limit(sunk, node.count)
        return node

    def _sink_limit(self, node: lp.PlanNode, count: int) -> lp.PlanNode | None:
        if isinstance(node, lp.Scan):
            limit = (
                count
                if node.storage_limit is None
                else min(node.storage_limit, count)
            )
            return dataclasses.replace(node, storage_limit=limit)
        if isinstance(node, (lp.Project, lp.Compute, lp.Limit)):
            child = self._sink_limit(node.children()[0], count)
            if child is None:
                return None
            return _rebuild_with_children(node, (child,))
        return None

    # -- lazy hydration -----------------------------------------------

    def insert_hydration(self, node: lp.PlanNode) -> lp.PlanNode:
        """Place Hydrate operators over every scan's surviving rows.

        With pushdown on, each scan's pass-through chain (residual
        selection, projections, limit, value-only sort) runs on plain
        tuples and Hydrate sits at the chain's top — directly below the
        first operator that consumes summaries (compute/join/group-by/
        distinct/union/output) — so only surviving rows are hydrated.
        With pushdown off, Hydrate sits eagerly above each scan,
        reproducing the old hydrate-at-scan pipeline.
        """
        if not self.pushdown:
            return self._hydrate_eager(node)
        return self._hydrate_subtree(node)

    def _hydrate_eager(self, node: lp.PlanNode) -> lp.PlanNode:
        if isinstance(node, lp.Scan):
            return self._wrap_hydrate(node, node, eager=True)
        return _rebuild_with_children(
            node, tuple(self._hydrate_eager(c) for c in node.children())
        )

    @staticmethod
    def _wrap_hydrate(
        node: lp.PlanNode, scan: lp.Scan, eager: bool = False
    ) -> lp.PlanNode:
        if scan.instances == ():
            # WITH NO SUMMARIES: plain relational processing, nothing to
            # hydrate (no attachment bookkeeping either).
            return node
        return lp.Hydrate(node, scan.table, scan.alias, scan.instances, eager)

    def _hydrate_subtree(self, node: lp.PlanNode) -> lp.PlanNode:
        rewritten, scan = self._hydrate_chain(node)
        if scan is not None:
            return self._wrap_hydrate(rewritten, scan)
        return rewritten

    def _hydrate_chain(
        self, node: lp.PlanNode
    ) -> tuple[lp.PlanNode, lp.Scan | None]:
        """Rewrite ``node``; the scan is non-None while ``node`` heads an
        un-hydrated pass-through chain whose caller must hydrate."""
        if isinstance(node, lp.Scan):
            return node, node
        if isinstance(node, lp.Select) and not uses_summaries(node.predicate):
            child, scan = self._hydrate_chain(node.child)
            return lp.Select(child, node.predicate), scan
        if isinstance(node, lp.Project):
            child, scan = self._hydrate_chain(node.child)
            return lp.Project(child, node.columns), scan
        if isinstance(node, lp.Limit):
            child, scan = self._hydrate_chain(node.child)
            return lp.Limit(child, node.count), scan
        if isinstance(node, lp.Sort) and not any(
            uses_summaries(key) for key in node.keys
        ):
            child, scan = self._hydrate_chain(node.child)
            return lp.Sort(child, node.keys, node.descending), scan
        # Barrier (merge or summary-consuming node): hydrate each child
        # subtree at its own top.
        children = tuple(self._hydrate_subtree(c) for c in node.children())
        return _rebuild_with_children(node, children), None

    # -- physical lowering -----------------------------------------------

    def prepare(self, node: lp.PlanNode, hydrate: bool = True) -> lp.PlanNode:
        """Apply the configured rewrites to a logical plan.

        ``hydrate=False`` skips hydration entirely — used for plans whose
        consumers only read values (uncorrelated IN-subqueries with no
        summary functions).
        """
        if self.push_selections:
            node = self.push_down_selections(node)
        if self.normalize_plans:
            node = self.normalize(node)
        if self.pushdown:
            node = self.push_into_storage(node)
            node = self.push_down_limits(node)
        if hydrate:
            node = self.insert_hydration(node)
        return node

    def physical(
        self,
        node: lp.PlanNode,
        tracer: Tracer | None = None,
        stats: ExecutionStats | None = None,
    ) -> Operator:
        """Lower a (prepared) logical plan to a physical operator tree."""
        if isinstance(node, lp.Scan):
            return ScanOperator(
                self._db,
                node.table,
                node.alias,
                tracer=tracer,
                storage_filter=node.storage_filter,
                storage_limit=node.storage_limit,
                stats=stats,
            )
        if isinstance(node, lp.Hydrate):
            return HydrateOperator(
                self.physical(node.child, tracer, stats),
                self._annotations,
                self._catalog,
                node.table,
                node.alias,
                manager=self._manager,
                instances=node.instances,
                tracer=tracer,
                block_size=self.scan_block_size,
                eager=node.eager,
                stats=stats,
                workers=self.workers,
            )
        if isinstance(node, lp.Select):
            return SelectOperator(
                self.physical(node.child, tracer, stats),
                node.predicate,
                tracer=tracer,
            )
        if isinstance(node, lp.Project):
            return ProjectOperator(
                self.physical(node.child, tracer, stats),
                node.columns,
                tracer=tracer,
            )
        if isinstance(node, lp.Compute):
            return ComputeOperator(
                self.physical(node.child, tracer, stats), node.items, tracer=tracer
            )
        if isinstance(node, lp.Join):
            return JoinOperator(
                self.physical(node.left, tracer, stats),
                self.physical(node.right, tracer, stats),
                node.predicate,
                outer=node.outer,
                tracer=tracer,
            )
        if isinstance(node, lp.GroupBy):
            return GroupByOperator(
                self.physical(node.child, tracer, stats),
                node.keys,
                node.aggregates,
                having=node.having,
                tracer=tracer,
            )
        if isinstance(node, lp.Distinct):
            return DistinctOperator(
                self.physical(node.child, tracer, stats), tracer=tracer
            )
        if isinstance(node, lp.Sort):
            return SortOperator(
                self.physical(node.child, tracer, stats),
                node.keys,
                node.descending,
                tracer=tracer,
            )
        if isinstance(node, lp.Limit):
            return LimitOperator(
                self.physical(node.child, tracer, stats), node.count, tracer=tracer
            )
        if isinstance(node, lp.Union):
            operator: Operator = UnionOperator(
                self.physical(node.left, tracer, stats),
                self.physical(node.right, tracer, stats),
                tracer=tracer,
            )
            if node.distinct:
                operator = DistinctOperator(operator, tracer=tracer)
            return operator
        raise PlanError(f"cannot lower {type(node).__name__}")


def _split_conjuncts(predicate: Expression) -> list[Expression]:
    """Flatten nested top-level ANDs into a conjunct list."""
    if isinstance(predicate, BooleanOp) and predicate.op == "and":
        conjuncts: list[Expression] = []
        for operand in predicate.operands:
            conjuncts.extend(_split_conjuncts(operand))
        return conjuncts
    return [predicate]


def _all_resolvable(columns: set[str], schema: tuple[str, ...]) -> bool:
    """True when every referenced column resolves against ``schema``."""
    for name in columns:
        try:
            resolve_column(schema, name)
        except Exception:
            return False
    return True


def _resolve_all(columns: set[str], schema: tuple[str, ...]) -> list[str]:
    """Resolve referenced names to qualified schema columns, sorted."""
    return sorted(schema[resolve_column(schema, name)] for name in columns)


def _merge_required(base: Sequence[str], extra: Sequence[str]) -> list[str]:
    """Union two required-column lists, keeping first-seen order."""
    return list(dict.fromkeys([*base, *extra]))


def _scan_under_projects(node: lp.PlanNode) -> lp.Scan | None:
    """The scan beneath a (possibly empty) chain of projections, if any.

    Normalization inserts projections between a selection and its scan;
    row identity and column values are unchanged through them, so a
    filter compiled against the scan's full schema applies unmodified.
    """
    while isinstance(node, lp.Project):
        node = node.child
    return node if isinstance(node, lp.Scan) else None


def _replace_scan(node: lp.PlanNode, scan: lp.Scan) -> lp.PlanNode:
    """Swap the scan at the bottom of a projection chain for ``scan``."""
    if isinstance(node, lp.Scan):
        return scan
    assert isinstance(node, lp.Project)
    return lp.Project(_replace_scan(node.child, scan), node.columns)


def _node_expressions(node: lp.PlanNode) -> Iterator[Expression]:
    """Every expression a logical node evaluates."""
    if isinstance(node, lp.Select):
        yield node.predicate
    elif isinstance(node, lp.Compute):
        for expression, _name in node.items:
            yield expression
    elif isinstance(node, lp.Join):
        if node.predicate is not None:
            yield node.predicate
    elif isinstance(node, lp.GroupBy):
        if node.having is not None:
            yield node.having
    elif isinstance(node, lp.Sort):
        yield from node.keys


def plan_uses_summaries(node: lp.PlanNode) -> bool:
    """True when any expression in the plan reads summary objects."""
    return any(
        uses_summaries(expression)
        for n in lp.walk(node)
        for expression in _node_expressions(n)
    )


def _rebuild_with_children(
    node: lp.PlanNode, children: tuple[lp.PlanNode, ...]
) -> lp.PlanNode:
    """Clone a logical node with replaced children."""
    if isinstance(node, lp.Scan):
        return node
    if isinstance(node, lp.Hydrate):
        return lp.Hydrate(
            children[0], node.table, node.alias, node.instances, node.eager
        )
    if isinstance(node, lp.Select):
        return lp.Select(children[0], node.predicate)
    if isinstance(node, lp.Project):
        return lp.Project(children[0], node.columns)
    if isinstance(node, lp.Compute):
        return lp.Compute(children[0], node.items)
    if isinstance(node, lp.Join):
        return lp.Join(children[0], children[1], node.predicate, node.outer)
    if isinstance(node, lp.GroupBy):
        return lp.GroupBy(children[0], node.keys, node.aggregates, node.having)
    if isinstance(node, lp.Distinct):
        return lp.Distinct(children[0])
    if isinstance(node, lp.Sort):
        return lp.Sort(children[0], node.keys, node.descending)
    if isinstance(node, lp.Limit):
        return lp.Limit(children[0], node.count)
    if isinstance(node, lp.Union):
        return lp.Union(children[0], children[1], node.distinct)
    raise PlanError(f"cannot rebuild {type(node).__name__}")
