"""Physical operators of the summary-aware execution engine.

Every operator consumes and produces streams of
:class:`~repro.model.tuple.AnnotatedTuple`, applying the extended
semantics of [30]:

* **Scan** attaches each base tuple's summary objects (query-stripped) and
  its annotation-to-column attachment map.
* **Select** filters without touching summaries (Figure 2, step 2).
* **Project** removes the effect of annotations attached only to dropped
  columns (Figure 2, step 1): classifier counts decrement, snippets
  disappear, cluster groups shrink and re-elect representatives.
* **Join** merges counterpart summary objects without double counting
  annotations attached to both inputs (Figure 2, step 3).
* **GroupBy** and **Distinct** merge the summaries of the tuples they
  collapse.
* **Sort**, **Limit**, **Union** propagate summaries unchanged.

Operators support an optional :class:`Tracer`, which records every emitted
tuple per operator — the "under-the-hood execution" view the demo exposes
on the query tree.
"""

from __future__ import annotations

import abc
import time
from collections import deque
from collections.abc import Iterator, Sequence
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.concurrency import LockLike, make_lock
from repro.engine.expressions import (
    Column,
    Comparison,
    Expression,
    resolve_column,
)
from repro.engine.plan import Aggregate
from repro.errors import ExpressionError, PlanError
from repro.model.tuple import AnnotatedTuple
from repro.summaries.base import SummaryInstance, SummaryObject

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.maintenance.incremental import SummaryManager
    from repro.storage.annotations import AnnotationStore
    from repro.storage.catalog import SummaryCatalog
    from repro.storage.database import Database


class TraceEntry:
    """Snapshot of one tuple as it left one operator.

    Summary payloads are captured as cheap snapshots (copy-on-write
    aliases where the type supports it) and rendered lazily: tracing a
    large scan no longer pays one string render per summary per tuple
    unless the trace is actually displayed.
    """

    __slots__ = ("operator", "values", "_objects", "_rendered")

    def __init__(
        self,
        operator: str,
        values: tuple[Any, ...],
        summary_objects: dict[str, SummaryObject],
    ) -> None:
        self.operator = operator
        self.values = values
        self._objects = summary_objects
        self._rendered: dict[str, str] | None = None

    @property
    def summaries(self) -> dict[str, str]:
        """Rendered summary strings, computed on first access."""
        if self._rendered is None:
            self._rendered = {
                name: obj.render() for name, obj in sorted(self._objects.items())
            }
        return self._rendered

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceEntry(operator={self.operator!r}, values={self.values!r})"


class Tracer:
    """Collects per-operator intermediate tuples for visualization.

    Parameters
    ----------
    max_entries:
        Hard cap on retained entries; tuples beyond it are counted in
        :attr:`dropped` instead of stored, so tracing a large query
        cannot hold the whole intermediate-result volume in memory.
        Pass ``None`` for an unbounded trace.
    """

    DEFAULT_MAX_ENTRIES = 10_000

    def __init__(self, max_entries: int | None = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.entries: list[TraceEntry] = []
        self.max_entries = max_entries
        self.dropped = 0
        #: Inclusive per-operator wall clock and emitted-row counts,
        #: keyed by the operator's description.  "Inclusive" because the
        #: iterator model nests pulls: an operator's time contains its
        #: children's (the same convention EXPLAIN ANALYZE implementations
        #: report without a subtraction pass).
        self.operator_seconds: dict[str, float] = {}
        self.operator_rows: dict[str, int] = {}

    def add_time(self, operator_label: str, seconds: float, rows: int) -> None:
        """Accumulate one pull's wall clock against an operator."""
        self.operator_seconds[operator_label] = (
            self.operator_seconds.get(operator_label, 0.0) + seconds
        )
        self.operator_rows[operator_label] = (
            self.operator_rows.get(operator_label, 0) + rows
        )

    def timings_json(self) -> list[dict[str, Any]]:
        """Per-operator timing rows, slowest first (JSON-able)."""
        return [
            {
                "operator": label,
                "seconds": round(seconds, 6),
                "rows": self.operator_rows.get(label, 0),
            }
            for label, seconds in sorted(
                self.operator_seconds.items(), key=lambda kv: -kv[1]
            )
        ]

    def record(self, operator: "Operator", row: AnnotatedTuple) -> None:
        """Record ``row`` as an output of ``operator``."""
        if self.max_entries is not None and len(self.entries) >= self.max_entries:
            self.dropped += 1
            return
        # Snapshot each summary without a deep copy: copy-on-write types
        # share their payload (a later in-place mutation unshares the
        # downstream object, leaving this alias on the old payload);
        # other types fall back to a real copy.
        self.entries.append(
            TraceEntry(
                operator=operator.describe(),
                values=row.values,
                summary_objects={
                    name: obj.share() if obj.copy_on_write else obj.copy()
                    for name, obj in row.summaries.items()
                },
            )
        )

    def by_operator(self) -> dict[str, list[TraceEntry]]:
        """Entries grouped by operator description, insertion-ordered."""
        grouped: dict[str, list[TraceEntry]] = {}
        for entry in self.entries:
            grouped.setdefault(entry.operator, []).append(entry)
        return grouped


class Operator(abc.ABC):
    """Base class of physical operators (iterator model)."""

    def __init__(self, schema: tuple[str, ...], tracer: Tracer | None) -> None:
        self.schema = schema
        self._tracer = tracer

    @abc.abstractmethod
    def rows(self) -> Iterator[AnnotatedTuple]:
        """Produce the operator's output stream."""

    @abc.abstractmethod
    def describe(self) -> str:
        """One-line description for traces and plan displays."""

    def __iter__(self) -> Iterator[AnnotatedTuple]:
        if self._tracer is None:
            yield from self.rows()
            return
        # Traced execution also times each pull (inclusive of children —
        # see Tracer.operator_seconds).  The per-row perf_counter pair is
        # only paid when a trace was explicitly requested.
        tracer = self._tracer
        label = self.describe()
        iterator = self.rows()
        while True:
            started = time.perf_counter()
            try:
                row = next(iterator)
            except StopIteration:
                tracer.add_time(label, time.perf_counter() - started, 0)
                return
            tracer.add_time(label, time.perf_counter() - started, 1)
            tracer.record(self, row)
            yield row


def merge_summary_maps(
    left: dict[str, SummaryObject], right: dict[str, SummaryObject]
) -> dict[str, SummaryObject]:
    """Merge two tuples' summary maps.

    Instances present on both sides merge dedup-aware; one-sided instances
    propagate by copy (ClassBird1/TextSummary1 in Figure 2, which exist
    only on tuple r).
    """
    merged: dict[str, SummaryObject] = {}
    for name, obj in left.items():
        counterpart = right.get(name)
        merged[name] = obj.merge(counterpart) if counterpart is not None else obj.copy()
    for name, obj in right.items():
        if name not in merged:
            merged[name] = obj.copy()
    return merged


def merge_attachments(
    left: dict[int, frozenset[str]], right: dict[int, frozenset[str]]
) -> dict[int, frozenset[str]]:
    """Union two attachment maps, unioning column sets for shared ids."""
    merged = dict(left)
    for annotation_id, columns in right.items():
        existing = merged.get(annotation_id)
        merged[annotation_id] = columns if existing is None else existing | columns
    return merged


def _extend_equivalent(
    attachments: dict[int, frozenset[str]],
    equivalent: tuple[tuple[str, str], ...],
) -> dict[int, frozenset[str]]:
    """Spread attachments across value-equivalent (equi-joined) columns."""
    extended: dict[int, frozenset[str]] = {}
    for annotation_id, columns in attachments.items():
        extra: set[str] = set()
        for left_name, right_name in equivalent:
            if left_name in columns:
                extra.add(right_name)
            if right_name in columns:
                extra.add(left_name)
        extended[annotation_id] = columns | extra if extra else columns
    return extended


#: Base rows fetched (and hydrated against storage) per block.
DEFAULT_SCAN_BLOCK_SIZE = 256


@dataclass
class ExecutionStats:
    """Per-query execution counters, exposed on the query result.

    ``rows_scanned`` counts base rows produced by storage scans (after
    any pushed-down filter/limit); ``rows_hydrated`` counts rows whose
    summary objects and attachment maps were materialized; and
    ``hydration_blocks`` counts the bulk-fetch round-trip groups.  A
    selective query with lazy hydration shows ``rows_hydrated`` well
    below ``rows_scanned``.

    On a sharded backend two more counter groups appear (and **only**
    then — unsharded sessions keep the original three-key payload):
    ``shard_rows_scanned`` splits the scan count by the home shard of
    each merged row, and ``backend`` carries the per-shard pool deltas
    (read checkouts, writer batches) the query drove, recorded by the
    session around execution.

    Accumulation is lock-protected — parallel hydration and scatter
    producers may drive operators of the same query from several threads
    at once.
    """

    rows_scanned: int = 0
    rows_hydrated: int = 0
    hydration_blocks: int = 0
    shard_rows_scanned: dict[str, int] = field(default_factory=dict)
    backend_counters: dict[str, dict[str, int]] = field(default_factory=dict)
    _lock: LockLike = field(
        default_factory=lambda: make_lock("engine.execution_stats"),
        repr=False,
        compare=False,
    )

    def count_scanned(self, rows: int = 1, shard: int | None = None) -> None:
        with self._lock:
            self.rows_scanned += rows
            if shard is not None:
                key = str(shard)
                self.shard_rows_scanned[key] = (
                    self.shard_rows_scanned.get(key, 0) + rows
                )

    def count_hydrated_block(self, rows: int) -> None:
        with self._lock:
            self.hydration_blocks += 1
            self.rows_hydrated += rows

    def record_backend_counters(
        self, counters: dict[str, dict[str, int]]
    ) -> None:
        """Attach the per-shard pool checkout deltas of this query."""
        with self._lock:
            self.backend_counters = {
                shard: dict(values) for shard, values in counters.items()
            }

    def to_json(self) -> dict[str, Any]:
        with self._lock:
            payload: dict[str, Any] = {
                "rows_scanned": self.rows_scanned,
                "rows_hydrated": self.rows_hydrated,
                "hydration_blocks": self.hydration_blocks,
            }
            if self.shard_rows_scanned:
                payload["shard_rows_scanned"] = dict(self.shard_rows_scanned)
            if self.backend_counters:
                payload["backend"] = {
                    shard: dict(values)
                    for shard, values in self.backend_counters.items()
                }
            return payload


class ScanOperator(Operator):
    """Value-only scan of a base table.

    Emits plain tuples — values plus source-row identity, no summaries,
    no attachments; a :class:`HydrateOperator` placed downstream attaches
    the annotation payload to the rows that survive filtering (late
    materialization).  Sargable predicates and LIMIT compiled by the
    planner (:mod:`repro.engine.pushdown`) execute inside the storage
    statement via :meth:`Database.scan`.
    """

    def __init__(
        self,
        database: "Database",
        table: str,
        alias: str,
        tracer: Tracer | None = None,
        storage_filter: Any = None,
        storage_limit: int | None = None,
        stats: ExecutionStats | None = None,
    ) -> None:
        columns = database.columns(table)
        super().__init__(
            tuple(f"{alias}.{column}" for column in columns), tracer
        )
        self._db = database
        self.table = table
        self.alias = alias
        self.storage_filter = storage_filter
        self.storage_limit = storage_limit
        self._stats = stats

    def rows(self) -> Iterator[AnnotatedTuple]:
        where_sql: str | None = None
        params: tuple[Any, ...] = ()
        if self.storage_filter is not None:
            where_sql = self.storage_filter.sql
            params = self.storage_filter.params
        stats = self._stats
        on_row_shard = None
        if stats is not None and self._db.shard_count > 1:
            # The scatter-gather merge reports each row's home shard;
            # counting there feeds the per-shard breakdown (and the
            # total) in one call.
            on_row_shard = lambda shard: stats.count_scanned(shard=shard)  # noqa: E731
        for row_id, values in self._db.scan(
            self.table, where_sql, params, self.storage_limit, on_row_shard
        ):
            if stats is not None and on_row_shard is None:
                stats.count_scanned()
            yield AnnotatedTuple(
                values=values,
                source_rows=frozenset({(self.table, row_id)}),
            )

    def describe(self) -> str:
        base = (
            f"Scan({self.table})"
            if self.alias == self.table
            else f"Scan({self.table} AS {self.alias})"
        )
        if self.storage_filter is not None:
            base = f"{base} [pushed: {self.storage_filter}]"
        if self.storage_limit is not None:
            base = f"{base} [limit: {self.storage_limit}]"
        return base


class HydrateOperator(Operator):
    """Attach summary objects and attachment maps to surviving rows.

    Buffers its input into blocks of ``block_size`` and bulk-fetches each
    block's summary objects and attachment maps (one storage round-trip
    per block per kind).  Because the planner places this operator above
    the residual selection (and a pushed LIMIT), only rows that survive
    filtering pay the deserialization tax.

    The operator is *projection-aware*: when it sits above a Project, its
    schema is the kept column subset, so attachments are narrowed to the
    surviving columns and fully-dropped annotations have their effects
    removed from the (copy-on-write) summary objects — the same outcome
    as the old hydrate-at-scan ordering, at a fraction of the fetches.

    With ``workers > 1`` the block fetches fan out across a bounded
    thread pool: each worker runs its block's two bulk reads on its own
    pooled read connection while the main thread keeps consuming input,
    and blocks are *emitted* strictly in submission order, so output is
    byte-identical to the serial path.  ``workers=1`` (the default) is
    exactly the serial fetch-then-emit loop.
    """

    def __init__(
        self,
        child: Operator,
        annotations: "AnnotationStore",
        catalog: "SummaryCatalog",
        table: str,
        alias: str,
        manager: "SummaryManager | None" = None,
        instances: tuple[str, ...] | None = None,
        tracer: Tracer | None = None,
        block_size: int = DEFAULT_SCAN_BLOCK_SIZE,
        eager: bool = False,
        stats: ExecutionStats | None = None,
        workers: int = 1,
    ) -> None:
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        super().__init__(child.schema, tracer)
        self._child = child
        self._annotations = annotations
        self._catalog = catalog
        self._manager = manager
        self.table = table
        self.alias = alias
        self.instances = instances
        self.block_size = block_size
        self.eager = eager
        self._stats = stats
        self.workers = workers

    def rows(self) -> Iterator[AnnotatedTuple]:
        instances = self._catalog.instances_for_table(self.table)
        if self.instances is not None:
            wanted = set(self.instances)
            instances = [i for i in instances if i.name in wanted]
            if not instances:
                # Named subset with no linked instance: plain relational
                # processing, no attachment bookkeeping either.
                yield from self._child
                return
        if self.workers > 1:
            yield from self._rows_parallel(instances)
            return
        block: list[AnnotatedTuple] = []
        for row in self._child:
            block.append(row)
            if len(block) >= self.block_size:
                yield from self._emit_block(block, instances)
                block = []
        if block:
            yield from self._emit_block(block, instances)

    def _rows_parallel(
        self, instances: Sequence["SummaryInstance"]
    ) -> Iterator[AnnotatedTuple]:
        """Pipelined fetch: workers hydrate blocks ahead of the consumer.

        At most ``workers * 2`` blocks are in flight, bounding both
        memory and the read-ahead past a downstream LIMIT (a few
        wasted block fetches, never the whole table).  Emission order is
        the FIFO submission order — results are byte-identical to the
        serial path, whatever order the fetches complete in.
        """
        pending: deque[tuple[list[AnnotatedTuple], list[int], Future]] = deque()
        max_pending = self.workers * 2
        pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="hydrate"
        )
        try:
            block: list[AnnotatedTuple] = []
            for row in self._child:
                block.append(row)
                if len(block) >= self.block_size:
                    row_ids = [self._row_id(r) for r in block]
                    pending.append(
                        (
                            block,
                            row_ids,
                            pool.submit(self._fetch_block, row_ids, instances),
                        )
                    )
                    block = []
                    if len(pending) >= max_pending:
                        yield from self._emit_fetched(
                            *pending.popleft(), instances
                        )
            if block:
                row_ids = [self._row_id(r) for r in block]
                pending.append(
                    (
                        block,
                        row_ids,
                        pool.submit(self._fetch_block, row_ids, instances),
                    )
                )
            while pending:
                yield from self._emit_fetched(*pending.popleft(), instances)
        finally:
            # Also reached via GeneratorExit when a LIMIT stops consuming:
            # drop queued blocks, let in-flight fetches finish harmlessly.
            pool.shutdown(wait=False, cancel_futures=True)

    def _emit_fetched(
        self,
        block: list[AnnotatedTuple],
        row_ids: list[int],
        future: Future,
        instances: Sequence["SummaryInstance"],
    ) -> Iterator[AnnotatedTuple]:
        objects, attachment_maps = future.result()
        yield from self._emit(block, row_ids, objects, attachment_maps, instances)

    def _row_id(self, row: AnnotatedTuple) -> int:
        for table, row_id in row.source_rows:
            if table == self.table:
                return row_id
        raise PlanError(
            f"Hydrate({self.alias}): row has no {self.table!r} source"
        )

    def _fetch_block(
        self,
        row_ids: list[int],
        instances: Sequence["SummaryInstance"],
    ) -> tuple[
        dict[tuple[str, int], SummaryObject],
        dict[int, dict[int, frozenset[str]]],
    ]:
        """One block's two bulk reads — pure data, safe off-thread."""
        names = [instance.name for instance in instances]
        if self._manager is not None:
            objects = self._manager.objects_for_rows(names, self.table, row_ids)
            attachment_maps = self._manager.attachments_for_rows(
                self.table, row_ids
            )
        else:
            objects = self._catalog.load_objects_for_table(
                names, self.table, row_ids
            )
            attachment_maps = self._annotations.attachments_for_rows(
                self.table, row_ids
            )
        return objects, attachment_maps

    def _emit_block(
        self,
        block: list[AnnotatedTuple],
        instances: Sequence["SummaryInstance"],
    ) -> Iterator[AnnotatedTuple]:
        """Bulk-fetch one block's summaries and attachments, then emit."""
        row_ids = [self._row_id(row) for row in block]
        objects, attachment_maps = self._fetch_block(row_ids, instances)
        yield from self._emit(block, row_ids, objects, attachment_maps, instances)

    def _emit(
        self,
        block: list[AnnotatedTuple],
        row_ids: list[int],
        objects: dict[tuple[str, int], SummaryObject],
        attachment_maps: dict[int, dict[int, frozenset[str]]],
        instances: Sequence["SummaryInstance"],
    ) -> Iterator[AnnotatedTuple]:
        stats = self._stats
        if stats is not None:
            stats.count_hydrated_block(len(block))
        kept = set(self.schema)
        for row, row_id in zip(block, row_ids):
            attachments: dict[int, frozenset[str]] = {}
            dropped: set[int] = set()
            for annotation_id, columns in attachment_maps.get(row_id, {}).items():
                surviving = frozenset(
                    qualified
                    for column in columns
                    if (qualified := f"{self.alias}.{column}") in kept
                )
                if surviving:
                    attachments[annotation_id] = surviving
                else:
                    dropped.add(annotation_id)
            summaries: dict[str, SummaryObject] = {}
            for instance in instances:
                obj = objects.get((instance.name, row_id))
                summary = (
                    obj.for_query() if obj is not None else instance.new_object()
                )
                if dropped:
                    summary.remove_annotations(dropped)
                summaries[instance.name] = summary
            row.summaries = summaries
            row.attachments = attachments
            yield row

    def describe(self) -> str:
        base = f"Hydrate({self.alias})"
        if self.instances is not None:
            if not self.instances:
                base = f"{base} [no summaries]"
            else:
                base = f"{base} [summaries: {', '.join(self.instances)}]"
        if self.eager:
            base = f"{base} [eager]"
        if self.workers > 1:
            base = f"{base} [workers: {self.workers}]"
        return base


class SelectOperator(Operator):
    """Predicate filter; summaries propagate unchanged."""

    def __init__(
        self, child: Operator, predicate: Expression, tracer: Tracer | None = None
    ) -> None:
        super().__init__(child.schema, tracer)
        self._child = child
        self.predicate = predicate

    def rows(self) -> Iterator[AnnotatedTuple]:
        for row in self._child:
            if self.predicate.evaluate(row, self.schema):
                yield row

    def describe(self) -> str:
        return f"Select({self.predicate})"


class ProjectOperator(Operator):
    """Column projection with annotation-effect removal.

    The paper's extended projection (Figure 2, step 1): annotations whose
    every attached column is dropped have their effect removed from the
    tuple's summary objects — counts decrement, cluster representatives
    get re-elected — without fetching the raw annotations.
    """

    def __init__(
        self,
        child: Operator,
        columns: Sequence[str],
        tracer: Tracer | None = None,
    ) -> None:
        self._indices = tuple(
            resolve_column(child.schema, name) for name in columns
        )
        qualified = tuple(child.schema[index] for index in self._indices)
        if len(set(qualified)) != len(qualified):
            raise PlanError(f"duplicate projection columns: {qualified}")
        super().__init__(qualified, tracer)
        self._child = child

    def rows(self) -> Iterator[AnnotatedTuple]:
        kept = self.schema
        for row in self._child:
            row.values = tuple(row.values[index] for index in self._indices)
            dropped = row.restrict_attachments(kept)
            if dropped:
                for obj in row.summaries.values():
                    obj.remove_annotations(dropped)
            yield row

    def describe(self) -> str:
        return f"Project({', '.join(self.schema)})"


class ComputeOperator(Operator):
    """Expression projection with annotation-effect remapping.

    For each output expression, the input columns it references are
    computed once; per tuple, an annotation keeps its effect on every
    output whose referenced inputs intersect the annotation's columns,
    and loses it when no output references it — the Compute
    generalization of the Figure 2 projection semantics.
    """

    def __init__(
        self,
        child: Operator,
        items: Sequence[tuple[Expression, str]],
        tracer: Tracer | None = None,
    ) -> None:
        names = tuple(name for _, name in items)
        super().__init__(names, tracer)
        self._child = child
        self._items = tuple(items)
        # Input column -> output columns referencing it.
        self._column_map: dict[str, set[str]] = {}
        for expression, name in self._items:
            for reference in expression.referenced_columns():
                index = resolve_column(child.schema, reference)
                self._column_map.setdefault(child.schema[index], set()).add(name)

    def rows(self) -> Iterator[AnnotatedTuple]:
        child_schema = self._child.schema
        for row in self._child:
            values = tuple(
                expression.evaluate(row, child_schema)
                for expression, _name in self._items
            )
            remapped: dict[int, frozenset[str]] = {}
            dropped: set[int] = set()
            for annotation_id, columns in row.attachments.items():
                outputs: set[str] = set()
                for column in columns:
                    outputs |= self._column_map.get(column, set())
                if outputs:
                    remapped[annotation_id] = frozenset(outputs)
                else:
                    dropped.add(annotation_id)
            row.values = values
            row.attachments = remapped
            if dropped:
                for obj in row.summaries.values():
                    obj.remove_annotations(dropped)
            yield row

    def describe(self) -> str:
        rendered = ", ".join(
            f"{expression} AS {name}" if str(expression) != name else name
            for expression, name in self._items
        )
        return f"Compute({rendered})"


class JoinOperator(Operator):
    """Inner join with dedup-aware summary merging.

    The right input is materialized.  When the predicate contains
    top-level equality conjuncts between one left and one right column, a
    hash index over the right side accelerates matching; residual
    conjuncts are evaluated on each candidate pair.
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        predicate: Expression | None,
        outer: bool = False,
        tracer: Tracer | None = None,
    ) -> None:
        overlap = set(left.schema) & set(right.schema)
        if overlap:
            raise PlanError(f"join inputs share columns: {sorted(overlap)}")
        super().__init__(left.schema + right.schema, tracer)
        self._left = left
        self._right = right
        self.predicate = predicate
        self.outer = outer
        self._equi_keys, self._residual = self._split_predicate()
        # Equality makes the two join columns value-equivalent, so an
        # annotation on one logically covers the other: Figure 2's step 4
        # projects out s.x without losing its annotations because they
        # also attach to r.a.
        self._equivalent_columns = tuple(
            (left.schema[li], right.schema[ri]) for li, ri in self._equi_keys
        )

    def _split_predicate(
        self,
    ) -> tuple[list[tuple[int, int]], list[Expression]]:
        """Extract hashable left/right equality pairs from the predicate."""
        if self.predicate is None:
            return [], []
        from repro.engine.expressions import BooleanOp

        conjuncts: list[Expression]
        if isinstance(self.predicate, BooleanOp) and self.predicate.op == "and":
            conjuncts = list(self.predicate.operands)
        else:
            conjuncts = [self.predicate]
        equi: list[tuple[int, int]] = []
        residual: list[Expression] = []
        for conjunct in conjuncts:
            pair = self._equi_pair(conjunct)
            if pair is not None:
                equi.append(pair)
            else:
                residual.append(conjunct)
        return equi, residual

    def _equi_pair(self, conjunct: Expression) -> tuple[int, int] | None:
        if not (
            isinstance(conjunct, Comparison)
            and conjunct.op == "="
            and isinstance(conjunct.left, Column)
            and isinstance(conjunct.right, Column)
        ):
            return None
        for first, second in (
            (conjunct.left.name, conjunct.right.name),
            (conjunct.right.name, conjunct.left.name),
        ):
            try:
                left_index = resolve_column(self._left.schema, first)
                right_index = resolve_column(self._right.schema, second)
            except ExpressionError:
                # This orientation doesn't match the schemas; the swapped
                # orientation is tried next.
                continue
            return left_index, right_index
        return None

    def combine(self, left: AnnotatedTuple, right: AnnotatedTuple) -> AnnotatedTuple:
        """Join two tuples: concatenate values, merge summaries dedup-aware."""
        attachments = merge_attachments(left.attachments, right.attachments)
        if self._equivalent_columns:
            attachments = _extend_equivalent(attachments, self._equivalent_columns)
        return AnnotatedTuple(
            values=left.values + right.values,
            summaries=merge_summary_maps(left.summaries, right.summaries),
            attachments=attachments,
            source_rows=left.source_rows | right.source_rows,
        )

    def _pad_unmatched(self, left_row: AnnotatedTuple) -> AnnotatedTuple:
        """NULL-pad an unmatched left tuple; its summaries pass through."""
        return AnnotatedTuple(
            values=left_row.values + (None,) * len(self._right.schema),
            summaries={name: obj.copy() for name, obj in left_row.summaries.items()},
            attachments=dict(left_row.attachments),
            source_rows=left_row.source_rows,
        )

    def rows(self) -> Iterator[AnnotatedTuple]:
        if self._equi_keys:
            # The hash index IS the materialization — built in one pass
            # over the right input, no intermediate list.
            index: dict[tuple[Any, ...], list[AnnotatedTuple]] = {}
            for row in self._right:
                key = tuple(row.values[ri] for _, ri in self._equi_keys)
                index.setdefault(key, []).append(row)
            for left_row in self._left:
                key = tuple(left_row.values[li] for li, _ in self._equi_keys)
                matched = False
                if None not in key:
                    for right_row in index.get(key, ()):
                        combined = self.combine(left_row, right_row)
                        if all(
                            residual.evaluate(combined, self.schema)
                            for residual in self._residual
                        ):
                            matched = True
                            yield combined
                if self.outer and not matched:
                    yield self._pad_unmatched(left_row)
        else:
            # Non-equi: every left row sees every right row, so the
            # materialization is genuinely needed — keep it explicit.
            right_rows = list(self._right)
            for left_row in self._left:
                matched = False
                for right_row in right_rows:
                    combined = self.combine(left_row, right_row)
                    if self.predicate is None or self.predicate.evaluate(
                        combined, self.schema
                    ):
                        matched = True
                        yield combined
                if self.outer and not matched:
                    yield self._pad_unmatched(left_row)

    def describe(self) -> str:
        kind = "LeftOuterJoin" if self.outer else "Join"
        if self.predicate is None:
            return f"{kind}(cross)"
        return f"{kind}({self.predicate})"


class GroupByOperator(Operator):
    """Grouping and aggregation with summary merging.

    Output schema: the (qualified) key columns followed by one column per
    aggregate.  Every group member's attachments are remapped — key columns
    keep their names, aggregate-argument columns map to the aggregate's
    output column, all other columns drop (removing their annotations'
    effects, per the projection semantics) — and then the members'
    summaries merge into one object per instance.
    """

    def __init__(
        self,
        child: Operator,
        keys: Sequence[str],
        aggregates: Sequence[Aggregate],
        having: Expression | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self._key_indices = tuple(resolve_column(child.schema, k) for k in keys)
        key_names = tuple(child.schema[i] for i in self._key_indices)
        self._aggregates = tuple(aggregates)
        self._agg_indices: list[int | None] = []
        agg_names: list[str] = []
        for aggregate in self._aggregates:
            if aggregate.argument is None:
                self._agg_indices.append(None)
                agg_names.append("count(*)")
            else:
                index = resolve_column(child.schema, aggregate.argument.name)
                self._agg_indices.append(index)
                agg_names.append(f"{aggregate.function}({child.schema[index]})")
        super().__init__(key_names + tuple(agg_names), tracer)
        self._child = child
        self.having = having
        # Input column -> output columns it survives as.
        self._column_map: dict[str, set[str]] = {}
        for name in key_names:
            self._column_map.setdefault(name, set()).add(name)
        for aggregate_index, output_name in zip(self._agg_indices, agg_names):
            if aggregate_index is not None:
                input_name = child.schema[aggregate_index]
                self._column_map.setdefault(input_name, set()).add(output_name)

    def _remap_member(self, row: AnnotatedTuple) -> AnnotatedTuple:
        """Apply projection semantics onto the group-by output columns."""
        remapped: dict[int, frozenset[str]] = {}
        dropped: set[int] = set()
        for annotation_id, columns in row.attachments.items():
            outputs: set[str] = set()
            for column in columns:
                outputs |= self._column_map.get(column, set())
            if outputs:
                remapped[annotation_id] = frozenset(outputs)
            else:
                dropped.add(annotation_id)
        row.attachments = remapped
        if dropped:
            for obj in row.summaries.values():
                obj.remove_annotations(dropped)
        return row

    def _aggregate_value(
        self, aggregate: Aggregate, index: int | None, members: list[AnnotatedTuple]
    ) -> Any:
        if index is None:
            return len(members)
        values = [m.values[index] for m in members if m.values[index] is not None]
        if aggregate.function == "count":
            return len(values)
        if not values:
            return None
        if aggregate.function == "sum":
            return sum(values)
        if aggregate.function == "avg":
            return sum(values) / len(values)
        if aggregate.function == "min":
            return min(values)
        return max(values)

    def rows(self) -> Iterator[AnnotatedTuple]:
        groups: dict[tuple[Any, ...], list[AnnotatedTuple]] = {}
        for row in self._child:
            key = tuple(row.values[i] for i in self._key_indices)
            groups.setdefault(key, []).append(row)
        if not groups and not self._key_indices:
            # SQL: a global aggregate over empty input yields one row
            # (COUNT = 0, other aggregates NULL) with empty summaries.
            values = tuple(
                self._aggregate_value(aggregate, index, [])
                for aggregate, index in zip(self._aggregates, self._agg_indices)
            )
            out = AnnotatedTuple(values=values)
            if self.having is None or self.having.evaluate(out, self.schema):
                yield out
            return
        for key, members in groups.items():
            members = [self._remap_member(member) for member in members]
            summaries = members[0].summaries
            attachments = members[0].attachments
            source_rows = members[0].source_rows
            for member in members[1:]:
                summaries = merge_summary_maps(summaries, member.summaries)
                attachments = merge_attachments(attachments, member.attachments)
                source_rows = source_rows | member.source_rows
            values = key + tuple(
                self._aggregate_value(aggregate, index, members)
                for aggregate, index in zip(self._aggregates, self._agg_indices)
            )
            out = AnnotatedTuple(
                values=values,
                summaries=summaries,
                attachments=attachments,
                source_rows=source_rows,
            )
            if self.having is None or self.having.evaluate(out, self.schema):
                yield out

    def describe(self) -> str:
        keys = ", ".join(self.schema[: len(self._key_indices)])
        aggs = ", ".join(self.schema[len(self._key_indices):])
        return f"GroupBy(keys=[{keys}]; aggs=[{aggs}])"


class DistinctOperator(Operator):
    """Duplicate elimination; duplicates' summaries merge into one tuple."""

    def __init__(self, child: Operator, tracer: Tracer | None = None) -> None:
        super().__init__(child.schema, tracer)
        self._child = child

    def rows(self) -> Iterator[AnnotatedTuple]:
        seen: dict[tuple[Any, ...], AnnotatedTuple] = {}
        for row in self._child:
            existing = seen.get(row.values)
            if existing is None:
                seen[row.values] = row
            else:
                existing.summaries = merge_summary_maps(
                    existing.summaries, row.summaries
                )
                existing.attachments = merge_attachments(
                    existing.attachments, row.attachments
                )
                existing.source_rows = existing.source_rows | row.source_rows
        yield from seen.values()

    def describe(self) -> str:
        return "Distinct"


class StorageAggregateOperator(Operator):
    """Grouping/aggregation executed inside SQLite (cost-planner lowering).

    The planner emits this leaf only for provably summary-free tables
    (no linked instances, no attachments) on a single-shard backend, so
    merging summaries during grouping would be a no-op — the SQL result
    is byte-identical to streaming the scan through
    :class:`GroupByOperator`/:class:`DistinctOperator`, including group
    order (``ORDER BY MIN(rowid)`` reproduces first-seen order over the
    rowid-ordered scan) and provenance (``GROUP_CONCAT(rowid)`` rebuilds
    each group's ``source_rows``).

    ``rows_scanned`` counts the *group* rows crossing into the engine —
    the per-base-row work happens in C, which is the point.
    """

    def __init__(
        self,
        database: "Database",
        table: str,
        alias: str,
        key_columns: Sequence[str],
        output_keys: Sequence[str],
        aggregates: Sequence[tuple[str, str | None]],
        output_aggregates: Sequence[str],
        storage_filter: Any = None,
        distinct: bool = False,
        tracer: Tracer | None = None,
        stats: ExecutionStats | None = None,
    ) -> None:
        super().__init__(tuple(output_keys) + tuple(output_aggregates), tracer)
        self._db = database
        self.table = table
        self.alias = alias
        self._key_columns = tuple(key_columns)
        self._aggregates = tuple(aggregates)
        self.storage_filter = storage_filter
        self._distinct = distinct
        self._stats = stats

    def rows(self) -> Iterator[AnnotatedTuple]:
        where_sql: str | None = None
        params: tuple[Any, ...] = ()
        if self.storage_filter is not None:
            where_sql = self.storage_filter.sql
            params = self.storage_filter.params
        for row in self._db.scan_aggregate(
            self.table, self._key_columns, self._aggregates, where_sql, params
        ):
            values, concat = row[:-1], row[-1]
            if self._stats is not None:
                self._stats.count_scanned()
            source_rows: frozenset[tuple[str, int]] = frozenset()
            if concat:
                source_rows = frozenset(
                    (self.table, int(row_id))
                    for row_id in str(concat).split(",")
                )
            yield AnnotatedTuple(values=tuple(values), source_rows=source_rows)

    def describe(self) -> str:
        kind = "distinct" if self._distinct else "group"
        base = f"StorageAggregate({kind} {self.table})"
        if self.storage_filter is not None:
            base = f"{base} [pushed: {self.storage_filter}]"
        return base


class SortOperator(Operator):
    """Order by expressions; NULLs sort first ascending, last descending."""

    def __init__(
        self,
        child: Operator,
        keys: Sequence[Expression],
        descending: Sequence[bool] = (),
        tracer: Tracer | None = None,
    ) -> None:
        super().__init__(child.schema, tracer)
        self._child = child
        self._keys = tuple(keys)
        self._descending = tuple(descending) or tuple(False for _ in keys)

    def rows(self) -> Iterator[AnnotatedTuple]:
        rows = list(self._child)
        # Stable multi-key sort: apply keys right-to-left.
        for key, descending in reversed(list(zip(self._keys, self._descending))):
            rows.sort(
                key=lambda row: _sort_token(key.evaluate(row, self.schema)),
                reverse=descending,
            )
        yield from rows

    def describe(self) -> str:
        rendered = ", ".join(
            f"{key}{' DESC' if desc else ''}"
            for key, desc in zip(self._keys, self._descending)
        )
        return f"Sort({rendered})"


def _sort_token(value: Any) -> tuple[int, Any]:
    """Total-order token: None < numbers < strings < everything else."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    if isinstance(value, str):
        return (2, value)
    return (3, str(value))


class LimitOperator(Operator):
    """Emit at most ``count`` rows."""

    def __init__(
        self, child: Operator, count: int, tracer: Tracer | None = None
    ) -> None:
        super().__init__(child.schema, tracer)
        self._child = child
        self.count = count

    def rows(self) -> Iterator[AnnotatedTuple]:
        emitted = 0
        for row in self._child:
            if emitted >= self.count:
                return
            emitted += 1
            yield row

    def describe(self) -> str:
        return f"Limit({self.count})"


class UnionOperator(Operator):
    """Bag union of two arity-compatible inputs (left's schema wins)."""

    def __init__(
        self, left: Operator, right: Operator, tracer: Tracer | None = None
    ) -> None:
        if len(left.schema) != len(right.schema):
            raise PlanError(
                f"union arity mismatch: {len(left.schema)} vs {len(right.schema)}"
            )
        super().__init__(left.schema, tracer)
        self._left = left
        self._right = right

    def rows(self) -> Iterator[AnnotatedTuple]:
        yield from self._left
        rename = dict(zip(self._right.schema, self.schema))
        for row in self._right:
            row.rename_attachment_columns(rename)
            yield row

    def describe(self) -> str:
        return "Union(all)"
