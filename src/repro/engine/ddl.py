"""DDL / DML statements for the InsightNotes dialect.

Completes the SQL surface so a Gate session never needs the Python API
for data definition:

* ``CREATE TABLE name (col, col, ...)`` — columns are untyped, matching
  the engine's dynamic typing;
* ``INSERT INTO name VALUES (lit, ...), (lit, ...), ...``;
* ``DELETE FROM name [WHERE predicate]`` — rows are deleted through the
  full cascade (annotations detach or die, summaries drop), and the
  predicate may use summary functions, so ``DELETE FROM m WHERE
  SUMMARY_COUNT('Beliefs', 'refute') > 3`` is a one-line curation action.

The dispatcher (:func:`execute_statement`) routes SELECT/ZOOMIN to their
existing paths, so ``session.execute(text)`` accepts any statement the
system understands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.engine.expressions import Expression, uses_summaries
from repro.engine.operators import HydrateOperator, Operator, ScanOperator
from repro.engine.sqlparser import _Parser, tokenize_sql
from repro.errors import SQLSyntaxError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.results import QueryResult
    from repro.engine.session import InsightNotes
    from repro.zoomin.executor import ZoomInResult


@dataclass(frozen=True)
class CreateTable:
    """Parsed ``CREATE TABLE`` statement."""

    table: str
    columns: tuple[str, ...]


@dataclass(frozen=True)
class InsertInto:
    """Parsed ``INSERT INTO ... VALUES`` statement."""

    table: str
    rows: tuple[tuple[Any, ...], ...]


@dataclass(frozen=True)
class DeleteFrom:
    """Parsed ``DELETE FROM`` statement."""

    table: str
    predicate: Expression | None


Statement = CreateTable | InsertInto | DeleteFrom


class _DDLParser(_Parser):
    """Extends the SELECT parser's machinery for DDL/DML statements."""

    def parse_create_table(self) -> CreateTable:
        self._expect_word("create")
        self._expect_word("table")
        table = self._expect("ident").value
        if "." in table:
            raise SQLSyntaxError(f"table names cannot be qualified: {table!r}")
        self._expect("op", "(")
        columns = [self._expect("ident").value]
        while self._accept("op", ","):
            columns.append(self._expect("ident").value)
        self._expect("op", ")")
        self._expect("eof")
        return CreateTable(table, tuple(columns))

    def parse_insert(self) -> InsertInto:
        self._expect_word("insert")
        self._expect_word("into")
        table = self._expect("ident").value
        self._expect_word("values")
        rows = [self._parse_value_row()]
        while self._accept("op", ","):
            rows.append(self._parse_value_row())
        self._expect("eof")
        return InsertInto(table, tuple(rows))

    def _parse_value_row(self) -> tuple[Any, ...]:
        self._expect("op", "(")
        values = [self._parse_insert_value()]
        while self._accept("op", ","):
            values.append(self._parse_insert_value())
        self._expect("op", ")")
        return tuple(values)

    def _parse_insert_value(self) -> Any:
        if self._accept("keyword", "null"):
            return None
        if self._check("op", "-"):
            self._advance()
            token = self._expect("number")
            return -(float(token.value) if "." in token.value else int(token.value))
        value = self._parse_literal_value()
        return value

    def parse_delete(self) -> DeleteFrom:
        self._expect_word("delete")
        self._expect("keyword", "from")
        table = self._expect("ident").value
        predicate = None
        if self._accept("keyword", "where"):
            predicate = self.parse_expression()
        self._expect("eof")
        return DeleteFrom(table, predicate)

    def _expect_word(self, word: str) -> None:
        """Expect a bare word that is not in the SELECT keyword set."""
        token = self._current
        if token.kind in ("ident", "keyword") and token.value.lower() == word:
            self._advance()
            return
        raise SQLSyntaxError(
            f"expected {word.upper()!r}, found {token.value!r}",
            token.position,
        )


def leading_word(text: str) -> str:
    """Lower-cased first word of a statement (dispatch key)."""
    stripped = text.strip()
    return stripped.split(None, 1)[0].lower() if stripped else ""


def parse_ddl(text: str) -> Statement:
    """Parse a CREATE TABLE / INSERT INTO / DELETE FROM statement."""
    tokens = tokenize_sql(text.strip().rstrip(";"))
    parser = _DDLParser(tokens)
    word = leading_word(text)
    if word == "create":
        return parser.parse_create_table()
    if word == "insert":
        return parser.parse_insert()
    if word == "delete":
        return parser.parse_delete()
    raise SQLSyntaxError(f"unsupported statement: {word!r}")


def execute_statement(
    session: "InsightNotes", text: str
) -> "QueryResult | ZoomInResult | str":
    """Run any statement the dialect understands.

    SELECT returns a :class:`QueryResult`, ZOOMIN a
    :class:`~repro.zoomin.executor.ZoomInResult`; DDL/DML return a short
    status message.
    """
    word = leading_word(text)
    if word == "select":
        return session.query(text)
    if word == "zoomin":
        return session.zoomin(text)
    statement = parse_ddl(text)
    if isinstance(statement, CreateTable):
        session.create_table(statement.table, statement.columns)
        return f"table {statement.table!r} created"
    if isinstance(statement, InsertInto):
        for row in statement.rows:
            session.insert(statement.table, row)
        return f"{len(statement.rows)} row(s) inserted into {statement.table!r}"
    assert isinstance(statement, DeleteFrom)
    deleted = _execute_delete(session, statement)
    return f"{deleted} row(s) deleted from {statement.table!r}"


def _execute_delete(session: "InsightNotes", statement: DeleteFrom) -> int:
    """Collect matching row ids (summaries in scope), then cascade-delete."""
    predicate = statement.predicate
    if predicate is not None:
        predicate = session.flatten_predicate(predicate)
    source: Operator = ScanOperator(
        session.db, statement.table, statement.table
    )
    if predicate is not None and uses_summaries(predicate):
        # Only summary-function predicates (SUMMARY_COUNT/GROUP_COUNT)
        # need hydrated rows; plain value predicates run on the raw scan.
        source = HydrateOperator(
            source,
            session.annotations,
            session.catalog,
            statement.table,
            statement.table,
            manager=session.manager,
        )
    doomed: list[int] = []
    for row in source:
        if predicate is None or predicate.evaluate(row, source.schema):
            ((_table, row_id),) = row.source_rows
            doomed.append(row_id)
    for row_id in doomed:
        session.delete_row(statement.table, row_id)
    return len(doomed)
