"""Uncorrelated subquery flattening.

The dialect supports ``operand IN (SELECT single_column FROM ...)`` for
uncorrelated subqueries.  Before planning, the session executes each
subquery once and substitutes an :class:`~repro.engine.expressions.InList`
over its values — the classical flattening rewrite.  This module holds
the expression-tree rewriter; the execution callback is supplied by the
session (it owns planner access).
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.engine.expressions import (
    Arithmetic,
    BooleanOp,
    Comparison,
    Expression,
    InList,
    InSubquery,
    IsNull,
    Like,
    Not,
    ScalarFunction,
)

#: Executes a SelectStatement and returns its single column's values.
SubqueryRunner = Callable[[Any], tuple[Any, ...]]


def flatten_expression(
    expression: Expression, run_subquery: SubqueryRunner
) -> Expression:
    """Return ``expression`` with every :class:`InSubquery` flattened.

    Composite nodes are rebuilt only when a child changed, so trees
    without subqueries come back identical (cheap common case).
    """
    if isinstance(expression, InSubquery):
        operand = flatten_expression(expression.operand, run_subquery)
        values = run_subquery(expression.statement)
        return InList(operand, tuple(values))
    if isinstance(expression, BooleanOp):
        operands = tuple(
            flatten_expression(part, run_subquery)
            for part in expression.operands
        )
        if operands == expression.operands:
            return expression
        return BooleanOp(expression.op, operands)
    if isinstance(expression, Not):
        operand = flatten_expression(expression.operand, run_subquery)
        return expression if operand is expression.operand else Not(operand)
    if isinstance(expression, Comparison):
        left = flatten_expression(expression.left, run_subquery)
        right = flatten_expression(expression.right, run_subquery)
        if left is expression.left and right is expression.right:
            return expression
        return Comparison(expression.op, left, right)
    if isinstance(expression, Arithmetic):
        left = flatten_expression(expression.left, run_subquery)
        right = flatten_expression(expression.right, run_subquery)
        if left is expression.left and right is expression.right:
            return expression
        return Arithmetic(expression.op, left, right)
    if isinstance(expression, Like):
        operand = flatten_expression(expression.operand, run_subquery)
        if operand is expression.operand:
            return expression
        return Like(operand, expression.pattern)
    if isinstance(expression, IsNull):
        operand = flatten_expression(expression.operand, run_subquery)
        if operand is expression.operand:
            return expression
        return IsNull(operand, expression.negated)
    if isinstance(expression, InList):
        operand = flatten_expression(expression.operand, run_subquery)
        if operand is expression.operand:
            return expression
        return InList(operand, expression.values)
    if isinstance(expression, ScalarFunction):
        operand = flatten_expression(expression.operand, run_subquery)
        if operand is expression.operand:
            return expression
        return ScalarFunction(expression.name, operand)
    # Leaves (Column, Literal, summary functions) contain no subqueries.
    return expression


def contains_subquery(expression: Expression) -> bool:
    """True when the tree contains at least one :class:`InSubquery`."""
    if isinstance(expression, InSubquery):
        return True
    for attribute in ("operand", "left", "right"):
        child = getattr(expression, attribute, None)
        if isinstance(child, Expression) and contains_subquery(child):
            return True
    operands = getattr(expression, "operands", ())
    return any(
        isinstance(part, Expression) and contains_subquery(part)
        for part in operands
    )
