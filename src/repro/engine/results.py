"""Query results and the QID registry.

Every executed query gets a unique **QID** and its materialized result is
kept in a registry, because zoom-in commands reference results by QID
("ZoomIn Reference QID = 101 ...").  The registry is bounded; evicted
results can still be recomputed by re-running their plan, which is exactly
the cost the zoom-in cache (RCO policy) exists to avoid.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro.concurrency import make_lock
from repro.errors import UnknownQueryIdError
from repro.model.tuple import AnnotatedTuple


@dataclass
class QueryResult:
    """A materialized query result with its annotation summaries.

    Attributes
    ----------
    qid:
        Unique id assigned at execution time; zoom-in references it.
    columns:
        Output schema (qualified column names).
    tuples:
        The result tuples, each carrying its summary objects.
    sql:
        The originating SQL text ("" for programmatic plans).
    plan_text:
        Rendering of the executed physical plan.
    plan_cost:
        Structural cost estimate of the plan (RCO's complexity factor).
    cost_estimate:
        The cost model's abstract-unit estimate of re-running the plan
        (:class:`~repro.engine.cost.CostModel`); 0.0 when the session
        did not price the plan.  The zoom-in cache's admission policy
        uses this as the recompute price.
    elapsed_seconds:
        Wall-clock execution time.
    trace:
        The :class:`~repro.engine.operators.Tracer` holding per-operator
        intermediate tuples when the query ran with tracing enabled.
    stats:
        The :class:`~repro.engine.operators.ExecutionStats` counters
        (``rows_scanned``, ``rows_hydrated``, ``hydration_blocks``)
        populated during execution; None for deserialized or
        programmatically assembled results.
    """

    qid: int
    columns: tuple[str, ...]
    tuples: list[AnnotatedTuple]
    sql: str = ""
    plan_text: str = ""
    plan_cost: int = 1
    cost_estimate: float = 0.0
    elapsed_seconds: float = 0.0
    trace: Any | None = None
    stats: Any | None = None

    def __len__(self) -> int:
        return len(self.tuples)

    def rows(self) -> list[tuple[Any, ...]]:
        """Plain value rows, without summaries."""
        return [row.values for row in self.tuples]

    def column_index(self, name: str) -> int:
        """Resolve an output column name (qualified or suffix)."""
        from repro.engine.expressions import resolve_column

        return resolve_column(self.columns, name)

    def size_estimate(self) -> int:
        """Approximate in-memory footprint (RCO's overhead factor)."""
        total = 64
        for row in self.tuples:
            total += 16
            for value in row.values:
                total += len(value) if isinstance(value, str) else 8
            total += row.total_summary_size()
            total += 16 * len(row.attachments)
        return total

    def summary_instances(self) -> list[str]:
        """Names of summary instances present anywhere in the result."""
        names: set[str] = set()
        for row in self.tuples:
            names.update(row.summaries)
        return sorted(names)

    # -- serialization (disk-based result cache) -----------------------

    def to_json(self) -> dict[str, Any]:
        """JSON-able form of the full result, summaries included.

        The operator trace is not serialized — it is a debugging view,
        not part of the result.
        """
        return {
            "qid": self.qid,
            "columns": list(self.columns),
            "sql": self.sql,
            "plan_text": self.plan_text,
            "plan_cost": self.plan_cost,
            "cost_estimate": self.cost_estimate,
            "elapsed_seconds": self.elapsed_seconds,
            "tuples": [
                {
                    "values": list(row.values),
                    "summaries": {
                        name: obj.to_json()
                        for name, obj in row.summaries.items()
                    },
                    "attachments": {
                        str(annotation_id): sorted(columns)
                        for annotation_id, columns in row.attachments.items()
                    },
                    "source_rows": sorted(
                        [table, row_id] for table, row_id in row.source_rows
                    ),
                }
                for row in self.tuples
            ],
        }

    @classmethod
    def from_json(cls, data: dict[str, Any], registry) -> "QueryResult":
        """Rebuild a result serialized by :meth:`to_json`.

        ``registry`` is the summary-type registry used to revive the
        summary objects.
        """
        tuples = []
        for entry in data["tuples"]:
            tuples.append(
                AnnotatedTuple(
                    values=tuple(entry["values"]),
                    summaries={
                        name: registry.object_from_json(obj)
                        for name, obj in entry["summaries"].items()
                    },
                    attachments={
                        int(annotation_id): frozenset(columns)
                        for annotation_id, columns in entry["attachments"].items()
                    },
                    source_rows=frozenset(
                        (table, row_id)
                        for table, row_id in entry["source_rows"]
                    ),
                )
            )
        return cls(
            qid=data["qid"],
            columns=tuple(data["columns"]),
            tuples=tuples,
            sql=data.get("sql", ""),
            plan_text=data.get("plan_text", ""),
            plan_cost=data.get("plan_cost", 1),
            cost_estimate=data.get("cost_estimate", 0.0),
            elapsed_seconds=data.get("elapsed_seconds", 0.0),
        )


class ResultRegistry:
    """Bounded QID -> :class:`QueryResult` map, oldest-first eviction.

    Results must remain addressable long enough for a user to issue
    zoom-in commands against them; the bounds keep an interactive session
    from accumulating every result ever produced.  Two bounds apply:
    ``capacity`` caps the result *count* (the original FIFO behaviour)
    and ``capacity_bytes`` caps the total estimated footprint using
    :meth:`QueryResult.size_estimate` — the RCO overhead factor — so a
    handful of huge results can no longer pin an unbounded number of
    bytes behind a generous count limit.  The newest result is always
    retained, even when it alone exceeds the byte budget (evicting the
    result just handed to the caller would be absurd).
    """

    #: Default byte budget: 64 MiB of estimated result footprint.
    DEFAULT_CAPACITY_BYTES = 64 * 1024 * 1024

    def __init__(
        self,
        capacity: int = 256,
        capacity_bytes: int = DEFAULT_CAPACITY_BYTES,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if capacity_bytes < 1:
            raise ValueError(
                f"capacity_bytes must be >= 1, got {capacity_bytes}"
            )
        self._capacity = capacity
        self._capacity_bytes = capacity_bytes
        self._results: OrderedDict[int, QueryResult] = OrderedDict()
        #: qid -> size_estimate() at registration time.  Sizes are
        #: captured once — results are immutable after execution — so
        #: eviction never re-walks every stored tuple.
        self._sizes: dict[int, int] = {}
        self._total_bytes = 0
        # itertools.count.__next__ is atomic under the GIL, but the
        # registry map and its eviction loop are not — one lock for both.
        self._lock = make_lock("engine.results")
        self._qid_counter = itertools.count(101)  # matches the paper's QID=101

    def next_qid(self) -> int:
        """Allocate the next query id."""
        return next(self._qid_counter)

    @property
    def total_bytes(self) -> int:
        """Current estimated footprint of every retained result."""
        with self._lock:
            return self._total_bytes

    def register(self, result: QueryResult) -> None:
        """Store a result, evicting oldest-first past either bound."""
        size = result.size_estimate()
        with self._lock:
            evicted = self._results.pop(result.qid, None)
            if evicted is not None:
                self._total_bytes -= self._sizes.pop(result.qid, 0)
            self._results[result.qid] = result
            self._sizes[result.qid] = size
            self._total_bytes += size
            while len(self._results) > 1 and (
                len(self._results) > self._capacity
                or self._total_bytes > self._capacity_bytes
            ):
                qid, _ = self._results.popitem(last=False)
                self._total_bytes -= self._sizes.pop(qid, 0)

    def get(self, qid: int) -> QueryResult:
        """Look up a result or raise :class:`UnknownQueryIdError`."""
        with self._lock:
            try:
                return self._results[qid]
            except KeyError:
                raise UnknownQueryIdError(qid) from None

    def __contains__(self, qid: int) -> bool:
        with self._lock:
            return qid in self._results

    def __len__(self) -> int:
        with self._lock:
            return len(self._results)

    def latest(self) -> QueryResult | None:
        """The most recently registered result, if any."""
        with self._lock:
            if not self._results:
                return None
            return next(reversed(self._results.values()))
