"""Catalog statistics and the cost model behind the cost-based planner.

DESIGN.md §13.  Three pieces live here:

* :class:`CatalogStatistics` — per-table statistics (row counts,
  per-column distinct values, per-instance summary-object counts and
  serialized bytes, attachment counts), collected by ``ANALYZE``
  (:meth:`CatalogStatistics.analyze`), kept roughly current by
  incremental upkeep on ingest, persisted through
  :class:`~repro.storage.planner_stats.PlannerStatsStore`, and refined
  by live execution feedback (observed ``rows_scanned`` of full scans).
* :class:`CostModel` — prices a logical plan bottom-up into a
  :class:`CostEstimate` (output cardinality + abstract cost units).
  The units are calibrated relative to each other, not to wall-clock:
  streaming a row costs ~1, evaluating a predicate a fraction of that,
  hydrating a row several times more (plus a per-byte term for summary
  deserialization).  Every estimate degrades gracefully — with no
  statistics at all the model falls back to fixed defaults that still
  rank a cross join above an equi join and hydration above residual
  evaluation, so plans stay valid (if less sharp) when ``planner_stats``
  is empty or stale.
* :class:`PlannerCounters` — thread-safe counters the planner bumps as
  it costs plans, surfaced through ``InsightNotes.statistics()`` and
  the serve ``stats`` op.

The cost model never mutates plans; all rewrites live in
:class:`~repro.engine.planner.Planner`, which consults this module and
only ever chooses among Theorem 1–2-equivalent alternatives.
"""

from __future__ import annotations

import math
import time
from collections.abc import Callable, Iterator, Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.concurrency import make_lock
from repro.engine import plan as lp
from repro.engine.expressions import (
    BooleanOp,
    Column,
    Comparison,
    Expression,
    ExpressionError,
    InList,
    IsNull,
    Like,
    Not,
    resolve_column,
    uses_summaries,
)
from repro.errors import UnknownTableError
from repro.storage.annotations import AnnotationStore
from repro.storage.catalog import SummaryCatalog
from repro.storage.database import Database
from repro.storage.planner_stats import PlannerStatsStore

if TYPE_CHECKING:
    from repro.engine.operators import ExecutionStats

_ANALYZED_AT_KEY = "analyzed_at"
_ROW_COUNT_KEY = "row_count"
_ANNOTATIONS_KEY = "annotations"
_NDV_PREFIX = "ndv:"
_SUMMARY_COUNT_PREFIX = "summary_count:"
_SUMMARY_BYTES_PREFIX = "summary_bytes:"


@dataclass
class TableStats:
    """Everything the cost model knows about one table."""

    table: str
    row_count: float = 0.0
    #: column name -> distinct non-NULL values (lower bound on shards).
    ndv: dict[str, float] = field(default_factory=dict)
    #: instance name -> (stored object count, total serialized bytes).
    summary_objects: dict[str, tuple[float, float]] = field(
        default_factory=dict
    )
    #: attachment rows targeting the table.
    annotations: float = 0.0
    #: epoch seconds of the collecting ANALYZE; None when the stats were
    #: only seeded from a COUNT(*) or execution feedback.
    analyzed_at: float | None = None
    #: ingest events since the last ANALYZE (drift indicator).
    pending_changes: float = 0.0

    def column_ndv(self, column: str) -> float | None:
        """Distinct values of ``column``, clamped into [1, row_count]."""
        value = self.ndv.get(column)
        if value is None:
            return None
        return max(1.0, min(value, max(self.row_count, 1.0)))

    def to_stat_map(self) -> dict[str, float]:
        """Flat key->value form for :class:`PlannerStatsStore`."""
        stats: dict[str, float] = {
            _ROW_COUNT_KEY: self.row_count,
            _ANNOTATIONS_KEY: self.annotations,
        }
        if self.analyzed_at is not None:
            stats[_ANALYZED_AT_KEY] = self.analyzed_at
        for column, value in self.ndv.items():
            stats[f"{_NDV_PREFIX}{column}"] = value
        for instance, (count, total) in self.summary_objects.items():
            stats[f"{_SUMMARY_COUNT_PREFIX}{instance}"] = count
            stats[f"{_SUMMARY_BYTES_PREFIX}{instance}"] = total
        return stats

    @classmethod
    def from_stat_map(
        cls, table: str, stats: Mapping[str, float]
    ) -> "TableStats":
        """Rebuild from the persisted flat form (inverse of to_stat_map)."""
        loaded = cls(table)
        counts: dict[str, float] = {}
        totals: dict[str, float] = {}
        for key, value in stats.items():
            if key == _ROW_COUNT_KEY:
                loaded.row_count = value
            elif key == _ANNOTATIONS_KEY:
                loaded.annotations = value
            elif key == _ANALYZED_AT_KEY:
                loaded.analyzed_at = value
            elif key.startswith(_NDV_PREFIX):
                loaded.ndv[key[len(_NDV_PREFIX):]] = value
            elif key.startswith(_SUMMARY_COUNT_PREFIX):
                counts[key[len(_SUMMARY_COUNT_PREFIX):]] = value
            elif key.startswith(_SUMMARY_BYTES_PREFIX):
                totals[key[len(_SUMMARY_BYTES_PREFIX):]] = value
        for instance in counts.keys() | totals.keys():
            loaded.summary_objects[instance] = (
                counts.get(instance, 0.0),
                totals.get(instance, 0.0),
            )
        return loaded

    def summary(self) -> dict[str, Any]:
        """Human-readable digest (the return value of ``analyze()``)."""
        return {
            "row_count": int(self.row_count),
            "columns_analyzed": len(self.ndv),
            "summary_instances": len(self.summary_objects),
            "summary_objects": int(
                sum(count for count, _ in self.summary_objects.values())
            ),
            "summary_bytes": int(
                sum(total for _, total in self.summary_objects.values())
            ),
            "annotations": int(self.annotations),
            "analyzed_at": self.analyzed_at,
        }


class CatalogStatistics:
    """Statistics registry: collection, upkeep, persistence, feedback.

    Thread-safe; the planner reads it on every costed plan while ingest
    paths bump the incremental counters.
    """

    def __init__(
        self,
        database: Database,
        annotations: AnnotationStore,
        catalog: SummaryCatalog,
        store: PlannerStatsStore | None = None,
    ) -> None:
        self._db = database
        self._annotations = annotations
        self._catalog = catalog
        self._store = store
        self._lock = make_lock("engine.cost_stats")
        self._tables: dict[str, TableStats] = {}
        self._loaded = False
        self._feedback_updates = 0

    # -- reads ---------------------------------------------------------

    def table_stats(self, table: str) -> TableStats | None:
        """Stats for ``table``, seeding a COUNT(*)-only stub on first use.

        The stub keeps never-analyzed sessions sharp on the statistic
        that matters most (relative table sizes drive join order) while
        staying cheap — one COUNT(*) per table per session.
        """
        self._ensure_loaded()
        with self._lock:
            stats = self._tables.get(table)
            if stats is not None:
                return stats
        try:
            observed = float(self._db.row_count(table))
        except UnknownTableError:
            return None
        with self._lock:
            stats = self._tables.get(table)
            if stats is None:
                stats = TableStats(table, row_count=observed)
                self._tables[table] = stats
            return stats

    def freshness(self) -> dict[str, Any]:
        """How current the registry is (exposed via statistics())."""
        self._ensure_loaded()
        with self._lock:
            analyzed = [
                stats.analyzed_at
                for stats in self._tables.values()
                if stats.analyzed_at is not None
            ]
            return {
                "tables_tracked": len(self._tables),
                "tables_analyzed": len(analyzed),
                "pending_changes": int(
                    sum(
                        stats.pending_changes
                        for stats in self._tables.values()
                    )
                ),
                "last_analyzed_at": max(analyzed) if analyzed else None,
                "feedback_updates": self._feedback_updates,
            }

    # -- collection ----------------------------------------------------

    def analyze(self, table: str | None = None) -> dict[str, dict[str, Any]]:
        """Recollect statistics (one table, or all user tables).

        Runs COUNT(DISTINCT) per column plus the catalog/attachment
        aggregates, replaces the in-memory entry, and persists the
        result — the explicit refresh of the stats lifecycle.
        """
        tables = [table] if table is not None else self._db.tables()
        now = time.time()
        refreshed: dict[str, dict[str, Any]] = {}
        self._ensure_loaded()
        for name in tables:
            stats = self._collect(name, now)
            with self._lock:
                self._tables[name] = stats
            if self._store is not None:
                self._store.replace_table(name, stats.to_stat_map())
            refreshed[name] = stats.summary()
        return refreshed

    def _collect(self, table: str, now: float) -> TableStats:
        stats = TableStats(table, analyzed_at=now)
        stats.row_count = float(self._db.row_count(table))
        for column in self._db.columns(table):
            stats.ndv[column] = float(self._db.distinct_count(table, column))
        stats.annotations = float(
            self._annotations.table_attachment_count(table)
        )
        for instance, (count, total) in self._catalog.object_statistics(
            table
        ).items():
            stats.summary_objects[instance] = (float(count), float(total))
        return stats

    # -- incremental upkeep (ingest / maintenance hooks) ---------------

    def on_rows_inserted(self, table: str, count: int = 1) -> None:
        """Ingest hook: keep row counts current between ANALYZE runs."""
        self._ensure_loaded()
        with self._lock:
            stats = self._tables.get(table)
            if stats is None:
                return  # never costed or analyzed — the seed will be fresh
            stats.row_count += count
            stats.pending_changes += count

    def on_rows_deleted(self, table: str, count: int = 1) -> None:
        self._ensure_loaded()
        with self._lock:
            stats = self._tables.get(table)
            if stats is None:
                return
            stats.row_count = max(0.0, stats.row_count - count)
            stats.pending_changes += count

    def on_annotations_changed(self, table: str, delta: int) -> None:
        """Annotation ingest/unlink hook (``delta`` may be negative)."""
        self._ensure_loaded()
        with self._lock:
            stats = self._tables.get(table)
            if stats is None:
                return
            stats.annotations = max(0.0, stats.annotations + delta)
            stats.pending_changes += abs(delta)

    # -- execution feedback --------------------------------------------

    def observe_execution(
        self, root: lp.PlanNode, stats: "ExecutionStats"
    ) -> None:
        """Refine row counts from a finished query's ExecutionStats.

        Only the unambiguous observation is used: a plan with exactly
        one scan, no pushed filter/limit and no LIMIT operator reads the
        whole table, so its ``rows_scanned`` *is* the current row count.
        """
        scans = [node for node in lp.walk(root) if isinstance(node, lp.Scan)]
        if len(scans) != 1:
            return
        scan = scans[0]
        if scan.storage_filter is not None or scan.storage_limit is not None:
            return
        if any(isinstance(node, lp.Limit) for node in lp.walk(root)):
            return  # an engine-side LIMIT may stop the scan early
        observed = float(stats.rows_scanned)
        self._ensure_loaded()
        with self._lock:
            entry = self._tables.get(scan.table)
            if entry is None:
                entry = TableStats(scan.table)
                self._tables[scan.table] = entry
            if entry.row_count != observed:
                entry.row_count = observed
                self._feedback_updates += 1

    # -- internals -----------------------------------------------------

    def _ensure_loaded(self) -> None:
        """Load persisted stats once, lazily — called *before* taking
        the lock, never under it (the store read is SQL; IN001/IN007
        forbid holding ``engine.cost_stats`` across it).

        Double-checked: racing callers may both read the store, but one
        merge wins and loaded rows never clobber entries that appeared
        in the meantime (a live counter bump is fresher than the
        persisted snapshot it would overwrite).
        """
        with self._lock:
            if self._loaded:
                return
            if self._store is None:
                self._loaded = True
                return
        loaded = self._store.load_all()  # SQL — lock released
        with self._lock:
            if self._loaded:
                return
            self._loaded = True
            for table, stat_map in loaded.items():
                self._tables.setdefault(
                    table, TableStats.from_stat_map(table, stat_map)
                )


@dataclass(frozen=True)
class CostEstimate:
    """Output cardinality + abstract cost of one plan subtree."""

    rows: float
    cost: float


class PlannerCounters:
    """Thread-safe planner observability counters."""

    _FIELDS = (
        "plans_costed",
        "join_orders_considered",
        "join_orders_rewritten",
        "hydrate_placements_flipped",
        "aggregates_pushed",
        "distincts_pushed",
    )

    def __init__(self) -> None:
        self._lock = make_lock("engine.planner_counters")
        self._counts = dict.fromkeys(self._FIELDS, 0)

    def record(self, name: str, count: int = 1) -> None:
        if name not in self._counts:
            raise KeyError(f"unknown planner counter {name!r}")
        with self._lock:
            self._counts[name] += count

    def to_json(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)


class CostModel:
    """Prices logical plans from catalog statistics.

    All constants are in abstract units relative to ``EMIT_ROW`` = the
    cost of streaming one tuple through an operator.  They were picked
    by calibrating the model against the rule-based planner on the
    bench workloads (bench_plan_cost.py), not measured per machine —
    only the *relative ordering* of plan alternatives matters.
    """

    #: Defaults when a table or column has no statistics at all.
    DEFAULT_ROWS = 1000.0
    DEFAULT_NDV = 10.0
    DEFAULT_SUMMARY_BYTES = 512.0

    EMIT_ROW = 1.0
    #: Pulling one row out of a storage cursor.
    SCAN_ROW = 0.2
    #: SQLite evaluating one pushed-down conjunct (C speed).
    STORAGE_PRED = 0.01
    #: SQLite grouping one row inside a pushed-down aggregation.
    STORAGE_GROUP_ROW = 0.05
    #: Evaluating one value-only conjunct in the engine.
    PRED = 0.1
    #: Evaluating one summary-function conjunct (touches objects).
    SUMMARY_PRED = 0.6
    #: Fixed per-row hydration overhead (attachment lookups, wiring).
    HYDRATE_ROW = 4.0
    #: Deserializing one summary object, plus per-byte JSON cost.
    HYDRATE_OBJECT = 2.0
    HYDRATE_BYTE = 0.004
    #: Hash-join build (right side) and probe (left side), per row.
    JOIN_BUILD = 1.5
    JOIN_PROBE = 1.0
    #: Group/duplicate bookkeeping and summary merging, per input row.
    GROUP_ROW = 1.5
    MERGE_ROW = 1.0
    SORT_ROW = 0.4

    #: Fallback selectivities when a predicate form carries no ndv info.
    EQ_SELECTIVITY_FLOOR = 0.001
    RANGE_SELECTIVITY = 1.0 / 3.0
    DEFAULT_SELECTIVITY = 0.3
    SUMMARY_SELECTIVITY = 0.5
    NULL_SELECTIVITY = 0.1
    LIKE_SELECTIVITY = 0.25

    def __init__(
        self,
        statistics: CatalogStatistics | None,
        schema_of: Callable[[lp.PlanNode], tuple[str, ...]],
    ) -> None:
        self._statistics = statistics
        self._schema_of = schema_of

    # -- public entry points -------------------------------------------

    def estimate(self, root: lp.PlanNode) -> CostEstimate:
        """Cardinality + cost of ``root``, bottom-up."""
        return self._estimate(root, self._alias_map(root))

    def filter_selectivity(
        self, predicate: Expression | None, child: lp.PlanNode
    ) -> float:
        """Fraction of ``child``'s rows surviving ``predicate``."""
        if predicate is None:
            return 1.0
        return self._selectivity(
            predicate, self._schema_of(child), self._alias_map(child)
        )

    def hydration_cost_per_row(
        self, table: str, instances: tuple[str, ...] | None
    ) -> float:
        """Estimated cost of hydrating one row of ``table``.

        ``instances`` follows Scan semantics: None = all linked, () =
        none (only attachments remain), a tuple = that subset.
        """
        stats = self._table_stats(table)
        cost = self.HYDRATE_ROW
        if stats is None:
            named = 1 if instances is None else len(instances)
            return cost + named * (
                self.HYDRATE_OBJECT
                + self.DEFAULT_SUMMARY_BYTES * self.HYDRATE_BYTE
            )
        rows = max(stats.row_count, 1.0)
        wanted = (
            stats.summary_objects.keys() if instances is None else instances
        )
        for instance in wanted:
            count, total = stats.summary_objects.get(instance, (0.0, 0.0))
            if count <= 0:
                continue
            # Coverage: a row only pays for instances that actually
            # stored an object for it.
            coverage = min(1.0, count / rows)
            cost += coverage * (
                self.HYDRATE_OBJECT + (total / count) * self.HYDRATE_BYTE
            )
        return cost

    def predicate_cost_per_row(self, predicate: Expression | None) -> float:
        """Engine-side evaluation cost of a predicate, per row."""
        if predicate is None:
            return 0.0
        cost = 0.0
        for conjunct in _conjuncts(predicate):
            cost += (
                self.SUMMARY_PRED if uses_summaries(conjunct) else self.PRED
            )
        return cost

    # -- per-node estimation -------------------------------------------

    def _estimate(
        self, node: lp.PlanNode, aliases: dict[str, str]
    ) -> CostEstimate:
        if isinstance(node, lp.Scan):
            return self._estimate_scan(node)
        if isinstance(node, lp.StorageAggregate):
            return self._estimate_storage_aggregate(node)
        if isinstance(node, lp.Hydrate):
            child = self._estimate(node.child, aliases)
            per_row = self.hydration_cost_per_row(node.table, node.instances)
            return CostEstimate(child.rows, child.cost + child.rows * per_row)
        if isinstance(node, lp.Select):
            child = self._estimate(node.child, aliases)
            schema = self._schema_of(node.child)
            selectivity = self._selectivity(node.predicate, schema, aliases)
            rows = child.rows * selectivity
            cost = child.cost + child.rows * self.predicate_cost_per_row(
                node.predicate
            )
            return CostEstimate(rows, cost)
        if isinstance(node, lp.Project):
            child = self._estimate(node.child, aliases)
            return CostEstimate(
                child.rows, child.cost + child.rows * 0.5 * self.SCAN_ROW
            )
        if isinstance(node, lp.Compute):
            child = self._estimate(node.child, aliases)
            return CostEstimate(
                child.rows,
                child.cost + child.rows * len(node.items) * self.PRED,
            )
        if isinstance(node, lp.Join):
            return self._estimate_join(node, aliases)
        if isinstance(node, lp.GroupBy):
            return self._estimate_group_by(node, aliases)
        if isinstance(node, lp.Distinct):
            child = self._estimate(node.child, aliases)
            rows = self._group_cardinality(
                self._schema_of(node.child), child.rows, aliases
            )
            cost = child.cost + child.rows * (self.GROUP_ROW + self.MERGE_ROW)
            return CostEstimate(rows, cost)
        if isinstance(node, lp.Sort):
            child = self._estimate(node.child, aliases)
            comparisons = child.rows * math.log2(child.rows + 2.0)
            return CostEstimate(
                child.rows, child.cost + comparisons * self.SORT_ROW
            )
        if isinstance(node, lp.Limit):
            child = self._estimate(node.child, aliases)
            rows = min(child.rows, float(node.count))
            return CostEstimate(rows, child.cost + rows * 0.1 * self.EMIT_ROW)
        if isinstance(node, lp.Union):
            left = self._estimate(node.left, aliases)
            right = self._estimate(node.right, aliases)
            rows = left.rows + right.rows
            cost = left.cost + right.cost + rows * self.EMIT_ROW
            if node.distinct:
                rows *= 0.5
                cost += (left.rows + right.rows) * self.GROUP_ROW
            return CostEstimate(rows, cost)
        # Unknown node type: pass the (single) child through unchanged.
        children = node.children()
        if len(children) == 1:
            return self._estimate(children[0], aliases)
        total_rows = 0.0
        total_cost = 0.0
        for child_node in children:
            child = self._estimate(child_node, aliases)
            total_rows += child.rows
            total_cost += child.cost
        return CostEstimate(max(total_rows, 1.0), total_cost)

    def _estimate_scan(self, node: lp.Scan) -> CostEstimate:
        base = self._table_rows(node.table)
        rows = base
        cost = base * self.SCAN_ROW
        if node.storage_filter is not None:
            conjunct_count = str(node.storage_filter).count(" AND ") + 1
            rows *= self.DEFAULT_SELECTIVITY**conjunct_count
            cost = (
                base * conjunct_count * self.STORAGE_PRED
                + rows * self.SCAN_ROW
            )
        if node.storage_limit is not None:
            capped = min(rows, float(node.storage_limit))
            if rows > 0:
                cost *= max(capped / rows, 0.01)
            rows = capped
        return CostEstimate(max(rows, 0.1), cost)

    def _estimate_storage_aggregate(
        self, node: lp.StorageAggregate
    ) -> CostEstimate:
        base = self._table_rows(node.table)
        scanned = base
        if node.storage_filter is not None:
            conjunct_count = str(node.storage_filter).count(" AND ") + 1
            scanned *= self.DEFAULT_SELECTIVITY**conjunct_count
        if node.key_columns:
            stats = self._table_stats(node.table)
            groups = 1.0
            for column in node.key_columns:
                ndv = None
                if stats is not None:
                    ndv = stats.column_ndv(column)
                groups *= ndv if ndv is not None else self.DEFAULT_NDV
            rows = min(scanned, groups)
        else:
            rows = 1.0
        cost = (
            base * self.STORAGE_PRED
            + scanned * self.STORAGE_GROUP_ROW
            + rows * self.EMIT_ROW
        )
        return CostEstimate(max(rows, 0.1), cost)

    def _estimate_join(
        self, node: lp.Join, aliases: dict[str, str]
    ) -> CostEstimate:
        left = self._estimate(node.left, aliases)
        right = self._estimate(node.right, aliases)
        left_schema = self._schema_of(node.left)
        right_schema = self._schema_of(node.right)
        build_probe = (
            right.rows * self.JOIN_BUILD + left.rows * self.JOIN_PROBE
        )
        if node.predicate is None:
            rows = left.rows * right.rows
            cost = left.cost + right.cost + build_probe + rows * self.EMIT_ROW
            return CostEstimate(max(rows, 0.1), cost)
        equi_ndvs: list[float] = []
        residual_selectivity = 1.0
        residual_count = 0
        for conjunct in _conjuncts(node.predicate):
            ndv = self._equi_ndv(
                conjunct, left_schema, right_schema, aliases
            )
            if ndv is not None:
                equi_ndvs.append(ndv)
            else:
                residual_count += 1
                residual_selectivity *= self._selectivity(
                    conjunct, left_schema + right_schema, aliases
                )
        if equi_ndvs:
            matched = left.rows * right.rows
            for ndv in equi_ndvs:
                matched /= max(ndv, 1.0)
            rows = matched * residual_selectivity
            cost = (
                left.cost
                + right.cost
                + build_probe
                + matched * (self.EMIT_ROW + residual_count * self.PRED)
            )
        else:
            pairs = left.rows * right.rows
            rows = pairs * residual_selectivity
            cost = (
                left.cost
                + right.cost
                + build_probe
                + pairs * max(residual_count, 1) * self.PRED
                + rows * self.EMIT_ROW
            )
        if node.outer:
            rows = max(rows, left.rows)
        return CostEstimate(max(rows, 0.1), cost)

    def _estimate_group_by(
        self, node: lp.GroupBy, aliases: dict[str, str]
    ) -> CostEstimate:
        child = self._estimate(node.child, aliases)
        schema = self._schema_of(node.child)
        if node.keys:
            keys = []
            for key in node.keys:
                try:
                    keys.append(schema[resolve_column(schema, key)])
                except ExpressionError:
                    keys.append(key)
            rows = self._group_cardinality(tuple(keys), child.rows, aliases)
        else:
            rows = 1.0
        cost = child.cost + child.rows * (
            self.GROUP_ROW
            + self.MERGE_ROW
            + len(node.aggregates) * self.PRED
        )
        if node.having is not None:
            cost += rows * self.predicate_cost_per_row(node.having)
            rows *= self.DEFAULT_SELECTIVITY
        return CostEstimate(max(rows, 0.1), cost)

    # -- selectivity ----------------------------------------------------

    def _selectivity(
        self,
        predicate: Expression,
        schema: tuple[str, ...],
        aliases: dict[str, str],
    ) -> float:
        if uses_summaries(predicate):
            return self.SUMMARY_SELECTIVITY
        if isinstance(predicate, BooleanOp):
            parts = [
                self._selectivity(operand, schema, aliases)
                for operand in predicate.operands
            ]
            if predicate.op == "and":
                product = 1.0
                for part in parts:
                    product *= part
                return product
            return min(1.0, sum(parts))
        if isinstance(predicate, Not):
            return max(
                0.05,
                1.0 - self._selectivity(predicate.operand, schema, aliases),
            )
        if isinstance(predicate, Comparison):
            return self._comparison_selectivity(predicate, schema, aliases)
        if isinstance(predicate, InList):
            ndv = self._operand_ndv(predicate.operand, schema, aliases)
            if ndv is not None:
                return min(1.0, len(predicate.values) / ndv)
            return min(1.0, len(predicate.values) * 0.05)
        if isinstance(predicate, IsNull):
            base = self.NULL_SELECTIVITY
            return 1.0 - base if predicate.negated else base
        if isinstance(predicate, Like):
            return self.LIKE_SELECTIVITY
        return self.DEFAULT_SELECTIVITY

    def _comparison_selectivity(
        self,
        predicate: Comparison,
        schema: tuple[str, ...],
        aliases: dict[str, str],
    ) -> float:
        if predicate.op == "=":
            ndv = self._operand_ndv(predicate.left, schema, aliases)
            other = self._operand_ndv(predicate.right, schema, aliases)
            if ndv is not None and other is not None:
                # column = column: the larger side bounds the match rate.
                return 1.0 / max(ndv, other, 1.0)
            chosen = ndv if ndv is not None else other
            if chosen is not None:
                return max(self.EQ_SELECTIVITY_FLOOR, 1.0 / chosen)
            return 0.1
        if predicate.op == "!=":
            equal = self._comparison_selectivity(
                Comparison("=", predicate.left, predicate.right),
                schema,
                aliases,
            )
            return max(0.05, 1.0 - equal)
        return self.RANGE_SELECTIVITY

    def _operand_ndv(
        self,
        operand: Expression,
        schema: tuple[str, ...],
        aliases: dict[str, str],
    ) -> float | None:
        """Distinct-value estimate of a Column operand (None otherwise)."""
        if not isinstance(operand, Column):
            return None
        try:
            qualified = schema[resolve_column(schema, operand.name)]
        except ExpressionError:
            return None
        alias, _, column = qualified.rpartition(".")
        table = aliases.get(alias)
        if table is None:
            return self.DEFAULT_NDV
        stats = self._table_stats(table)
        if stats is None:
            return self.DEFAULT_NDV
        ndv = stats.column_ndv(column)
        return ndv if ndv is not None else self.DEFAULT_NDV

    def _equi_ndv(
        self,
        conjunct: Expression,
        left_schema: tuple[str, ...],
        right_schema: tuple[str, ...],
        aliases: dict[str, str],
    ) -> float | None:
        """max(ndv_left, ndv_right) for an equi-join conjunct, else None."""
        if not (
            isinstance(conjunct, Comparison)
            and conjunct.op == "="
            and isinstance(conjunct.left, Column)
            and isinstance(conjunct.right, Column)
        ):
            return None
        if _resolves(left_schema, conjunct.left.name) and _resolves(
            right_schema, conjunct.right.name
        ):
            on_left, on_right = conjunct.left, conjunct.right
        elif _resolves(left_schema, conjunct.right.name) and _resolves(
            right_schema, conjunct.left.name
        ):
            on_left, on_right = conjunct.right, conjunct.left
        else:
            return None  # not one column per side: not a join key
        left_ndv = self._operand_ndv(on_left, left_schema, aliases)
        right_ndv = self._operand_ndv(on_right, right_schema, aliases)
        return max(
            left_ndv if left_ndv is not None else self.DEFAULT_NDV,
            right_ndv if right_ndv is not None else self.DEFAULT_NDV,
        )

    # -- stats plumbing -------------------------------------------------

    def _table_stats(self, table: str) -> TableStats | None:
        if self._statistics is None:
            return None
        return self._statistics.table_stats(table)

    def _table_rows(self, table: str) -> float:
        stats = self._table_stats(table)
        if stats is None:
            return self.DEFAULT_ROWS
        return max(stats.row_count, 1.0)

    def _group_cardinality(
        self,
        qualified_keys: tuple[str, ...],
        input_rows: float,
        aliases: dict[str, str],
    ) -> float:
        groups = 1.0
        for qualified in qualified_keys:
            alias, _, column = qualified.rpartition(".")
            stats = None
            table = aliases.get(alias)
            if table is not None:
                stats = self._table_stats(table)
            ndv = stats.column_ndv(column) if stats is not None else None
            groups *= ndv if ndv is not None else self.DEFAULT_NDV
            if groups >= input_rows:
                return max(input_rows, 1.0)
        return max(min(groups, input_rows), 1.0)

    def _alias_map(self, root: lp.PlanNode) -> dict[str, str]:
        aliases: dict[str, str] = {}
        for node in lp.walk(root):
            if isinstance(node, (lp.Scan, lp.Hydrate, lp.StorageAggregate)):
                aliases[node.alias] = node.table
        return aliases


def _conjuncts(predicate: Expression) -> Iterator[Expression]:
    """Flatten nested ANDs into top-level conjuncts."""
    if isinstance(predicate, BooleanOp) and predicate.op == "and":
        for operand in predicate.operands:
            yield from _conjuncts(operand)
    else:
        yield predicate


def _resolves(schema: tuple[str, ...], name: str) -> bool:
    try:
        resolve_column(schema, name)
    except ExpressionError:
        return False
    return True


__all__ = [
    "CatalogStatistics",
    "CostEstimate",
    "CostModel",
    "PlannerCounters",
    "TableStats",
]
