"""Logical query plans.

A logical plan is a tree of immutable nodes produced by the SQL parser (or
built programmatically) and consumed by the planner, which lowers it to a
physical operator pipeline.  Nodes describe *what* to compute; all
summary-propagation semantics live in the physical operators.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any

from repro.engine.expressions import Column, Expression
from repro.errors import PlanError

#: Aggregate function names the engine supports.
AGGREGATE_FUNCTIONS = ("count", "sum", "avg", "min", "max")


@dataclass(frozen=True)
class Aggregate:
    """One aggregate in a GROUP BY select list, e.g. ``SUM(r.b)``.

    ``argument`` is None only for ``COUNT(*)``.
    """

    function: str
    argument: Column | None = None

    def __post_init__(self) -> None:
        if self.function not in AGGREGATE_FUNCTIONS:
            raise PlanError(f"unknown aggregate function {self.function!r}")
        if self.argument is None and self.function != "count":
            raise PlanError(f"{self.function.upper()}(*) is not supported")

    @property
    def output_name(self) -> str:
        """Column name of the aggregate in the output schema."""
        inner = self.argument.name if self.argument is not None else "*"
        return f"{self.function}({inner})"

    def __str__(self) -> str:
        return self.output_name


class PlanNode(abc.ABC):
    """Base class of logical plan nodes."""

    @abc.abstractmethod
    def children(self) -> tuple["PlanNode", ...]:
        """Child nodes, left to right."""

    @abc.abstractmethod
    def describe(self) -> str:
        """One-line description used in plan renderings."""

    def render(self, indent: int = 0) -> str:
        """Multi-line indented tree rendering."""
        lines = ["  " * indent + self.describe()]
        for child in self.children():
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


@dataclass(frozen=True)
class Scan(PlanNode):
    """Scan a base table under an alias; columns come out qualified.

    ``instances`` restricts which linked summary instances are attached:
    ``None`` means all of them (the default), an empty tuple means none
    (annotation-free processing), and a non-empty tuple names the subset
    to carry — the WITH SUMMARIES clause of the dialect.
    """

    table: str
    alias: str
    instances: tuple[str, ...] | None = None
    #: Sargable predicate compiled to storage SQL (a StorageFilter from
    #: repro.engine.pushdown); typed loosely to avoid an import cycle.
    storage_filter: Any = None
    #: Row cap executed inside the storage statement (LIMIT pushdown).
    storage_limit: int | None = None

    def children(self) -> tuple[PlanNode, ...]:
        return ()

    def describe(self) -> str:
        base = (
            f"Scan({self.table})"
            if self.alias == self.table
            else f"Scan({self.table} AS {self.alias})"
        )
        if self.instances is not None:
            if not self.instances:
                base = f"{base} [no summaries]"
            else:
                base = f"{base} [summaries: {', '.join(self.instances)}]"
        if self.storage_filter is not None:
            base = f"{base} [pushed: {self.storage_filter}]"
        if self.storage_limit is not None:
            base = f"{base} [limit: {self.storage_limit}]"
        return base


@dataclass(frozen=True)
class Hydrate(PlanNode):
    """Attach summary objects and annotation markers to surviving rows.

    Inserted by the planner above a scan's residual selection — *late
    materialization*: only rows that survive filtering (and a pushed
    LIMIT) pay the summary-deserialization tax.  ``table``/``alias``/
    ``instances`` mirror the :class:`Scan` this node serves.  ``eager``
    marks the pushdown-off configuration where hydration happens directly
    above the scan (the pre-pushdown behaviour, kept for comparison
    benchmarks and equivalence testing).
    """

    child: PlanNode
    table: str
    alias: str
    instances: tuple[str, ...] | None = None
    eager: bool = False

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        base = f"Hydrate({self.alias})"
        if self.instances is not None:
            if not self.instances:
                base = f"{base} [no summaries]"
            else:
                base = f"{base} [summaries: {', '.join(self.instances)}]"
        if self.eager:
            base = f"{base} [eager]"
        return base


@dataclass(frozen=True)
class Select(PlanNode):
    """Filter rows by a predicate; summaries pass through unchanged."""

    child: PlanNode
    predicate: Expression

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Select({self.predicate})"


@dataclass(frozen=True)
class Project(PlanNode):
    """Keep only the named columns, removing dropped annotations' effects."""

    child: PlanNode
    columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.columns:
            raise PlanError("projection must keep at least one column")

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Project({', '.join(self.columns)})"


@dataclass(frozen=True)
class Compute(PlanNode):
    """Expression projection: each output column is a computed expression.

    The summary semantics generalize :class:`Project`: an annotation
    survives on every output column whose expression references at least
    one of the annotation's input columns; annotations referenced by no
    output lose their effect.
    """

    child: PlanNode
    items: tuple[tuple[Expression, str], ...]  # (expression, output name)

    def __post_init__(self) -> None:
        if not self.items:
            raise PlanError("Compute needs at least one output expression")
        names = [name for _, name in self.items]
        if len(set(names)) != len(names):
            raise PlanError(f"duplicate output columns: {names}")

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        rendered = ", ".join(
            f"{expression} AS {name}" if str(expression) != name else name
            for expression, name in self.items
        )
        return f"Compute({rendered})"


@dataclass(frozen=True)
class Join(PlanNode):
    """Join; counterpart summary objects are merged dedup-aware.

    With ``outer`` set, unmatched left tuples are emitted NULL-padded on
    the right, keeping their own summaries untouched (a left outer join).
    """

    left: PlanNode
    right: PlanNode
    predicate: Expression | None = None
    outer: bool = False

    def __post_init__(self) -> None:
        if self.outer and self.predicate is None:
            raise PlanError("a LEFT OUTER JOIN requires an ON predicate")

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        kind = "LeftOuterJoin" if self.outer else "Join"
        if self.predicate is None:
            return f"{kind}(cross)"
        return f"{kind}({self.predicate})"


@dataclass(frozen=True)
class GroupBy(PlanNode):
    """Group by key columns; group members' summaries are merged."""

    child: PlanNode
    keys: tuple[str, ...]
    aggregates: tuple[Aggregate, ...] = ()
    having: Expression | None = None

    def __post_init__(self) -> None:
        if not self.keys and not self.aggregates:
            raise PlanError("GROUP BY needs keys or aggregates")

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        parts = [f"keys=[{', '.join(self.keys)}]"]
        if self.aggregates:
            parts.append(f"aggs=[{', '.join(map(str, self.aggregates))}]")
        if self.having is not None:
            parts.append(f"having={self.having}")
        return f"GroupBy({'; '.join(parts)})"


@dataclass(frozen=True)
class Distinct(PlanNode):
    """Duplicate elimination; duplicates' summaries are merged."""

    child: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return "Distinct"


@dataclass(frozen=True)
class StorageAggregate(PlanNode):
    """A GROUP BY (or DISTINCT) executed entirely inside storage.

    The cost planner lowers ``GroupBy``/``Distinct`` over a bare scan to
    this leaf when the scanned table is provably summary-free (no linked
    instances, no attachments — so merging summaries during grouping is
    a no-op) and the backend is single-shard.  SQLite then does the
    grouping in C and only group rows cross into Python.

    ``key_columns``/``aggregates`` use the table's *storage* column
    names; ``output_keys``/``output_aggregates`` carry the engine-side
    schema the replaced node would have produced, so downstream
    resolution (HAVING, Sort over ``count(*)``) is unchanged.
    ``distinct`` marks the Distinct lowering (every output column is a
    key) purely for display.
    """

    table: str
    alias: str
    key_columns: tuple[str, ...]
    output_keys: tuple[str, ...]
    aggregates: tuple[tuple[str, str | None], ...]
    output_aggregates: tuple[str, ...]
    #: Sargable predicate inherited from the replaced Scan, same loose
    #: typing as :attr:`Scan.storage_filter`.
    storage_filter: Any = None
    distinct: bool = False

    def __post_init__(self) -> None:
        if not self.key_columns and not self.aggregates:
            raise PlanError("StorageAggregate needs keys or aggregates")
        if len(self.key_columns) != len(self.output_keys):
            raise PlanError("key columns and output keys must align")
        if len(self.aggregates) != len(self.output_aggregates):
            raise PlanError("aggregates and output names must align")

    def children(self) -> tuple[PlanNode, ...]:
        return ()

    def describe(self) -> str:
        kind = "distinct" if self.distinct else "group"
        parts = [f"{kind} {self.table}"]
        if self.alias != self.table:
            parts[0] = f"{kind} {self.table} AS {self.alias}"
        if self.key_columns:
            parts.append(f"keys=[{', '.join(self.key_columns)}]")
        if self.aggregates:
            rendered = ", ".join(
                f"{function}({column if column is not None else '*'})"
                for function, column in self.aggregates
            )
            parts.append(f"aggs=[{rendered}]")
        if self.storage_filter is not None:
            parts.append(f"pushed: {self.storage_filter}")
        return f"StorageAggregate({'; '.join(parts)})"


@dataclass(frozen=True)
class Sort(PlanNode):
    """Order rows by expressions; summaries pass through unchanged."""

    child: PlanNode
    keys: tuple[Expression, ...]
    descending: tuple[bool, ...] = ()

    def __post_init__(self) -> None:
        if not self.keys:
            raise PlanError("ORDER BY needs at least one key")
        if self.descending and len(self.descending) != len(self.keys):
            raise PlanError("descending flags must match sort keys")

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        flags = self.descending or tuple(False for _ in self.keys)
        rendered = ", ".join(
            f"{key}{' DESC' if desc else ''}" for key, desc in zip(self.keys, flags)
        )
        return f"Sort({rendered})"


@dataclass(frozen=True)
class Limit(PlanNode):
    """Keep the first ``count`` rows."""

    child: PlanNode
    count: int

    def __post_init__(self) -> None:
        if self.count < 0:
            raise PlanError(f"LIMIT must be non-negative, got {self.count}")

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Limit({self.count})"


@dataclass(frozen=True)
class Union(PlanNode):
    """Bag union of two schema-compatible inputs."""

    left: PlanNode
    right: PlanNode
    distinct: bool = False

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        return "Union(distinct)" if self.distinct else "Union(all)"


def walk(node: PlanNode):
    """Pre-order traversal of a plan tree."""
    yield node
    for child in node.children():
        yield from walk(child)


def plan_cost_estimate(node: PlanNode) -> int:
    """Crude structural complexity estimate for the RCO cache policy.

    Joins and grouping dominate real cost, so they weigh more than
    streaming operators.  Absolute values are meaningless; only relative
    ordering matters to the replacement policy.
    """
    weights = {
        Scan: 1,
        Hydrate: 1,
        Select: 1,
        Project: 1,
        Sort: 2,
        Limit: 0,
        Distinct: 3,
        StorageAggregate: 2,
        Union: 2,
        GroupBy: 4,
        Join: 5,
    }
    return sum(weights.get(type(n), 1) for n in walk(node))
