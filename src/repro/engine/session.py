"""The InsightNotes session facade — the library's public entry point.

Ties the whole stack together behind one object:

* base tables and inserts (:class:`~repro.storage.database.Database`),
* raw annotations with cell-level attachment and automatic incremental
  summary maintenance (:class:`~repro.maintenance.incremental.SummaryManager`),
* summary instance definition / linking (:class:`~repro.storage.catalog.SummaryCatalog`),
* summary-aware SQL queries with QID-stamped results,
* ZOOMIN commands served through the RCO-managed result cache.

Example
-------
>>> notes = InsightNotes()
>>> notes.create_table("birds", ["name", "species", "weight"])
>>> row = notes.insert("birds", ("Swan Goose", "Anser cygnoides", 3.2))
>>> notes.define_classifier("ClassBird1",
...     labels=["Behavior", "Disease", "Anatomy", "Other"],
...     training=[("found eating stonewort", "Behavior")])
>>> notes.link("ClassBird1", "birds")
>>> notes.add_annotation("observed feeding near the shore",
...                      table="birds", row_id=row)
>>> result = notes.query("SELECT name, species FROM birds")
>>> zoom = notes.zoomin(
...     f"ZOOMIN REFERENCE QID = {result.qid} ON ClassBird1 INDEX 1")
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

from repro.engine.cost import CatalogStatistics
from repro.engine.executor import execute_plan
from repro.engine.explain import Explanation, build_explanation
from repro.engine.operators import (
    DEFAULT_SCAN_BLOCK_SIZE,
    ExecutionStats,
    Tracer,
)
from repro.engine.plan import PlanNode
from repro.engine.planner import Planner, plan_uses_summaries
from repro.engine.results import QueryResult, ResultRegistry
from repro.engine.sqlparser import build_logical, parse_sql
from repro.errors import AnnotationError
from repro.maintenance.incremental import SummaryManager
from repro.model.annotation import Annotation, AnnotationKind
from repro.model.cell import CellRef
from repro.storage.annotations import AnnotationDraft, AnnotationStore
from repro.storage.catalog import DEFAULT_OBJECT_CACHE_SIZE, SummaryCatalog
from repro.storage.database import Database
from repro.storage.planner_stats import PlannerStatsStore
from repro.summaries.base import SummaryInstance
from repro.summaries.registry import SummaryTypeRegistry
from repro.zoomin.cache import ZoomInCache
from repro.zoomin.command import ZoomInCommand
from repro.zoomin.executor import ZoomInExecutor, ZoomInResult
from repro.zoomin.rco import RCOPolicy
from repro.zoomin.tiered import TieredZoomInCache
from repro.zoomin.tracing import TraceStore


class InsightNotes:
    """A summary-based annotation management session.

    Parameters
    ----------
    path:
        SQLite database path (default in-memory).
    registry:
        Summary type registry; defaults to the three built-in types.
        Register custom types before defining instances of them.
    cache_bytes:
        Capacity of the zoom-in result cache.
    cache_policy:
        Replacement policy for that cache; defaults to the paper's RCO.
    cache_store:
        Storage backend for cached results: ``None`` keeps live objects
        in memory; ``"disk"`` serializes results through a SQLite store
        (the paper's disk-based materialization); any other string is a
        SQLite file path for the store; a
        :class:`~repro.zoomin.stores.ResultStore` instance is used as-is.
        With ``cache_disk_bytes`` set this names the *disk tier* of the
        tiered cache instead.
    cache_disk_bytes:
        Enable the production two-tier cache
        (:class:`~repro.zoomin.tiered.TieredZoomInCache`): ``cache_bytes``
        budgets the hot in-memory tier and this budgets the disk tier
        (``cache_store`` selects its SQLite file; default private
        in-memory).  Brings cost-aware admission (priced by the cost
        model's recompute estimate) and single-flight zoom-in recompute.
        ``None`` (the default) keeps the single-tier prototype cache.
    trace_history:
        How many recent per-query traces (:class:`~repro.zoomin.tracing.
        QueryTrace`) the session retains for :meth:`trace`.
    normalize:
        Apply the Theorems 1-2 project-before-merge normalization
        (disable only for the plan-equivalence ablation).
    scan_block_size:
        How many base rows each table scan prefetches per storage
        round-trip (summaries and attachments are loaded in bulk per
        block).  ``1`` degenerates to per-row loading — the benchmark
        harness uses that as its "before" configuration.
    object_cache_size:
        Bound of the catalog's deserialization LRU (``0`` disables it).
    pushdown:
        Compile sargable predicates and LIMIT into the storage scan and
        hydrate summaries lazily, block-wise, above the residual
        selection (late materialization).  Disable to get the old
        hydrate-everything-at-scan pipeline — the benchmarks' "before"
        configuration; query results are identical either way.
    workers:
        Hydration fan-out: with ``workers=N`` (N > 1) each query's
        block-wise summary/attachment fetches run on up to N threads,
        each on its own pooled read connection, while row order and
        results stay byte-identical.  The default ``1`` reproduces the
        serial pipeline exactly.  Sessions are also safe to *share*
        across threads: concurrent queries each get their own operator
        tree, and every shared structure (caches, registries, counters)
        is internally locked.
    serialize_reads:
        Force all reads through the lock-serialized writer connection
        even for file-backed databases — the pre-pool topology, kept as
        the concurrency benchmark's baseline (``serial``) mode.
    shards:
        Number of storage shards.  ``1`` (the default) is the original
        single-file layout, byte-identical to previous releases.
        ``N >= 2`` hash-partitions rows, attachments, and summary state
        across ``N`` SQLite files, each with its own read pool and
        independently serialized writer — bulk ingest commits per-shard
        sub-batches concurrently and scans scatter-gather in global row
        order.  File-backed paths only; see DESIGN.md §11.
    cost_planner:
        Enable the cost-based planner: catalog statistics drive join
        ordering, hydrate placement, and storage-side aggregation
        pushdown (DESIGN.md §13).  Results are byte-identical either
        way; disable to pin the rule-based plans — the plan benchmark's
        baseline configuration.  Statistics seed themselves lazily and
        refresh on demand via :meth:`analyze`.
    """

    def __init__(
        self,
        path: str = ":memory:",
        registry: SummaryTypeRegistry | None = None,
        cache_bytes: int = 4 * 1024 * 1024,
        cache_policy: Any | None = None,
        cache_store: Any | None = None,
        cache_disk_bytes: int | None = None,
        trace_history: int = 128,
        normalize: bool = True,
        scan_block_size: int = DEFAULT_SCAN_BLOCK_SIZE,
        object_cache_size: int = DEFAULT_OBJECT_CACHE_SIZE,
        pushdown: bool = True,
        workers: int = 1,
        serialize_reads: bool = False,
        shards: int = 1,
        cost_planner: bool = True,
    ) -> None:
        self.db = Database(path, serialize_reads=serialize_reads, shards=shards)
        self.annotations = AnnotationStore(self.db)
        self.catalog = SummaryCatalog(
            self.db, registry=registry, object_cache_size=object_cache_size
        )
        self.manager = SummaryManager(self.db, self.annotations, self.catalog)
        self.stats_store = PlannerStatsStore(self.db)
        self.stats_registry = CatalogStatistics(
            self.db, self.annotations, self.catalog, store=self.stats_store
        )
        self.planner = Planner(
            self.db,
            self.annotations,
            self.catalog,
            manager=self.manager,
            normalize=normalize,
            scan_block_size=scan_block_size,
            pushdown=pushdown,
            workers=workers,
            cost_planner=cost_planner,
            statistics=self.stats_registry,
        )
        self.results = ResultRegistry()
        self.traces = TraceStore(capacity=trace_history)
        if isinstance(cache_store, str):
            from repro.zoomin.stores import SQLiteResultStore

            store_path = ":memory:" if cache_store == "disk" else cache_store
            cache_store = SQLiteResultStore(
                store_path, registry=self.catalog.registry
            )
        self.cache: ZoomInCache | TieredZoomInCache
        if cache_disk_bytes is not None:
            from repro.zoomin.stores import SQLiteResultStore

            if cache_store is None:
                # The disk tier must deserialize with *this* session's
                # registry, or custom summary types fail to revive.
                cache_store = SQLiteResultStore(
                    registry=self.catalog.registry
                )
            elif not isinstance(cache_store, SQLiteResultStore):
                raise ValueError(
                    "the tiered cache's disk tier needs a SQLiteResultStore "
                    f"(or a path), got {type(cache_store).__name__}"
                )
            self.cache = TieredZoomInCache(
                memory_bytes=cache_bytes,
                disk_bytes=cache_disk_bytes,
                policy=cache_policy or RCOPolicy(),
                disk_store=cache_store,
                trace_store=self.traces,
            )
        else:
            self.cache = ZoomInCache(
                capacity_bytes=cache_bytes,
                policy=cache_policy or RCOPolicy(),
                store=cache_store,
            )
        self._zoomin = ZoomInExecutor(
            self.annotations, self.cache, recompute=self.results.get
        )

    # -- lifecycle ---------------------------------------------------

    def flush(self) -> None:
        """Flush deferred summary writes without closing the session.

        A long-running server calls this at drain points so summary
        state is durable even though the process (and its session)
        lives on.
        """
        self.manager.flush()

    def close(self) -> None:
        """Flush deferred summary writes and close the database."""
        self.manager.flush()
        self.db.close()

    def __enter__(self) -> "InsightNotes":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- data -----------------------------------------------------------

    def create_table(self, name: str, columns: Sequence[str]) -> None:
        """Create a base table."""
        self.db.create_table(name, columns)

    def insert(
        self, table: str, values: Sequence[Any] | Mapping[str, Any]
    ) -> int:
        """Insert one row; returns its row id."""
        row_id = self.db.insert(table, values)
        self.stats_registry.on_rows_inserted(table)
        return row_id

    def insert_many(self, table: str, rows: Sequence[Sequence[Any]]) -> list[int]:
        """Insert several rows; returns their row ids."""
        row_ids = self.db.insert_many(table, rows)
        self.stats_registry.on_rows_inserted(table, len(row_ids))
        return row_ids

    def delete_row(self, table: str, row_id: int) -> None:
        """Delete a base row, cascading through annotations and summaries.

        Annotations attached only to this row are deleted outright;
        annotations also covering other rows are detached here and keep
        their effect elsewhere.  The row's summary objects are dropped.
        """
        detached = 0
        for annotation_id in sorted(
            self.annotations.annotation_ids_for_row(table, row_id)
        ):
            remaining = self.annotations.rows_for_annotation(annotation_id)
            if remaining == {(table, row_id)}:
                self.annotations.delete(annotation_id)
            else:
                self.annotations.detach_row(annotation_id, table, row_id)
            detached += 1
        self.manager.on_row_deleted(table, row_id)
        self.db.delete_row(table, row_id)
        self.stats_registry.on_rows_deleted(table)
        if detached:
            self.stats_registry.on_annotations_changed(table, -detached)

    # -- annotations -----------------------------------------------------

    #: Keys an :meth:`add_annotations` spec may carry — exactly the
    #: keyword parameters of :meth:`add_annotation`.
    _ANNOTATION_SPEC_KEYS = frozenset(
        {
            "text",
            "table",
            "row_id",
            "columns",
            "cells",
            "author",
            "document",
            "title",
            "created_at",
        }
    )

    def _resolve_annotation_cells(
        self,
        table: str | None,
        row_id: int | None,
        columns: Sequence[str] | None,
        cells: Sequence[CellRef] | None,
    ) -> list[CellRef]:
        """Turn one annotation target spec into an explicit cell list."""
        if cells is None:
            if table is None or row_id is None:
                raise AnnotationError(
                    "add_annotation needs either cells or table + row_id"
                )
            target_columns = (
                tuple(columns) if columns is not None else self.db.columns(table)
            )
            return [CellRef(table, row_id, column) for column in target_columns]
        if table is not None or row_id is not None or columns is not None:
            raise AnnotationError(
                "pass either cells or table/row_id/columns, not both"
            )
        return list(cells)

    def add_annotation(
        self,
        text: str,
        table: str | None = None,
        row_id: int | None = None,
        columns: Sequence[str] | None = None,
        cells: Sequence[CellRef] | None = None,
        author: str = "anonymous",
        document: bool = False,
        title: str = "",
        created_at: float | None = None,
    ) -> Annotation:
        """Attach a new annotation and update all affected summaries.

        Target either a row (``table`` + ``row_id``, optionally narrowed
        to ``columns``; omitted columns mean the whole row) or an explicit
        ``cells`` list spanning arbitrary rows and tables.  A batch of
        one through the bulk ingest path — callers with many annotations
        in hand should pass them all to :meth:`add_annotations` instead.
        """
        return self.add_annotations(
            [
                {
                    "text": text,
                    "table": table,
                    "row_id": row_id,
                    "columns": columns,
                    "cells": cells,
                    "author": author,
                    "document": document,
                    "title": title,
                    "created_at": created_at,
                }
            ]
        )[0]

    def add_annotations(
        self, specs: Sequence[Mapping[str, Any]]
    ) -> list[Annotation]:
        """Attach a batch of annotations in one bulk ingest pass.

        Each spec is a mapping of :meth:`add_annotation` keyword
        arguments (``text`` is required; targeting rules are identical).
        The whole batch is validated up front, stored with two
        ``executemany`` inserts in a single transaction, and folded into
        the affected summaries through
        :meth:`~repro.maintenance.incremental.SummaryManager.add_annotations`
        — instances resolved once per table, summary objects bulk-loaded,
        each annotation analyzed at most once per instance, and one
        bulk write-back.  The resulting summary state is identical to
        adding the annotations one by one in spec order.

        Returns the stored annotations, in spec order.  Raises
        :class:`~repro.errors.AnnotationError` before anything is stored
        if any spec is malformed.
        """
        drafts: list[AnnotationDraft] = []
        cell_lists: list[list[CellRef]] = []
        for spec in specs:
            unknown = set(spec) - self._ANNOTATION_SPEC_KEYS
            if unknown:
                raise AnnotationError(
                    f"unknown annotation spec keys: {sorted(unknown)}"
                )
            text = spec.get("text")
            if not isinstance(text, str):
                raise AnnotationError("annotation spec needs a text string")
            resolved = self._resolve_annotation_cells(
                spec.get("table"),
                spec.get("row_id"),
                spec.get("columns"),
                spec.get("cells"),
            )
            kind = (
                AnnotationKind.DOCUMENT
                if spec.get("document", False)
                else AnnotationKind.COMMENT
            )
            drafts.append(
                AnnotationDraft(
                    text=text,
                    cells=tuple(resolved),
                    author=spec.get("author", "anonymous"),
                    kind=kind,
                    title=spec.get("title", ""),
                    created_at=spec.get("created_at"),
                )
            )
            cell_lists.append(resolved)
        if not drafts:
            return []
        stored = self.annotations.add_many(drafts)
        self.manager.add_annotations(list(zip(stored, cell_lists)))
        per_table: dict[str, int] = {}
        for cells in cell_lists:
            for cell in cells:
                per_table[cell.table] = per_table.get(cell.table, 0) + 1
        for table, delta in per_table.items():
            self.stats_registry.on_annotations_changed(table, delta)
        return stored

    def delete_annotation(self, annotation_id: int) -> None:
        """Remove an annotation, updating all affected summaries."""
        per_table: dict[str, int] = {}
        for cell in self.annotations.cells_of(annotation_id):
            per_table[cell.table] = per_table.get(cell.table, 0) + 1
        self.manager.on_annotation_deleted(annotation_id)
        self.annotations.delete(annotation_id)
        for table, count in per_table.items():
            self.stats_registry.on_annotations_changed(table, -count)

    def update_annotation(
        self,
        annotation_id: int,
        text: str | None = None,
        title: str | None = None,
    ) -> Annotation:
        """Rewrite an annotation's text, re-summarizing everywhere.

        The annotation keeps its id, author, timestamp, and attachments;
        its old effect is removed from every affected summary and the new
        text is folded back in (a corrected observation may change its
        class label, cluster group, or snippet).
        """
        self.manager.on_annotation_deleted(annotation_id)
        updated = self.annotations.update(annotation_id, text=text, title=title)
        cells = self.annotations.cells_of(annotation_id)
        self.manager.on_annotation_added(updated, cells)
        return updated

    # -- summary instances ------------------------------------------------

    def define_instance(
        self, type_name: str, instance_name: str, config: dict
    ) -> SummaryInstance:
        """Define a summary instance of a registered type."""
        return self.catalog.define_instance(type_name, instance_name, config)

    def define_classifier(
        self,
        name: str,
        labels: Sequence[str],
        training: Sequence[tuple[str, str]] | None = None,
    ) -> SummaryInstance:
        """Convenience: define and optionally train a classifier instance."""
        instance = self.catalog.define_instance(
            "Classifier", name, {"labels": list(labels)}
        )
        if training:
            instance.train(list(training))  # type: ignore[attr-defined]
            self.catalog.save_instance_config(name)
        return instance

    def define_cluster(self, name: str, threshold: float = 0.4, **config: Any
                       ) -> SummaryInstance:
        """Convenience: define a cluster instance."""
        return self.catalog.define_instance(
            "Cluster", name, {"threshold": threshold, **config}
        )

    def define_snippet(self, name: str, **config: Any) -> SummaryInstance:
        """Convenience: define a snippet instance."""
        return self.catalog.define_instance("Snippet", name, config)

    def rebuild_summaries(
        self, instance_name: str | None = None, table: str | None = None
    ) -> int:
        """Recompute summary state from the raw annotations.

        Narrows to one instance and/or one table when given; returns the
        number of (instance, table) pairs rebuilt.  Needed after changes
        that invalidate derived state wholesale — most commonly a model
        retrain (see :meth:`retrain_classifier`).
        """
        from repro.maintenance.rebuild import rebuild_table

        pairs = [
            (instance, linked_table)
            for instance, linked_table in self.catalog.links()
            if (instance_name is None or instance == instance_name)
            and (table is None or linked_table == table)
        ]
        self.manager.drop_caches()
        for instance, linked_table in pairs:
            rebuild_table(
                self.db, self.annotations, self.catalog, instance, linked_table
            )
        return len(pairs)

    def retrain_classifier(
        self, instance_name: str, examples: Sequence[tuple[str, str]]
    ) -> None:
        """Continue training a classifier and refresh all its summaries.

        The extra examples shift the model's predictions, so every stored
        summary object of the instance is rebuilt from the raw
        annotations and the summarize-once cache for the instance is
        invalidated — stale labels never linger.
        """
        instance = self.catalog.get_instance(instance_name)
        instance.train(list(examples))  # type: ignore[attr-defined]
        self.catalog.save_instance_config(instance_name)
        self.manager.contributions.invalidate_instance(instance_name)
        self.rebuild_summaries(instance_name=instance_name)

    def link(self, instance_name: str, table: str) -> None:
        """Link an instance to a table and summarize its existing rows."""
        self.catalog.link(instance_name, table)
        self.manager.summarize_table(instance_name, table)

    def unlink(self, instance_name: str, table: str) -> None:
        """Unlink an instance from a table, dropping its state there."""
        self.manager.drop_caches()
        self.catalog.unlink(instance_name, table)

    # -- queries ----------------------------------------------------------

    def query(self, sql: str, trace: bool = False) -> QueryResult:
        """Run a SQL query; the result carries summaries and a QID."""
        statement = parse_sql(sql)
        self._flatten_subqueries(statement)
        logical = build_logical(statement, self.planner)
        return self.execute_logical(logical, sql=sql, trace=trace)

    def flatten_predicate(self, expression: Any) -> Any:
        """Flatten any IN-subqueries inside a standalone predicate.

        Used by statement paths that evaluate predicates directly (e.g.
        ``DELETE FROM ... WHERE x IN (SELECT ...)``).
        """
        from repro.engine.subqueries import flatten_expression

        return flatten_expression(expression, self._run_in_subquery)

    def _run_in_subquery(self, sub_statement: Any) -> tuple[Any, ...]:
        """Execute one uncorrelated IN-subquery; returns its values.

        Only the single output column's values are consumed, so unless a
        subquery expression actually reads summaries (or pushdown is off,
        where the old eager pipeline is reproduced faithfully), the plan
        skips hydration entirely.
        """
        self._flatten_subqueries(sub_statement)
        logical = build_logical(sub_statement, self.planner)
        hydrate = not self.planner.pushdown or plan_uses_summaries(logical)
        prepared = self.planner.prepare(logical, hydrate=hydrate)
        operator = self.planner.physical(prepared)
        if len(operator.schema) != 1:
            from repro.errors import SQLSyntaxError

            raise SQLSyntaxError(
                "an IN subquery must select exactly one column, got "
                f"{len(operator.schema)}"
            )
        return tuple(row.values[0] for row in operator)

    def _flatten_subqueries(self, statement: Any) -> None:
        """Replace IN (SELECT ...) predicates with literal IN lists.

        Uncorrelated subqueries run once, eagerly; their single output
        column's values become the IN list.  Applied to WHERE, HAVING,
        and JOIN..ON predicates of every SELECT core.
        """
        from repro.engine.sqlparser import CompoundSelect
        from repro.engine.subqueries import flatten_expression

        run_subquery = self._run_in_subquery
        if isinstance(statement, CompoundSelect):
            for part in statement.parts:
                self._flatten_subqueries(part)
            return
        if statement.where is not None:
            statement.where = flatten_expression(statement.where, run_subquery)
        if statement.having is not None:
            statement.having = flatten_expression(statement.having, run_subquery)
        statement.joins = [
            (table, alias, flatten_expression(predicate, run_subquery), outer)
            for table, alias, predicate, outer in statement.joins
        ]

    def execute_logical(
        self, logical: PlanNode, sql: str = "", trace: bool = False
    ) -> QueryResult:
        """Run a programmatically built logical plan."""
        prepared = self.planner.prepare(logical)
        tracer = Tracer() if trace else None
        stats = ExecutionStats()
        operator = self.planner.physical(prepared, tracer, stats)
        # Sharded sessions attach the per-shard pool checkout deltas this
        # query drove; unsharded payloads stay exactly as before.
        sharded = self.db.shard_count > 1
        before = self.db.backend.counters() if sharded else {}
        result = execute_plan(
            operator,
            qid=self.results.next_qid(),
            sql=sql,
            logical=prepared,
            stats=stats,
        )
        if sharded:
            after = self.db.backend.counters()
            stats.record_backend_counters(
                {
                    shard: {
                        key: value - before.get(shard, {}).get(key, 0)
                        for key, value in counters.items()
                    }
                    for shard, counters in after.items()
                }
            )
        result.trace = tracer
        self.stats_registry.observe_execution(prepared, stats)
        # Price the plan's recompute cost once, after the execution
        # feedback lands (so the estimate sees the freshest row counts);
        # the cache's admission policy and the trace both read it.
        result.cost_estimate = self.planner.cost_model.estimate(prepared).cost
        self.results.register(result)
        # Trace first so the cache's admission/eviction events land on
        # an already-open trace.
        self.traces.record_query(result)
        self.cache.put(result)
        return result

    def execute(self, statement: str) -> Any:
        """Run any supported statement: SELECT, ZOOMIN, CREATE TABLE,
        INSERT INTO, DELETE FROM.

        Returns a :class:`QueryResult` for SELECT, a
        :class:`~repro.zoomin.executor.ZoomInResult` for ZOOMIN, and a
        status string for DDL/DML.
        """
        from repro.engine.ddl import execute_statement

        return execute_statement(self, statement)

    def explain(self, sql: str) -> Explanation:
        """The prepared (normalized) logical plan for ``sql``, costed.

        Returns an :class:`~repro.engine.explain.Explanation` — a
        ``str`` rendering of the plan with per-operator cardinality and
        cost estimates (``[rows~N cost~C]``), that also carries the plan
        itself and a :meth:`~repro.engine.explain.Explanation.to_json`
        structural view.  Estimates come from the same catalog
        statistics the cost planner uses; :meth:`analyze` refreshes
        them.
        """
        statement = parse_sql(sql)
        self._flatten_subqueries(statement)
        logical = build_logical(statement, self.planner)
        prepared = self.planner.prepare(logical)
        return build_explanation(prepared, self.planner.cost_model)

    def analyze(self, table: str | None = None) -> dict[str, Any]:
        """Refresh planner statistics, persisting them in the catalog.

        Recomputes row counts, per-column distinct-value estimates,
        annotation volume, and per-instance summary-object cardinality
        and size for ``table`` (or every base table), storing the result
        in the ``planner_stats`` system table so later sessions start
        warm.  Returns a per-table digest of what was gathered.
        """
        return self.stats_registry.analyze(table)

    # -- zoom-in ---------------------------------------------------------

    def zoomin(self, command: str | ZoomInCommand) -> ZoomInResult:
        """Execute a ZOOMIN command against a previous result."""
        return self._zoomin.execute(command)

    def trace(self, qid: int) -> dict[str, Any] | None:
        """The structured trace of query ``qid`` as a JSON payload.

        Covers the planner's view (plan text, fingerprint, cost
        estimate), execution (wall clock, engine counters, per-operator
        timings when the query ran with ``trace=True``), and every
        cache event the result was involved in since.  None when the
        qid was never executed here or its trace aged out of the
        bounded history (``trace_history``).
        """
        return self.traces.to_json(qid)

    # -- monitoring --------------------------------------------------

    def statistics(self) -> dict[str, Any]:
        """A snapshot of the session's operational counters.

        Groups the numbers an operator would watch: data volumes,
        maintenance activity (incl. the summarize-once cache), and
        zoom-in cache behaviour.
        """
        contribution_stats = self.manager.contributions.stats
        # Both cache implementations export the same stats_json schema;
        # the legacy "zoomin_cache" key is derived from it below.
        zoomin = self.cache.stats_json()
        return {
            "shards": self.db.shard_count,
            "shard_pools": self.db.backend.counters(),
            "tables": len(self.db.tables()),
            "rows": sum(self.db.row_count(t) for t in self.db.tables()),
            "annotations": self.annotations.count(),
            "annotation_bytes": self.annotations.total_text_bytes(),
            "summary_instances": len(self.catalog.instance_names()),
            "summary_links": len(self.catalog.links()),
            "summary_state_bytes": self.catalog.summary_bytes(),
            "object_cache": self.catalog.object_cache_info(),
            "maintenance": self.manager.stats.as_dict(),
            "summarize_once": {
                "hits": contribution_stats.hits,
                "misses": contribution_stats.misses,
                "bypasses": contribution_stats.bypasses,
                "hit_ratio": contribution_stats.hit_ratio,
            },
            "queries_registered": len(self.results),
            "planner": {
                "cost_planner": self.planner.cost_planner,
                **self.planner.counters.to_json(),
                "stats": self.stats_registry.freshness(),
            },
            "zoomin": zoomin,
            "zoomin_cache": {
                "hits": zoomin["memory_hits"] + zoomin["disk_hits"],
                "misses": zoomin["misses"],
                "hit_ratio": zoomin["hit_ratio"],
                "evictions": zoomin["memory_evictions"]
                + zoomin["disk_evictions"],
                "bytes_used": zoomin["tiers"]["memory"]["bytes_used"],
                "capacity_bytes": zoomin["tiers"]["memory"]["capacity_bytes"],
            },
            "traces_retained": len(self.traces),
        }
