"""Plan execution.

Thin driver that pulls a physical operator pipeline to completion and
packages the output as a :class:`~repro.engine.results.QueryResult`.
Execution is fully pipelined — operators pass
:class:`~repro.model.tuple.AnnotatedTuple` objects along without
materializing intermediates except where the algebra requires it (join
build side, grouping, distinct, sort).
"""

from __future__ import annotations

import time

from repro.engine.operators import ExecutionStats, Operator, Tracer
from repro.engine.plan import PlanNode, plan_cost_estimate
from repro.engine.results import QueryResult


def execute_plan(
    operator: Operator,
    qid: int,
    sql: str = "",
    logical: PlanNode | None = None,
    tracer: Tracer | None = None,
    stats: ExecutionStats | None = None,
) -> QueryResult:
    """Run ``operator`` to completion and package the result.

    ``tracer`` (if provided) should be the same tracer the operators were
    constructed with; passing it here only documents intent — recording
    happens inside the operators.  ``stats`` (if provided) should likewise
    be the counter object the scan/hydrate operators were built with; the
    populated counters land on the result.
    """
    started = time.perf_counter()
    tuples = list(operator)
    elapsed = time.perf_counter() - started
    return QueryResult(
        qid=qid,
        columns=operator.schema,
        tuples=tuples,
        sql=sql,
        plan_text=logical.render() if logical is not None else operator.describe(),
        plan_cost=plan_cost_estimate(logical) if logical is not None else 1,
        elapsed_seconds=elapsed,
        stats=stats,
    )
