"""InsightNotes reproduction: summary-based annotation management.

A from-scratch Python implementation of the InsightNotes system (Xiao,
Bashllari, Menard, Eltabakh - SIGMOD 2015 demo; engine semantics from
Xiao & Eltabakh, SIGMOD 2014): relational data annotated at cell level,
summarized per tuple by extensible Classifier / Cluster / Snippet
instances, with summary-aware query propagation, incremental maintenance,
and RCO-cached zoom-in back to the raw annotations.

Start with :class:`~repro.engine.session.InsightNotes`:

>>> from repro import InsightNotes
>>> notes = InsightNotes()
"""

from repro.engine.session import InsightNotes
from repro.errors import InsightNotesError
from repro.model.annotation import Annotation, AnnotationKind
from repro.model.cell import CellRef

__version__ = "1.0.0"

__all__ = [
    "Annotation",
    "AnnotationKind",
    "CellRef",
    "InsightNotes",
    "InsightNotesError",
    "__version__",
]
