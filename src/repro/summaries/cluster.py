"""The Cluster summary type.

A cluster instance (``SimCluster`` in Figure 1) groups a tuple's annotations
by content similarity and reports one *representative* per group, so a
tuple with hundreds of near-duplicate observations renders as a handful of
exemplars.

Algorithm (after the stream text clustering the paper cites [23]): each
incoming annotation is embedded as a normalized term vector and assigned to
the existing group whose centroid is most similar, provided the cosine
similarity reaches the instance's ``threshold``; otherwise it seeds a new
group.  Clustering is therefore **not** annotation-invariant — assignment
depends on the groups already formed on the tuple — so the summarize-once
optimization does not apply (only the vector computation is reused).

Each group's state is split in two:

* **light state** — member ids, a best-first representative *ranking*, and
  short text previews for the top-ranked members.  This is all a query
  pipeline needs: projection drops ids and re-elects the representative
  from the ranking (Figure 2's A5-replaces-A2 step), and the join merge
  combines overlapping groups, all without the raw text.
* **heavy state** — per-member vectors and the centroid sum, used only by
  incremental maintenance.  :meth:`ClusterSummary.for_query` strips it
  before the object enters a pipeline.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence, Set
from typing import Any

from repro.errors import MaintenanceError
from repro.model.annotation import Annotation
from repro.summaries.base import (
    InstanceProperties,
    SummaryInstance,
    SummaryObject,
    SummaryType,
    ZoomComponent,
)
from repro.text.similarity import cosine_similarity
from repro.text.tokenize import Tokenizer
from repro.text.vectorize import SparseVector, normalize, term_frequencies

TYPE_NAME = "Cluster"

#: How many words of an annotation are kept as its preview.
DEFAULT_PREVIEW_WORDS = 10
#: How many top-ranked previews survive into query pipelines.
DEFAULT_PREVIEW_LIMIT = 3


def make_preview(text: str, max_words: int = DEFAULT_PREVIEW_WORDS) -> str:
    """Short display preview: the first ``max_words`` words of ``text``."""
    words = text.split()
    if len(words) <= max_words:
        return " ".join(words)
    return " ".join(words[:max_words]) + " ..."


class ClusterGroup:
    """One group of similar annotations within a cluster summary."""

    def __init__(
        self,
        member_ids: Set[int] | None = None,
        ranking: Sequence[int] = (),
        previews: Mapping[int, str] | None = None,
        vectors: Mapping[int, SparseVector] | None = None,
    ) -> None:
        self.member_ids: set[int] = set(member_ids or ())
        self.ranking: list[int] = list(ranking)
        self.previews: dict[int, str] = dict(previews or {})
        # Heavy, maintenance-only state; None once stripped for querying.
        self.vectors: dict[int, SparseVector] | None = (
            dict(vectors) if vectors is not None else None
        )

    @property
    def size(self) -> int:
        """The groupSize field of the paper's cluster objects."""
        return len(self.member_ids)

    @property
    def representative(self) -> int | None:
        """Best-ranked surviving member, the group's exemplar."""
        for annotation_id in self.ranking:
            if annotation_id in self.member_ids:
                return annotation_id
        # Every ranked candidate was projected out; fall back to the
        # smallest surviving id so the group still has a representative.
        return min(self.member_ids) if self.member_ids else None

    def representative_preview(self) -> str | None:
        """Preview text of the representative, if still carried."""
        representative = self.representative
        if representative is None:
            return None
        return self.previews.get(representative)

    def centroid(self) -> SparseVector:
        """Mean vector of the group's members (heavy state required)."""
        if self.vectors is None:
            raise MaintenanceError(
                "cluster group has no vectors; centroid is maintenance-only state"
            )
        total: dict[str, float] = {}
        for vector in self.vectors.values():
            for token, weight in vector.items():
                total[token] = total.get(token, 0.0) + weight
        count = max(1, len(self.vectors))
        return {token: weight / count for token, weight in total.items()}

    def rerank(self) -> None:
        """Recompute the representative ranking from the heavy state.

        Members are ordered by similarity to the group centroid, best
        first, with annotation id as a deterministic tie-break.
        """
        if self.vectors is None:
            raise MaintenanceError("cannot rerank a cluster group without vectors")
        centroid = self.centroid()
        self.ranking = sorted(
            self.member_ids,
            key=lambda annotation_id: (
                -cosine_similarity(self.vectors.get(annotation_id, {}), centroid),
                annotation_id,
            ),
        )

    def copy(self) -> "ClusterGroup":
        return ClusterGroup(
            member_ids=self.member_ids,
            ranking=self.ranking,
            previews=self.previews,
            vectors=self.vectors,
        )

    def drop_members(self, ids: Set[int]) -> None:
        """Remove members by id, keeping ranking order for survivors."""
        self.member_ids -= ids
        self.ranking = [i for i in self.ranking if i not in ids]
        for annotation_id in ids:
            self.previews.pop(annotation_id, None)
            if self.vectors is not None:
                self.vectors.pop(annotation_id, None)

    def overlaps(self, other: "ClusterGroup") -> bool:
        """True when the two groups share at least one member."""
        return bool(self.member_ids & other.member_ids)


class ClusterSummary(SummaryObject):
    """Per-tuple cluster summary: an ordered list of groups."""

    type_name = TYPE_NAME
    copy_on_write = True

    def __init__(
        self,
        instance_name: str,
        preview_limit: int = DEFAULT_PREVIEW_LIMIT,
    ) -> None:
        super().__init__(instance_name)
        self.groups: list[ClusterGroup] = []
        self.preview_limit = preview_limit
        # Cached light (query-stripped) view; invalidated by mutation.
        self._query_view: "ClusterSummary | None" = None

    # -- inspection ----------------------------------------------------

    def annotation_ids(self) -> frozenset[int]:
        ids: set[int] = set()
        for group in self.groups:
            ids |= group.member_ids
        return frozenset(ids)

    def group_sizes(self) -> list[int]:
        """Sizes of the groups in display order."""
        return [group.size for group in self.groups]

    def representatives(self) -> list[int]:
        """Representative annotation id of each non-empty group."""
        return [
            representative
            for group in self.groups
            if (representative := group.representative) is not None
        ]

    # -- batch maintenance -----------------------------------------------

    def fold_many(
        self,
        instance: SummaryInstance,
        items: Sequence[tuple[Annotation, Any]],
    ) -> int:
        """Vectorized batch fold: memoized centroids, one rerank per group.

        The sequential path recomputes every group centroid for every
        incoming annotation and re-ranks the receiving group after each
        insert.  Here centroids are computed once and invalidated only
        when their group gains a member, and each touched group is
        re-ranked once at the end of the batch.  Both shortcuts are exact:
        a centroid depends only on member vectors (not on the ranking),
        and the sequential path's *last* rerank of a group already sees
        that group's final batch membership — so the folded state is
        bit-identical to folding one at a time.

        ``instance`` must be the owning :class:`ClusterInstance` (the
        threshold and preview width live there).
        """
        threshold: float = instance.threshold  # type: ignore[attr-defined]
        preview_words: int = instance.preview_words  # type: ignore[attr-defined]
        seen = set(self.annotation_ids())
        fresh: list[tuple[Annotation, SparseVector]] = []
        for annotation, vector in items:
            if annotation.annotation_id in seen:
                continue  # idempotent replay, and in-batch duplicates
            seen.add(annotation.annotation_id)
            fresh.append((annotation, vector))
        if not fresh:
            return 0
        self._ensure_owned()
        self._query_view = None
        centroids: dict[int, SparseVector] = {}
        touched: set[int] = set()
        for annotation, vector in fresh:
            best_index: int | None = None
            best_similarity = 0.0
            for index, group in enumerate(self.groups):
                if group.vectors is None:
                    raise MaintenanceError(
                        "cannot add annotations to a query-stripped cluster summary"
                    )
                centroid = centroids.get(index)
                if centroid is None:
                    centroid = group.centroid()
                    centroids[index] = centroid
                similarity = cosine_similarity(vector, centroid)
                if similarity > best_similarity:
                    best_similarity = similarity
                    best_index = index
            annotation_id = annotation.annotation_id
            preview = make_preview(annotation.text, preview_words)
            if best_index is not None and best_similarity >= threshold:
                group = self.groups[best_index]
                group.member_ids.add(annotation_id)
                group.previews[annotation_id] = preview
                assert group.vectors is not None
                group.vectors[annotation_id] = vector
                centroids.pop(best_index, None)  # membership changed
                touched.add(best_index)
            else:
                self.groups.append(
                    ClusterGroup(
                        member_ids={annotation_id},
                        ranking=[annotation_id],
                        previews={annotation_id: preview},
                        vectors={annotation_id: vector},
                    )
                )
        for index in sorted(touched):
            self.groups[index].rerank()
        return len(fresh)

    # -- query-time algebra -------------------------------------------

    def copy(self) -> "ClusterSummary":
        clone = ClusterSummary(self.instance_name, self.preview_limit)
        clone.groups = [group.copy() for group in self.groups]
        return clone

    def remove_annotations(self, ids: Set[int]) -> None:
        self._ensure_owned()
        self._query_view = None
        for group in self.groups:
            group.drop_members(ids)
        self.groups = [group for group in self.groups if group.member_ids]

    def _materialize(self) -> None:
        self.groups = [group.copy() for group in self.groups]
        self._query_view = None

    def merge(self, other: SummaryObject) -> "ClusterSummary":
        """Dedup-aware merge, Figure 2 semantics.

        Groups from the two sides that share a member (the same annotation
        attached to both joined tuples) are transitively combined; disjoint
        groups propagate unchanged.
        """
        if not isinstance(other, ClusterSummary):
            raise TypeError(f"cannot merge ClusterSummary with {type(other).__name__}")
        pool = [group.copy() for group in self.groups] + [
            group.copy() for group in other.groups
        ]
        merged: list[ClusterGroup] = []
        for group in pool:
            absorbed = False
            for existing in merged:
                if existing.overlaps(group):
                    _combine_into(existing, group)
                    absorbed = True
                    break
            if absorbed:
                # The combination may have created new transitive overlaps.
                merged = _coalesce(merged)
            else:
                merged.append(group)
        result = ClusterSummary(
            self.instance_name, max(self.preview_limit, other.preview_limit)
        )
        result.groups = merged
        return result

    # -- zoom-in ---------------------------------------------------------

    def zoom_components(self) -> list[ZoomComponent]:
        components: list[ZoomComponent] = []
        for position, group in enumerate(self.groups, start=1):
            preview = group.representative_preview()
            label = preview if preview else f"group of {group.size}"
            components.append(
                ZoomComponent(
                    index=position,
                    label=label,
                    annotation_ids=tuple(sorted(group.member_ids)),
                    detail=f"size={group.size}",
                )
            )
        return components

    # -- bookkeeping -----------------------------------------------------

    def for_query(self) -> "ClusterSummary":
        """Light copy: no vectors, ranking/previews cut to the top ranks.

        Keeping only ``preview_limit`` representative candidates bounds the
        per-group payload; if a projection later drops all of them, the
        group falls back to its smallest surviving member id (without a
        preview), which zoom-in can still expand.

        The stripped view is built once and cached; repeated queries get
        an O(1) copy-on-write alias of it until a mutation invalidates it.
        """
        view = self._query_view
        if view is None:
            view = ClusterSummary(self.instance_name, self.preview_limit)
            for group in self.groups:
                ranking = group.ranking[: self.preview_limit]
                view.groups.append(
                    ClusterGroup(
                        member_ids=group.member_ids,
                        ranking=ranking,
                        previews={
                            annotation_id: group.previews[annotation_id]
                            for annotation_id in ranking
                            if annotation_id in group.previews
                        },
                        vectors=None,
                    )
                )
            self._query_view = view
        return view.share()

    def size_estimate(self) -> int:
        total = 16
        for group in self.groups:
            total += 8 * len(group.member_ids) + 8 * len(group.ranking)
            total += sum(len(preview) for preview in group.previews.values())
            if group.vectors is not None:
                total += sum(
                    8 + sum(len(token) + 8 for token in vector)
                    for vector in group.vectors.values()
                )
        return total

    def to_json(self) -> dict[str, Any]:
        return {
            "type": self.type_name,
            "instance": self.instance_name,
            "preview_limit": self.preview_limit,
            "groups": [
                {
                    "members": sorted(group.member_ids),
                    "ranking": list(group.ranking),
                    "previews": {str(k): v for k, v in group.previews.items()},
                    "vectors": (
                        {str(k): v for k, v in group.vectors.items()}
                        if group.vectors is not None
                        else None
                    ),
                }
                for group in self.groups
            ],
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "ClusterSummary":
        obj = cls(
            data["instance"],
            preview_limit=data.get("preview_limit", DEFAULT_PREVIEW_LIMIT),
        )
        for entry in data.get("groups", []):
            vectors = entry.get("vectors")
            obj.groups.append(
                ClusterGroup(
                    member_ids=set(entry["members"]),
                    ranking=entry.get("ranking", []),
                    previews={int(k): v for k, v in entry.get("previews", {}).items()},
                    vectors=(
                        {int(k): dict(v) for k, v in vectors.items()}
                        if vectors is not None
                        else None
                    ),
                )
            )
        return obj

    def render(self) -> str:
        parts = []
        for group in self.groups:
            preview = group.representative_preview() or "(zoom in for details)"
            parts.append(f"[{group.size}] {preview!r}")
        return f"{self.instance_name} {{{'; '.join(parts)}}}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ClusterSummary {len(self.groups)} groups>"


def _combine_into(target: ClusterGroup, source: ClusterGroup) -> None:
    """Fold ``source`` into ``target`` (union members, merge rankings)."""
    target.member_ids |= source.member_ids
    seen = set(target.ranking)
    target.ranking.extend(i for i in source.ranking if i not in seen)
    for annotation_id, preview in source.previews.items():
        target.previews.setdefault(annotation_id, preview)
    if target.vectors is not None and source.vectors is not None:
        for annotation_id, vector in source.vectors.items():
            target.vectors.setdefault(annotation_id, vector)
        target.rerank()
    else:
        target.vectors = None


def _coalesce(groups: list[ClusterGroup]) -> list[ClusterGroup]:
    """Repeatedly combine overlapping groups until all are disjoint."""
    result: list[ClusterGroup] = []
    for group in groups:
        target = None
        for existing in result:
            if existing.overlaps(group):
                target = existing
                break
        if target is None:
            result.append(group)
        else:
            _combine_into(target, group)
    if len(result) != len(groups):
        return _coalesce(result)
    return result


class ClusterInstance(SummaryInstance):
    """A configured clustering instance: threshold + vector space."""

    type_name = TYPE_NAME

    def __init__(
        self,
        name: str,
        threshold: float = 0.4,
        preview_words: int = DEFAULT_PREVIEW_WORDS,
        preview_limit: int = DEFAULT_PREVIEW_LIMIT,
        tokenizer: Tokenizer | None = None,
        properties: InstanceProperties | None = None,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        super().__init__(
            name,
            properties
            or InstanceProperties(annotation_invariant=False, data_invariant=True),
        )
        self.threshold = threshold
        self.preview_words = preview_words
        self.preview_limit = preview_limit
        self._tokenizer = tokenizer or Tokenizer()

    def new_object(self) -> ClusterSummary:
        return ClusterSummary(self.name, preview_limit=self.preview_limit)

    def analyze(self, annotation: Annotation) -> SparseVector:
        """Unit term-frequency vector — the reusable contribution."""
        return normalize(term_frequencies(self._tokenizer.tokens(annotation.text)))

    def add_to(
        self,
        obj: SummaryObject,
        annotation: Annotation,
        contribution: SparseVector,
    ) -> None:
        """Assign ``annotation`` to the nearest group or seed a new one."""
        if not isinstance(obj, ClusterSummary):
            raise TypeError(f"expected ClusterSummary, got {type(obj).__name__}")
        annotation_id = annotation.annotation_id
        if annotation_id in obj.annotation_ids():
            return  # idempotent replay
        obj._ensure_owned()
        obj._query_view = None  # the groups are about to change
        best_group: ClusterGroup | None = None
        best_similarity = 0.0
        for group in obj.groups:
            if group.vectors is None:
                raise MaintenanceError(
                    "cannot add annotations to a query-stripped cluster summary"
                )
            similarity = cosine_similarity(contribution, group.centroid())
            if similarity > best_similarity:
                best_similarity = similarity
                best_group = group
        preview = make_preview(annotation.text, self.preview_words)
        if best_group is not None and best_similarity >= self.threshold:
            best_group.member_ids.add(annotation_id)
            best_group.previews[annotation_id] = preview
            assert best_group.vectors is not None
            best_group.vectors[annotation_id] = contribution
            best_group.rerank()
        else:
            obj.groups.append(
                ClusterGroup(
                    member_ids={annotation_id},
                    ranking=[annotation_id],
                    previews={annotation_id: preview},
                    vectors={annotation_id: contribution},
                )
            )

    def config(self) -> dict[str, Any]:
        return {
            "threshold": self.threshold,
            "preview_words": self.preview_words,
            "preview_limit": self.preview_limit,
            "annotation_invariant": self.properties.annotation_invariant,
            "data_invariant": self.properties.data_invariant,
        }


class ClusterType(SummaryType):
    """Level-1 registration of the Cluster technique family."""

    name = TYPE_NAME

    def __init__(self, tokenizer: Tokenizer | None = None) -> None:
        self._tokenizer = tokenizer

    def create_instance(
        self, instance_name: str, config: Mapping[str, Any]
    ) -> ClusterInstance:
        properties = InstanceProperties(
            annotation_invariant=config.get("annotation_invariant", False),
            data_invariant=config.get("data_invariant", True),
        )
        return ClusterInstance(
            instance_name,
            threshold=config.get("threshold", 0.4),
            preview_words=config.get("preview_words", DEFAULT_PREVIEW_WORDS),
            preview_limit=config.get("preview_limit", DEFAULT_PREVIEW_LIMIT),
            tokenizer=self._tokenizer,
            properties=properties,
        )

    def object_from_json(self, data: Mapping[str, Any]) -> ClusterSummary:
        return ClusterSummary.from_json(data)
