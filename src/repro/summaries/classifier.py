"""The Classifier summary type.

A classifier instance (e.g. ``ClassBird1`` with labels Behavior / Disease /
Anatomy / Other) assigns every raw annotation one class label.  The
per-tuple summary object is the familiar rendering from Figure 1:

    ClassBird1  [(Behavior, 33), (Disease, 8), (Anatomy, 25), (Other, 16)]

Internally the object keeps the *annotation ids* per label, not just the
counts, because (a) the join merge must not double-count an annotation
attached to both inputs, (b) projection must remove individual annotations'
effects, and (c) zoom-in must expand a label back into its raw annotations.

Classification is annotation-invariant and data-invariant: the predicted
label of an annotation depends only on its text, so the summarize-once
optimization applies in full.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence, Set
from typing import Any

from repro.model.annotation import Annotation
from repro.summaries.base import (
    InstanceProperties,
    SummaryInstance,
    SummaryObject,
    SummaryType,
    ZoomComponent,
)
from repro.summaries.naive_bayes import NaiveBayesClassifier
from repro.text.tokenize import Tokenizer

TYPE_NAME = "Classifier"


class ClassifierSummary(SummaryObject):
    """Per-tuple classifier summary: label -> set of annotation ids."""

    type_name = TYPE_NAME
    copy_on_write = True

    def __init__(self, instance_name: str, labels: Sequence[str]) -> None:
        super().__init__(instance_name)
        self.labels: tuple[str, ...] = tuple(labels)
        self._members: dict[str, set[int]] = {label: set() for label in self.labels}

    # -- construction ------------------------------------------------

    def add(self, annotation_id: int, label: str) -> None:
        """Record ``annotation_id`` under ``label``.

        Re-adding an id under the same label is a no-op (idempotent), which
        makes replay-based maintenance safe.  Adding it under a *different*
        label raises: one annotation has exactly one class.
        """
        if label not in self._members:
            raise ValueError(
                f"label {label!r} not in instance labels {self.labels}"
            )
        for other_label, ids in self._members.items():
            if other_label != label and annotation_id in ids:
                raise ValueError(
                    f"annotation {annotation_id} already classified as "
                    f"{other_label!r}, cannot also be {label!r}"
                )
        self._ensure_owned()
        self._members[label].add(annotation_id)

    # -- inspection ----------------------------------------------------

    def count(self, label: str) -> int:
        """Number of annotations classified under ``label``."""
        return len(self._members.get(label, ()))

    def counts(self) -> list[tuple[str, int]]:
        """``(label, count)`` pairs in label order — the Figure 1 view."""
        return [(label, len(self._members[label])) for label in self.labels]

    def members(self, label: str) -> frozenset[int]:
        """Annotation ids classified under ``label``."""
        return frozenset(self._members.get(label, ()))

    def label_of(self, annotation_id: int) -> str | None:
        """The label assigned to ``annotation_id``, or None if absent."""
        for label, ids in self._members.items():
            if annotation_id in ids:
                return label
        return None

    def annotation_ids(self) -> frozenset[int]:
        return frozenset().union(*self._members.values()) if self._members else frozenset()

    # -- batch maintenance -----------------------------------------------

    def fold_many(
        self,
        instance: SummaryInstance,
        items: Sequence[tuple[Annotation, Any]],
    ) -> int:
        """Vectorized batch fold: one membership scan, one set update per label.

        The sequential path pays an O(labels x members) scan per fold (the
        cross-label conflict check inside :meth:`add`); here the id->label
        assignment is built once and new ids land in their label sets in
        bulk.  Already-present ids are skipped exactly as the maintenance
        layer's replay rule does.
        """
        if not items:
            return 0
        assigned: set[int] = set()
        for ids in self._members.values():
            assigned |= ids
        pending: dict[str, list[int]] = {}
        folded = 0
        for annotation, label in items:
            annotation_id = annotation.annotation_id
            if annotation_id in assigned:
                continue
            if label not in self._members:
                raise ValueError(
                    f"label {label!r} not in instance labels {self.labels}"
                )
            assigned.add(annotation_id)
            pending.setdefault(label, []).append(annotation_id)
            folded += 1
        if pending:
            self._ensure_owned()
            for label, ids in pending.items():
                self._members[label].update(ids)
        return folded

    # -- query-time algebra -------------------------------------------

    def copy(self) -> "ClassifierSummary":
        clone = ClassifierSummary(self.instance_name, self.labels)
        clone._members = {label: set(ids) for label, ids in self._members.items()}
        return clone

    def remove_annotations(self, ids: Set[int]) -> None:
        self._ensure_owned()
        for members in self._members.values():
            members -= ids

    def _materialize(self) -> None:
        self._members = {label: set(ids) for label, ids in self._members.items()}

    def merge(self, other: SummaryObject) -> "ClassifierSummary":
        if not isinstance(other, ClassifierSummary):
            raise TypeError(f"cannot merge ClassifierSummary with {type(other).__name__}")
        if other.labels != self.labels:
            raise ValueError(
                "cannot merge classifier summaries with different label sets: "
                f"{self.labels} vs {other.labels}"
            )
        merged = self.copy()
        for label, ids in other._members.items():
            # Set union is exactly the dedup-aware merge of Figure 2: an
            # annotation attached to both join inputs is counted once.
            merged._members[label] |= ids
        return merged

    # -- zoom-in ---------------------------------------------------------

    def zoom_components(self) -> list[ZoomComponent]:
        return [
            ZoomComponent(
                index=position,
                label=label,
                annotation_ids=tuple(sorted(self._members[label])),
            )
            for position, label in enumerate(self.labels, start=1)
        ]

    # -- bookkeeping -----------------------------------------------------

    def size_estimate(self) -> int:
        # Label strings plus ~8 bytes per stored annotation id.
        label_bytes = sum(len(label) for label in self.labels)
        id_bytes = 8 * sum(len(ids) for ids in self._members.values())
        return label_bytes + id_bytes + 16

    def to_json(self) -> dict[str, Any]:
        return {
            "type": self.type_name,
            "instance": self.instance_name,
            "labels": list(self.labels),
            "members": {label: sorted(ids) for label, ids in self._members.items()},
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "ClassifierSummary":
        obj = cls(data["instance"], data["labels"])
        for label, ids in data.get("members", {}).items():
            obj._members[label] = set(ids)
        return obj

    def render(self) -> str:
        body = ", ".join(f"({label}, {count})" for label, count in self.counts())
        return f"{self.instance_name} [{body}]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ClassifierSummary {self.render()}>"


class ClassifierInstance(SummaryInstance):
    """A configured classifier: labels + trained Naive Bayes model."""

    type_name = TYPE_NAME

    def __init__(
        self,
        name: str,
        labels: Sequence[str],
        model: NaiveBayesClassifier | None = None,
        properties: InstanceProperties | None = None,
    ) -> None:
        super().__init__(
            name,
            properties
            or InstanceProperties(annotation_invariant=True, data_invariant=True),
        )
        self.labels: tuple[str, ...] = tuple(labels)
        self.model = model or NaiveBayesClassifier(self.labels)
        if self.model.labels != self.labels:
            raise ValueError(
                f"model labels {self.model.labels} do not match "
                f"instance labels {self.labels}"
            )

    def train(self, examples: Sequence[tuple[str, str]]) -> None:
        """Train (or continue training) the underlying model."""
        self.model.fit(examples)

    def new_object(self) -> ClassifierSummary:
        return ClassifierSummary(self.name, self.labels)

    def analyze(self, annotation: Annotation) -> str:
        """Predict the class label — the cacheable contribution."""
        return self.model.predict(annotation.text)

    def add_to(
        self,
        obj: SummaryObject,
        annotation: Annotation,
        contribution: str,
    ) -> None:
        if not isinstance(obj, ClassifierSummary):
            raise TypeError(f"expected ClassifierSummary, got {type(obj).__name__}")
        obj.add(annotation.annotation_id, contribution)

    def config(self) -> dict[str, Any]:
        return {
            "labels": list(self.labels),
            "model": self.model.to_json(),
            "annotation_invariant": self.properties.annotation_invariant,
            "data_invariant": self.properties.data_invariant,
        }


class ClassifierType(SummaryType):
    """Level-1 registration of the Classifier technique family."""

    name = TYPE_NAME

    def __init__(self, tokenizer: Tokenizer | None = None) -> None:
        self._tokenizer = tokenizer

    def create_instance(
        self, instance_name: str, config: Mapping[str, Any]
    ) -> ClassifierInstance:
        labels = config["labels"]
        model_data = config.get("model")
        model = (
            NaiveBayesClassifier.from_json(model_data, tokenizer=self._tokenizer)
            if model_data
            else NaiveBayesClassifier(labels, tokenizer=self._tokenizer)
        )
        properties = InstanceProperties(
            annotation_invariant=config.get("annotation_invariant", True),
            data_invariant=config.get("data_invariant", True),
        )
        return ClassifierInstance(
            instance_name, labels, model=model, properties=properties
        )

    def object_from_json(self, data: Mapping[str, Any]) -> ClassifierSummary:
        return ClassifierSummary.from_json(data)
