"""Annotation summary framework.

Implements the three-level summarization hierarchy of InsightNotes
(Figure 4 of the demo paper):

1. **Summary Types** — Classifier, Cluster, and Snippet, integrated with the
   query engine (:mod:`repro.summaries.classifier`,
   :mod:`repro.summaries.cluster`, :mod:`repro.summaries.snippet`).  New
   types can be registered through :mod:`repro.summaries.registry`.
2. **Summary Instances** — admin-configured instantiations of a type
   (algorithm parameters, class labels, training model, invariant
   properties) that link many-to-many to user relations.
3. **Summary Objects** — the per-tuple summarization output carried through
   query plans, supporting dedup-aware merge, annotation-effect removal,
   and zoom-in component enumeration without access to the raw text.
"""

from repro.summaries.base import (
    InstanceProperties,
    SummaryInstance,
    SummaryObject,
    SummaryType,
    ZoomComponent,
)
from repro.summaries.classifier import (
    ClassifierInstance,
    ClassifierSummary,
    ClassifierType,
)
from repro.summaries.cluster import ClusterGroup, ClusterInstance, ClusterSummary, ClusterType
from repro.summaries.naive_bayes import NaiveBayesClassifier
from repro.summaries.registry import (
    SummaryTypeRegistry,
    default_registry,
    extended_registry,
)
from repro.summaries.snippet import SnippetEntry, SnippetInstance, SnippetSummary, SnippetType
from repro.summaries.terms import TermsInstance, TermsSummary, TermsType
from repro.summaries.timeline import (
    TimelineInstance,
    TimelineSummary,
    TimelineType,
)

__all__ = [
    "ClassifierInstance",
    "ClassifierSummary",
    "ClassifierType",
    "ClusterGroup",
    "ClusterInstance",
    "ClusterSummary",
    "ClusterType",
    "InstanceProperties",
    "NaiveBayesClassifier",
    "SnippetEntry",
    "SnippetInstance",
    "SnippetSummary",
    "SnippetType",
    "SummaryInstance",
    "SummaryObject",
    "SummaryType",
    "SummaryTypeRegistry",
    "TermsInstance",
    "TermsSummary",
    "TermsType",
    "TimelineInstance",
    "TimelineSummary",
    "TimelineType",
    "ZoomComponent",
    "default_registry",
    "extended_registry",
]
