"""The Terms summary type — frequent terms across a tuple's annotations.

An extension type beyond the paper's built-in three, registered through
the same level-1 interface (``extended_registry()``): for each tuple it
maintains, per term, the set of annotations mentioning it, and reports the
top-k most frequent terms.  This gives scientists an at-a-glance "what are
people talking about" view (``[(stonewort, 17), (influenza, 9), ...]``)
and zoom-in expands a term into the annotations that mention it.

Term extraction depends only on the annotation text, so the type is
annotation- and data-invariant and benefits from summarize-once.  The
full term -> ids map is kept (removal must be exact under projection);
only rendering and zoom enumeration are capped at ``top_k``.
"""

from __future__ import annotations

from collections.abc import Mapping, Set
from typing import Any

from repro.model.annotation import Annotation
from repro.summaries.base import (
    InstanceProperties,
    SummaryInstance,
    SummaryObject,
    SummaryType,
    ZoomComponent,
)
from repro.text.tokenize import Tokenizer

TYPE_NAME = "Terms"

DEFAULT_TOP_K = 8


class TermsSummary(SummaryObject):
    """Per-tuple term summary: term -> annotation ids mentioning it."""

    type_name = TYPE_NAME
    copy_on_write = True

    def __init__(self, instance_name: str, top_k: int = DEFAULT_TOP_K) -> None:
        super().__init__(instance_name)
        self.top_k = top_k
        self._members: dict[str, set[int]] = {}

    # -- construction ------------------------------------------------

    def add(self, annotation_id: int, terms: Set[str]) -> None:
        """Record that ``annotation_id`` mentions each of ``terms``."""
        self._ensure_owned()
        for term in terms:
            self._members.setdefault(term, set()).add(annotation_id)

    # -- inspection ----------------------------------------------------

    def term_count(self, term: str) -> int:
        """How many annotations mention ``term``."""
        return len(self._members.get(term, ()))

    def top_terms(self, k: int | None = None) -> list[tuple[str, int]]:
        """The ``k`` most frequent terms as ``(term, count)`` pairs.

        Count-descending, term-ascending tie-break — deterministic so the
        zoom-in INDEX addressing is stable.
        """
        limit = self.top_k if k is None else k
        ranked = sorted(
            self._members.items(), key=lambda item: (-len(item[1]), item[0])
        )
        return [(term, len(ids)) for term, ids in ranked[:limit]]

    def annotation_ids(self) -> frozenset[int]:
        ids: set[int] = set()
        for members in self._members.values():
            ids |= members
        return frozenset(ids)

    # -- query-time algebra -------------------------------------------

    def copy(self) -> "TermsSummary":
        clone = TermsSummary(self.instance_name, self.top_k)
        clone._members = {term: set(ids) for term, ids in self._members.items()}
        return clone

    def remove_annotations(self, ids: Set[int]) -> None:
        self._ensure_owned()
        for term in list(self._members):
            self._members[term] -= ids
            if not self._members[term]:
                del self._members[term]

    def _materialize(self) -> None:
        self._members = {term: set(ids) for term, ids in self._members.items()}

    def merge(self, other: SummaryObject) -> "TermsSummary":
        if not isinstance(other, TermsSummary):
            raise TypeError(f"cannot merge TermsSummary with {type(other).__name__}")
        merged = self.copy()
        merged.top_k = max(self.top_k, other.top_k)
        for term, ids in other._members.items():
            merged._members.setdefault(term, set()).update(ids)
        return merged

    # -- zoom-in ---------------------------------------------------------

    def zoom_components(self) -> list[ZoomComponent]:
        return [
            ZoomComponent(
                index=position,
                label=term,
                annotation_ids=tuple(sorted(self._members[term])),
            )
            for position, (term, _count) in enumerate(self.top_terms(), start=1)
        ]

    # -- bookkeeping -----------------------------------------------------

    def size_estimate(self) -> int:
        return 16 + sum(
            len(term) + 8 * len(ids) for term, ids in self._members.items()
        )

    def to_json(self) -> dict[str, Any]:
        return {
            "type": self.type_name,
            "instance": self.instance_name,
            "top_k": self.top_k,
            "members": {
                term: sorted(ids) for term, ids in self._members.items()
            },
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "TermsSummary":
        obj = cls(data["instance"], top_k=data.get("top_k", DEFAULT_TOP_K))
        for term, ids in data.get("members", {}).items():
            obj._members[term] = set(ids)
        return obj

    def render(self) -> str:
        body = ", ".join(f"({term}, {count})" for term, count in self.top_terms())
        return f"{self.instance_name} [{body}]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TermsSummary {len(self._members)} terms>"


class TermsInstance(SummaryInstance):
    """A configured Terms instance: tokenizer + top-k."""

    type_name = TYPE_NAME

    def __init__(
        self,
        name: str,
        top_k: int = DEFAULT_TOP_K,
        tokenizer: Tokenizer | None = None,
        properties: InstanceProperties | None = None,
    ) -> None:
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        super().__init__(
            name,
            properties
            or InstanceProperties(annotation_invariant=True, data_invariant=True),
        )
        self.top_k = top_k
        self._tokenizer = tokenizer or Tokenizer()

    def new_object(self) -> TermsSummary:
        return TermsSummary(self.name, top_k=self.top_k)

    def analyze(self, annotation: Annotation) -> frozenset[str]:
        """Distinct terms of the annotation — the cacheable contribution."""
        return frozenset(self._tokenizer.tokens(annotation.text))

    def add_to(
        self,
        obj: SummaryObject,
        annotation: Annotation,
        contribution: frozenset[str],
    ) -> None:
        if not isinstance(obj, TermsSummary):
            raise TypeError(f"expected TermsSummary, got {type(obj).__name__}")
        obj.add(annotation.annotation_id, contribution)

    def config(self) -> dict[str, Any]:
        return {
            "top_k": self.top_k,
            "annotation_invariant": self.properties.annotation_invariant,
            "data_invariant": self.properties.data_invariant,
        }


class TermsType(SummaryType):
    """Level-1 registration of the Terms technique family."""

    name = TYPE_NAME

    def __init__(self, tokenizer: Tokenizer | None = None) -> None:
        self._tokenizer = tokenizer

    def create_instance(
        self, instance_name: str, config: Mapping[str, Any]
    ) -> TermsInstance:
        properties = InstanceProperties(
            annotation_invariant=config.get("annotation_invariant", True),
            data_invariant=config.get("data_invariant", True),
        )
        return TermsInstance(
            instance_name,
            top_k=config.get("top_k", DEFAULT_TOP_K),
            tokenizer=self._tokenizer,
            properties=properties,
        )

    def object_from_json(self, data: Mapping[str, Any]) -> TermsSummary:
        return TermsSummary.from_json(data)
