"""Multinomial Naive Bayes text classifier, from scratch.

The Classifier summary type categorizes annotations into user-defined
classes ("Behavior", "Disease", "Anatomy", "Other" for ornithological
databases; "FunctionPrediction", "Provenance", "Comment" for biological
ones).  The paper cites the standard multinomial Naive Bayes formulation
of Manning, Raghavan & Schütze [12]; this module implements it directly:

* training estimates class priors and per-class term likelihoods with
  Laplace (add-one) smoothing;
* prediction scores a document by summed log-probabilities;
* :meth:`NaiveBayesClassifier.partial_fit` supports incremental training,
  so a live system can keep improving the model from curated examples
  without a full retrain.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from collections.abc import Iterable, Mapping, Sequence
from typing import Any

from repro.text.tokenize import Tokenizer


class NaiveBayesClassifier:
    """Multinomial Naive Bayes with Laplace smoothing.

    Parameters
    ----------
    labels:
        The closed set of class labels, in the order zoom-in indexes them.
        Documents are always assigned one of these labels.
    tokenizer:
        Tokenizer applied to training and prediction text.
    smoothing:
        Laplace smoothing constant (alpha); 1.0 is standard add-one.
    """

    def __init__(
        self,
        labels: Sequence[str],
        tokenizer: Tokenizer | None = None,
        smoothing: float = 1.0,
    ) -> None:
        if not labels:
            raise ValueError("labels must be non-empty")
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate labels: {list(labels)}")
        if smoothing <= 0:
            raise ValueError(f"smoothing must be positive, got {smoothing}")
        self.labels: tuple[str, ...] = tuple(labels)
        self._label_set = frozenset(labels)
        self._tokenizer = tokenizer or Tokenizer()
        self._smoothing = smoothing
        self._doc_counts: Counter[str] = Counter()
        self._term_counts: dict[str, Counter[str]] = defaultdict(Counter)
        self._total_terms: Counter[str] = Counter()
        self._vocabulary: set[str] = set()
        self._total_docs = 0

    # -- training --------------------------------------------------------

    def fit(self, examples: Iterable[tuple[str, str]]) -> "NaiveBayesClassifier":
        """Train from ``(text, label)`` pairs; returns ``self``."""
        for text, label in examples:
            self.partial_fit(text, label)
        return self

    def partial_fit(self, text: str, label: str) -> None:
        """Fold one labelled example into the model."""
        if label not in self._label_set:
            raise ValueError(f"unknown label {label!r}; expected one of {self.labels}")
        tokens = self._tokenizer.tokens(text)
        self._doc_counts[label] += 1
        self._total_docs += 1
        self._term_counts[label].update(tokens)
        self._total_terms[label] += len(tokens)
        self._vocabulary.update(tokens)

    @property
    def is_trained(self) -> bool:
        """True once at least one example has been seen."""
        return self._total_docs > 0

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct terms seen during training."""
        return len(self._vocabulary)

    # -- prediction ------------------------------------------------------

    def log_scores(self, text: str) -> dict[str, float]:
        """Per-label unnormalized log posterior for ``text``.

        On an untrained model every label scores equally (uniform prior,
        no likelihood evidence), so prediction degrades to the first label
        rather than raising — an untrained classifier instance must still
        be linkable to a relation.
        """
        tokens = self._tokenizer.tokens(text)
        vocab_size = max(1, len(self._vocabulary))
        scores: dict[str, float] = {}
        for label in self.labels:
            doc_count = self._doc_counts.get(label, 0)
            prior = (doc_count + self._smoothing) / (
                self._total_docs + self._smoothing * len(self.labels)
            )
            score = math.log(prior)
            term_counts = self._term_counts.get(label, Counter())
            denominator = self._total_terms.get(label, 0) + self._smoothing * vocab_size
            for token in tokens:
                likelihood = (term_counts.get(token, 0) + self._smoothing) / denominator
                score += math.log(likelihood)
            scores[label] = score
        return scores

    def predict(self, text: str) -> str:
        """Most probable label for ``text`` (ties broken by label order)."""
        scores = self.log_scores(text)
        return max(self.labels, key=lambda label: (scores[label], ))

    def predict_proba(self, text: str) -> dict[str, float]:
        """Normalized posterior probabilities via the log-sum-exp trick."""
        scores = self.log_scores(text)
        peak = max(scores.values())
        exp_scores = {label: math.exp(score - peak) for label, score in scores.items()}
        total = sum(exp_scores.values())
        return {label: value / total for label, value in exp_scores.items()}

    # -- persistence -----------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        """Serialize the trained model (labels, counts, smoothing)."""
        return {
            "labels": list(self.labels),
            "smoothing": self._smoothing,
            "doc_counts": dict(self._doc_counts),
            "term_counts": {
                label: dict(counts) for label, counts in self._term_counts.items()
            },
            "total_terms": dict(self._total_terms),
            "total_docs": self._total_docs,
        }

    @classmethod
    def from_json(
        cls, data: Mapping[str, Any], tokenizer: Tokenizer | None = None
    ) -> "NaiveBayesClassifier":
        """Rebuild a model serialized by :meth:`to_json`."""
        model = cls(
            labels=data["labels"],
            tokenizer=tokenizer,
            smoothing=data.get("smoothing", 1.0),
        )
        model._doc_counts = Counter(data.get("doc_counts", {}))
        model._term_counts = defaultdict(
            Counter,
            {
                label: Counter(counts)
                for label, counts in data.get("term_counts", {}).items()
            },
        )
        model._total_terms = Counter(data.get("total_terms", {}))
        model._total_docs = int(data.get("total_docs", 0))
        for counts in model._term_counts.values():
            model._vocabulary.update(counts)
        return model
