"""Abstract contracts of the summarization hierarchy.

The engine integrates a summarization technique by implementing three
classes:

* :class:`SummaryType` (level 1) — the technique family; a factory for
  instances, registered once with the engine.
* :class:`SummaryInstance` (level 2) — a configured instantiation: the
  concrete algorithm, its parameters, labels, trained model, and the
  :class:`InstanceProperties` the maintenance layer uses for optimization.
* :class:`SummaryObject` (level 3) — the per-tuple output that travels
  through query plans.

The query engine only ever calls the *object*-level operations — ``merge``,
``remove_annotations``, ``zoom_components`` — which must work on the
object's own state without fetching raw annotations.  The maintenance layer
additionally calls the *instance*-level ``analyze``/``add_to`` pair when new
annotations arrive.
"""

from __future__ import annotations

import abc
import copy as _copylib
from collections.abc import Mapping, Sequence, Set
from dataclasses import dataclass, field
from typing import Any

from repro.model.annotation import Annotation


@dataclass(frozen=True, slots=True)
class InstanceProperties:
    """Optimization-relevant properties of a summary instance.

    ``annotation_invariant``
        True when summarizing a new annotation *a* over tuple *t* does not
        depend on *t*'s current annotations.  Classification and snippet
        extraction are annotation-invariant; clustering is not (the
        assignment depends on the clusters already formed on *t*).
    ``data_invariant``
        True when the summarization does not depend on *t*'s attribute
        values.

    When both are true the system summarizes an annotation **once**, even
    when it is attached to many tuples (the summarize-once optimization of
    §2.3), and reuses the cached result everywhere.
    """

    annotation_invariant: bool = True
    data_invariant: bool = True
    extra: Mapping[str, Any] = field(default_factory=dict)

    @property
    def summarize_once(self) -> bool:
        """Whether analyze results may be cached per annotation id."""
        return self.annotation_invariant and self.data_invariant


@dataclass(frozen=True, slots=True)
class ZoomComponent:
    """One zoom-addressable component of a summary object.

    The ZOOMIN command addresses components by 1-based ``index`` within the
    object ("On NaiveBayesClass Index 1" selects the first class label).
    ``annotation_ids`` are the raw annotations the component expands into.
    """

    index: int
    label: str
    annotation_ids: tuple[int, ...]
    detail: str = ""

    @property
    def count(self) -> int:
        """Number of raw annotations behind this component."""
        return len(self.annotation_ids)


class SummaryObject(abc.ABC):
    """Per-tuple summary state (level 3 of the hierarchy).

    Subclasses hold all state needed to merge with counterpart objects and
    to remove the effect of individual annotations by id.  They may carry
    additional *heavy* state used only at maintenance time (e.g. cluster
    centroids); :meth:`for_query` strips it before the object enters a
    query pipeline.
    """

    #: Summary type name this object belongs to; set by subclasses.
    type_name: str = ""

    #: Opt-in flag for copy-on-write sharing.  Types that set it True must
    #: call :meth:`_ensure_owned` at the top of every in-place mutator; in
    #: exchange, :meth:`for_query` becomes an O(1) alias instead of a deep
    #: copy, so unfiltered scans stop copying every summary.  The built-in
    #: types all opt in; third-party types keep the safe deep-copy default.
    copy_on_write: bool = False

    def __init__(self, instance_name: str) -> None:
        self.instance_name = instance_name
        self._shared = False

    # -- identity -----------------------------------------------------

    @abc.abstractmethod
    def annotation_ids(self) -> frozenset[int]:
        """Ids of all annotations whose effect this object contains."""

    def is_empty(self) -> bool:
        """True when no annotation contributes to this object."""
        return not self.annotation_ids()

    # -- query-time algebra -------------------------------------------

    @abc.abstractmethod
    def copy(self) -> "SummaryObject":
        """Independent copy safe to mutate in a query pipeline."""

    @abc.abstractmethod
    def remove_annotations(self, ids: Set[int]) -> None:
        """Remove the effect of the given annotations, in place.

        Must be the exact inverse of having added them, up to internal
        bookkeeping the query layer cannot observe (e.g. stale centroids).
        Unknown ids are ignored.
        """

    @abc.abstractmethod
    def merge(self, other: "SummaryObject") -> "SummaryObject":
        """Return the dedup-aware union of ``self`` and ``other``.

        Annotations present in both inputs (the same annotation attached to
        both joined tuples) must be counted once — Figure 2's merge step.
        Neither input is mutated.
        """

    # -- batch maintenance -----------------------------------------------

    def fold_many(
        self,
        instance: "SummaryInstance",
        items: Sequence[tuple[Annotation, Any]],
    ) -> int:
        """Fold a batch of analyzed annotations into this object.

        ``items`` are ``(annotation, contribution)`` pairs in arrival
        order; annotations whose effect is already present are skipped,
        matching the maintenance layer's idempotent-replay rule.  Returns
        how many annotations were actually folded.

        The default loops the instance's single-annotation ``add_to``, so
        every summary type works with the bulk ingestion pipeline out of
        the box; types with per-fold overhead worth amortizing (classifier
        membership scans, cluster centroid recomputation and reranking)
        override it with a vectorized implementation that must produce
        state identical to the sequential fold.
        """
        folded = 0
        for annotation, contribution in items:
            if annotation.annotation_id in self.annotation_ids():
                continue
            instance.add_to(self, annotation, contribution)
            folded += 1
        return folded

    # -- zoom-in ---------------------------------------------------------

    @abc.abstractmethod
    def zoom_components(self) -> list[ZoomComponent]:
        """Enumerate zoom-addressable components, 1-indexed, in order."""

    # -- copy-on-write ---------------------------------------------------

    def share(self) -> "SummaryObject":
        """O(1) alias of this object sharing its payload copy-on-write.

        Both the alias and the original are flagged shared; whichever side
        mutates first replaces its payload with an owned copy (through
        :meth:`_ensure_owned`), so the other side observes a stable
        snapshot.  Only meaningful for :attr:`copy_on_write` types — their
        mutators carry the unshare guard.
        """
        clone = _copylib.copy(self)
        clone._shared = True
        self._shared = True
        return clone

    def _ensure_owned(self) -> None:
        """Unshare before an in-place mutation (no-op when not shared)."""
        if self._shared:
            self._materialize()
            self._shared = False

    def _materialize(self) -> None:
        """Replace shared payload containers with owned copies.

        The default deep-copies every attribute except identity and the
        sharing flag; copy-on-write subclasses override it with cheaper
        container copies.
        """
        owned = _copylib.deepcopy(
            {
                name: value
                for name, value in self.__dict__.items()
                if name not in ("instance_name", "_shared")
            }
        )
        self.__dict__.update(owned)

    # -- bookkeeping -----------------------------------------------------

    def for_query(self) -> "SummaryObject":
        """Copy stripped of maintenance-only heavy state.

        Copy-on-write types hand out an O(1) shared alias (the scan hot
        path); others fall back to a plain copy.  Subclasses with heavy
        state override this to strip it.
        """
        if self.copy_on_write:
            return self.share()
        return self.copy()

    @abc.abstractmethod
    def size_estimate(self) -> int:
        """Approximate serialized size in bytes (for storage benchmarks)."""

    @abc.abstractmethod
    def to_json(self) -> dict[str, Any]:
        """JSON-serializable representation (inverse of ``from_json``)."""

    @classmethod
    @abc.abstractmethod
    def from_json(cls, data: Mapping[str, Any]) -> "SummaryObject":
        """Rebuild an object serialized by :meth:`to_json`."""

    @abc.abstractmethod
    def render(self) -> str:
        """One-line human-readable rendering for the Gate front-end."""


class SummaryInstance(abc.ABC):
    """A configured summarization instance (level 2 of the hierarchy).

    Instances are created by their :class:`SummaryType`, persisted in the
    summary catalog, and linked to user relations.  The maintenance layer
    drives them through :meth:`analyze` / :meth:`add_to`:

    * ``analyze`` computes the annotation-dependent part of the
      summarization (a *contribution*: predicted label, term vector,
      extracted snippet).  When :attr:`properties` allow, the engine caches
      contributions per annotation id.
    * ``add_to`` folds a contribution into a tuple's summary object.
    """

    def __init__(self, name: str, properties: InstanceProperties) -> None:
        self.name = name
        self.properties = properties

    #: Summary type name; set by subclasses.
    type_name: str = ""

    @abc.abstractmethod
    def new_object(self) -> SummaryObject:
        """Create an empty summary object for one tuple."""

    @abc.abstractmethod
    def analyze(self, annotation: Annotation) -> Any:
        """Compute the reusable, annotation-only part of the summary."""

    @abc.abstractmethod
    def add_to(
        self,
        obj: SummaryObject,
        annotation: Annotation,
        contribution: Any,
    ) -> None:
        """Fold ``annotation`` (analyzed as ``contribution``) into ``obj``."""

    @abc.abstractmethod
    def config(self) -> dict[str, Any]:
        """Persistable configuration (inverse of the type's creation)."""

    def describe(self) -> str:
        """Human-readable one-line description for catalog listings."""
        flags = []
        if self.properties.annotation_invariant:
            flags.append("AnnotationInvariant")
        if self.properties.data_invariant:
            flags.append("DataInvariant")
        detail = ", ".join(flags) if flags else "no invariants"
        return f"{self.name} ({self.type_name}; {detail})"


class SummaryType(abc.ABC):
    """A summarization technique family (level 1 of the hierarchy)."""

    #: Unique type name used in catalogs and ZOOMIN commands.
    name: str = ""

    @abc.abstractmethod
    def create_instance(
        self, instance_name: str, config: Mapping[str, Any]
    ) -> SummaryInstance:
        """Build an instance from a persistable configuration mapping."""

    @abc.abstractmethod
    def object_from_json(self, data: Mapping[str, Any]) -> SummaryObject:
        """Deserialize a summary object of this type."""
