"""Summary type registry — the extensibility point of the engine.

InsightNotes is extensible at two levels: admins configure *instances* of
the built-in types, and developers can integrate entirely new *types* by
implementing the :class:`~repro.summaries.base.SummaryType` contract and
registering it here.  The query engine, catalog, and maintenance layer all
resolve types through a registry, so a registered type participates in
query propagation, persistence, and zoom-in with no further wiring.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from typing import Any

from repro.errors import UnknownSummaryTypeError
from repro.summaries.base import SummaryInstance, SummaryObject, SummaryType
from repro.summaries.classifier import ClassifierType
from repro.summaries.cluster import ClusterType
from repro.summaries.snippet import SnippetType


class SummaryTypeRegistry:
    """Name -> :class:`SummaryType` mapping with creation helpers."""

    def __init__(self) -> None:
        self._types: dict[str, SummaryType] = {}

    def register(self, summary_type: SummaryType) -> None:
        """Register ``summary_type`` under its :attr:`~SummaryType.name`.

        Re-registering a name replaces the previous type; this lets tests
        and applications swap in instrumented variants.
        """
        if not summary_type.name:
            raise ValueError(
                f"{type(summary_type).__name__} has an empty type name"
            )
        self._types[summary_type.name] = summary_type

    def get(self, type_name: str) -> SummaryType:
        """Resolve a type by name or raise :class:`UnknownSummaryTypeError`."""
        try:
            return self._types[type_name]
        except KeyError:
            raise UnknownSummaryTypeError(type_name) from None

    def __contains__(self, type_name: str) -> bool:
        return type_name in self._types

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._types))

    def type_names(self) -> list[str]:
        """Registered type names, sorted."""
        return sorted(self._types)

    def create_instance(
        self, type_name: str, instance_name: str, config: Mapping[str, Any]
    ) -> SummaryInstance:
        """Create a configured instance of the named type."""
        return self.get(type_name).create_instance(instance_name, config)

    def object_from_json(self, data: Mapping[str, Any]) -> SummaryObject:
        """Deserialize a summary object by its embedded type tag."""
        return self.get(data["type"]).object_from_json(data)


def default_registry() -> SummaryTypeRegistry:
    """A fresh registry holding the paper's three built-in types."""
    registry = SummaryTypeRegistry()
    registry.register(ClassifierType())
    registry.register(ClusterType())
    registry.register(SnippetType())
    return registry


def extended_registry() -> SummaryTypeRegistry:
    """The default registry plus this library's extension types.

    Adds the Terms (frequent-terms) and Timeline (activity histogram)
    types — summary families beyond the paper's three, built on the same
    level-1 contract.
    """
    from repro.summaries.terms import TermsType
    from repro.summaries.timeline import TimelineType

    registry = default_registry()
    registry.register(TermsType())
    registry.register(TimelineType())
    return registry
