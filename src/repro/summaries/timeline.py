"""The Timeline summary type — annotation activity over time.

An extension type beyond the paper's built-in three: buckets each tuple's
annotations by creation time and reports the activity histogram.  In
curation workflows this answers "when was this record last discussed, and
how hard?" without reading a single annotation; zoom-in expands a bucket
into the annotations created in that window.

Bucketing uses only the annotation's own timestamp, so the type is
annotation- and data-invariant (summarize-once applies).
"""

from __future__ import annotations

import datetime
from collections.abc import Mapping, Set
from typing import Any

from repro.model.annotation import Annotation
from repro.summaries.base import (
    InstanceProperties,
    SummaryInstance,
    SummaryObject,
    SummaryType,
    ZoomComponent,
)

TYPE_NAME = "Timeline"

#: Default bucket width: one week.
DEFAULT_BUCKET_SECONDS = 7 * 24 * 3600


def bucket_label(bucket: int, bucket_seconds: int) -> str:
    """Human-readable UTC label for a bucket's start instant."""
    start = datetime.datetime.fromtimestamp(
        bucket * bucket_seconds, tz=datetime.timezone.utc
    )
    if bucket_seconds >= 24 * 3600:
        return start.strftime("%Y-%m-%d")
    return start.strftime("%Y-%m-%d %H:%M")


class TimelineSummary(SummaryObject):
    """Per-tuple activity histogram: bucket index -> annotation ids."""

    type_name = TYPE_NAME
    copy_on_write = True

    def __init__(
        self, instance_name: str, bucket_seconds: int = DEFAULT_BUCKET_SECONDS
    ) -> None:
        super().__init__(instance_name)
        self.bucket_seconds = bucket_seconds
        self._buckets: dict[int, set[int]] = {}

    # -- construction ------------------------------------------------

    def add(self, annotation_id: int, bucket: int) -> None:
        """Record ``annotation_id`` in time ``bucket``."""
        self._ensure_owned()
        self._buckets.setdefault(bucket, set()).add(annotation_id)

    # -- inspection ----------------------------------------------------

    def histogram(self) -> list[tuple[int, int]]:
        """``(bucket, count)`` pairs in chronological order."""
        return [
            (bucket, len(self._buckets[bucket]))
            for bucket in sorted(self._buckets)
        ]

    def busiest_bucket(self) -> int | None:
        """The bucket with the most annotations (earliest on ties)."""
        if not self._buckets:
            return None
        return min(
            self._buckets, key=lambda bucket: (-len(self._buckets[bucket]), bucket)
        )

    def annotation_ids(self) -> frozenset[int]:
        ids: set[int] = set()
        for members in self._buckets.values():
            ids |= members
        return frozenset(ids)

    # -- query-time algebra -------------------------------------------

    def copy(self) -> "TimelineSummary":
        clone = TimelineSummary(self.instance_name, self.bucket_seconds)
        clone._buckets = {b: set(ids) for b, ids in self._buckets.items()}
        return clone

    def remove_annotations(self, ids: Set[int]) -> None:
        self._ensure_owned()
        for bucket in list(self._buckets):
            self._buckets[bucket] -= ids
            if not self._buckets[bucket]:
                del self._buckets[bucket]

    def _materialize(self) -> None:
        self._buckets = {bucket: set(ids) for bucket, ids in self._buckets.items()}

    def merge(self, other: SummaryObject) -> "TimelineSummary":
        if not isinstance(other, TimelineSummary):
            raise TypeError(
                f"cannot merge TimelineSummary with {type(other).__name__}"
            )
        if other.bucket_seconds != self.bucket_seconds:
            raise ValueError(
                "cannot merge timelines with different bucket widths: "
                f"{self.bucket_seconds} vs {other.bucket_seconds}"
            )
        merged = self.copy()
        for bucket, ids in other._buckets.items():
            merged._buckets.setdefault(bucket, set()).update(ids)
        return merged

    # -- zoom-in ---------------------------------------------------------

    def zoom_components(self) -> list[ZoomComponent]:
        return [
            ZoomComponent(
                index=position,
                label=bucket_label(bucket, self.bucket_seconds),
                annotation_ids=tuple(sorted(self._buckets[bucket])),
            )
            for position, bucket in enumerate(sorted(self._buckets), start=1)
        ]

    # -- bookkeeping -----------------------------------------------------

    def size_estimate(self) -> int:
        return 16 + sum(8 + 8 * len(ids) for ids in self._buckets.values())

    def to_json(self) -> dict[str, Any]:
        return {
            "type": self.type_name,
            "instance": self.instance_name,
            "bucket_seconds": self.bucket_seconds,
            "buckets": {
                str(bucket): sorted(ids) for bucket, ids in self._buckets.items()
            },
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "TimelineSummary":
        obj = cls(
            data["instance"],
            bucket_seconds=data.get("bucket_seconds", DEFAULT_BUCKET_SECONDS),
        )
        for bucket, ids in data.get("buckets", {}).items():
            obj._buckets[int(bucket)] = set(ids)
        return obj

    def render(self) -> str:
        body = ", ".join(
            f"({bucket_label(bucket, self.bucket_seconds)}, {count})"
            for bucket, count in self.histogram()
        )
        return f"{self.instance_name} [{body}]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TimelineSummary {len(self._buckets)} buckets>"


class TimelineInstance(SummaryInstance):
    """A configured Timeline instance: the bucket width."""

    type_name = TYPE_NAME

    def __init__(
        self,
        name: str,
        bucket_seconds: int = DEFAULT_BUCKET_SECONDS,
        properties: InstanceProperties | None = None,
    ) -> None:
        if bucket_seconds < 1:
            raise ValueError(f"bucket_seconds must be >= 1, got {bucket_seconds}")
        super().__init__(
            name,
            properties
            or InstanceProperties(annotation_invariant=True, data_invariant=True),
        )
        self.bucket_seconds = bucket_seconds

    def new_object(self) -> TimelineSummary:
        return TimelineSummary(self.name, bucket_seconds=self.bucket_seconds)

    def analyze(self, annotation: Annotation) -> int:
        """The annotation's time bucket — the cacheable contribution."""
        return int(annotation.created_at // self.bucket_seconds)

    def add_to(
        self,
        obj: SummaryObject,
        annotation: Annotation,
        contribution: int,
    ) -> None:
        if not isinstance(obj, TimelineSummary):
            raise TypeError(f"expected TimelineSummary, got {type(obj).__name__}")
        obj.add(annotation.annotation_id, contribution)

    def config(self) -> dict[str, Any]:
        return {
            "bucket_seconds": self.bucket_seconds,
            "annotation_invariant": self.properties.annotation_invariant,
            "data_invariant": self.properties.data_invariant,
        }


class TimelineType(SummaryType):
    """Level-1 registration of the Timeline technique family."""

    name = TYPE_NAME

    def create_instance(
        self, instance_name: str, config: Mapping[str, Any]
    ) -> TimelineInstance:
        properties = InstanceProperties(
            annotation_invariant=config.get("annotation_invariant", True),
            data_invariant=config.get("data_invariant", True),
        )
        return TimelineInstance(
            instance_name,
            bucket_seconds=config.get("bucket_seconds", DEFAULT_BUCKET_SECONDS),
            properties=properties,
        )

    def object_from_json(self, data: Mapping[str, Any]) -> TimelineSummary:
        return TimelineSummary.from_json(data)
