"""The Snippet summary type.

Large-object annotations — attached articles, long experiment reports —
cannot usefully propagate through queries in full.  A snippet instance
(``TextSummary1`` in Figure 1) extracts a few representative sentences from
each document annotation and carries only those:

    TextSummary1 ["Experiment E ...", "Wikipedia article ..."]

Two extractive methods are provided (after the survey the paper cites
[24]):

* ``frequency`` — SumBasic-style scoring: sentences score by the mean
  document-frequency weight of their content words; after each pick the
  chosen words are down-weighted to reduce redundancy.
* ``lexrank`` — PageRank over the sentence cosine-similarity graph
  (via :mod:`networkx`), picking the highest-centrality sentences.

Snippet extraction depends only on the annotation text, so the type is
annotation- and data-invariant and benefits from summarize-once.
"""

from __future__ import annotations

from collections.abc import Mapping, Set
from dataclasses import dataclass
from typing import Any

from repro.model.annotation import Annotation
from repro.summaries.base import (
    InstanceProperties,
    SummaryInstance,
    SummaryObject,
    SummaryType,
    ZoomComponent,
)
from repro.text.sentences import split_sentences
from repro.text.similarity import cosine_similarity
from repro.text.tokenize import Tokenizer
from repro.text.vectorize import normalize, term_frequencies

TYPE_NAME = "Snippet"

#: Documents shorter than this many sentences are carried verbatim.
MIN_SENTENCES_TO_SUMMARIZE = 2


def frequency_snippet(
    text: str,
    max_sentences: int,
    tokenizer: Tokenizer,
) -> list[str]:
    """SumBasic-style extractive summary of ``text``.

    Returns up to ``max_sentences`` sentences in original document order.
    """
    sentences = split_sentences(text)
    if len(sentences) <= max(MIN_SENTENCES_TO_SUMMARIZE, max_sentences):
        return sentences[:max_sentences] if sentences else []
    token_lists = [tokenizer.tokens(sentence) for sentence in sentences]
    weights: dict[str, float] = {}
    total_tokens = sum(len(tokens) for tokens in token_lists) or 1
    for tokens in token_lists:
        for token in tokens:
            weights[token] = weights.get(token, 0.0) + 1.0 / total_tokens

    chosen: list[int] = []
    available = set(range(len(sentences)))
    while available and len(chosen) < max_sentences:
        best_index = max(
            sorted(available),
            key=lambda i: (
                sum(weights.get(t, 0.0) for t in token_lists[i])
                / max(1, len(token_lists[i]))
            ),
        )
        chosen.append(best_index)
        available.discard(best_index)
        # Down-weight the picked words so later picks add new content.
        for token in token_lists[best_index]:
            if token in weights:
                weights[token] *= weights[token]
    return [sentences[i] for i in sorted(chosen)]


def lexrank_snippet(
    text: str,
    max_sentences: int,
    tokenizer: Tokenizer,
    similarity_threshold: float = 0.1,
) -> list[str]:
    """LexRank extractive summary: PageRank on the sentence graph."""
    import networkx as nx

    sentences = split_sentences(text)
    if len(sentences) <= max(MIN_SENTENCES_TO_SUMMARIZE, max_sentences):
        return sentences[:max_sentences] if sentences else []
    vectors = [
        normalize(term_frequencies(tokenizer.tokens(sentence)))
        for sentence in sentences
    ]
    graph = nx.Graph()
    graph.add_nodes_from(range(len(sentences)))
    for i in range(len(sentences)):
        for j in range(i + 1, len(sentences)):
            similarity = cosine_similarity(vectors[i], vectors[j])
            if similarity >= similarity_threshold:
                graph.add_edge(i, j, weight=similarity)
    scores = nx.pagerank(graph, weight="weight")
    ranked = sorted(range(len(sentences)), key=lambda i: (-scores.get(i, 0.0), i))
    chosen = sorted(ranked[:max_sentences])
    return [sentences[i] for i in chosen]


@dataclass(frozen=True, slots=True)
class SnippetEntry:
    """The snippet extracted from one document annotation."""

    annotation_id: int
    title: str
    sentences: tuple[str, ...]

    def preview(self) -> str:
        """Display string: the title, or the first extracted sentence."""
        if self.title:
            return self.title
        return self.sentences[0] if self.sentences else "(empty document)"


class SnippetSummary(SummaryObject):
    """Per-tuple snippet summary: one entry per document annotation."""

    type_name = TYPE_NAME
    copy_on_write = True

    def __init__(self, instance_name: str) -> None:
        super().__init__(instance_name)
        self.entries: list[SnippetEntry] = []

    # -- construction ------------------------------------------------

    def add_entry(self, entry: SnippetEntry) -> None:
        """Append ``entry`` unless its annotation is already summarized."""
        if any(e.annotation_id == entry.annotation_id for e in self.entries):
            return
        self._ensure_owned()
        self.entries.append(entry)

    # -- inspection ----------------------------------------------------

    def annotation_ids(self) -> frozenset[int]:
        return frozenset(entry.annotation_id for entry in self.entries)

    def previews(self) -> list[str]:
        """Display previews in entry order — the Figure 1 view."""
        return [entry.preview() for entry in self.entries]

    # -- query-time algebra -------------------------------------------

    def copy(self) -> "SnippetSummary":
        clone = SnippetSummary(self.instance_name)
        clone.entries = list(self.entries)  # entries are immutable
        return clone

    def remove_annotations(self, ids: Set[int]) -> None:
        # Rebinding to a fresh list is inherently copy-on-write safe.
        self.entries = [e for e in self.entries if e.annotation_id not in ids]
        self._shared = False

    def _materialize(self) -> None:
        self.entries = list(self.entries)

    def merge(self, other: SummaryObject) -> "SnippetSummary":
        if not isinstance(other, SnippetSummary):
            raise TypeError(f"cannot merge SnippetSummary with {type(other).__name__}")
        merged = self.copy()
        for entry in other.entries:
            merged.add_entry(entry)  # add_entry dedups by annotation id
        return merged

    # -- zoom-in ---------------------------------------------------------

    def zoom_components(self) -> list[ZoomComponent]:
        return [
            ZoomComponent(
                index=position,
                label=entry.preview(),
                annotation_ids=(entry.annotation_id,),
                detail=" ".join(entry.sentences),
            )
            for position, entry in enumerate(self.entries, start=1)
        ]

    # -- bookkeeping -----------------------------------------------------

    def size_estimate(self) -> int:
        return 16 + sum(
            8 + len(entry.title) + sum(len(s) for s in entry.sentences)
            for entry in self.entries
        )

    def to_json(self) -> dict[str, Any]:
        return {
            "type": self.type_name,
            "instance": self.instance_name,
            "entries": [
                {
                    "annotation_id": entry.annotation_id,
                    "title": entry.title,
                    "sentences": list(entry.sentences),
                }
                for entry in self.entries
            ],
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "SnippetSummary":
        obj = cls(data["instance"])
        for entry in data.get("entries", []):
            obj.entries.append(
                SnippetEntry(
                    annotation_id=entry["annotation_id"],
                    title=entry.get("title", ""),
                    sentences=tuple(entry.get("sentences", ())),
                )
            )
        return obj

    def render(self) -> str:
        body = ", ".join(repr(preview) for preview in self.previews())
        return f"{self.instance_name} [{body}]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SnippetSummary {len(self.entries)} entries>"


class SnippetInstance(SummaryInstance):
    """A configured snippet extractor."""

    type_name = TYPE_NAME

    #: Supported extraction methods.
    METHODS = ("frequency", "lexrank")

    def __init__(
        self,
        name: str,
        method: str = "frequency",
        max_sentences: int = 2,
        documents_only: bool = True,
        tokenizer: Tokenizer | None = None,
        properties: InstanceProperties | None = None,
    ) -> None:
        if method not in self.METHODS:
            raise ValueError(f"unknown snippet method {method!r}; expected one of {self.METHODS}")
        if max_sentences < 1:
            raise ValueError(f"max_sentences must be >= 1, got {max_sentences}")
        super().__init__(
            name,
            properties
            or InstanceProperties(annotation_invariant=True, data_invariant=True),
        )
        self.method = method
        self.max_sentences = max_sentences
        self.documents_only = documents_only
        self._tokenizer = tokenizer or Tokenizer()

    def new_object(self) -> SnippetSummary:
        return SnippetSummary(self.name)

    def analyze(self, annotation: Annotation) -> SnippetEntry | None:
        """Extract the snippet — the cacheable contribution.

        Returns None for annotations this instance does not summarize
        (plain comments when ``documents_only`` is set).
        """
        if self.documents_only and not annotation.is_document:
            return None
        if self.method == "lexrank":
            sentences = lexrank_snippet(
                annotation.text, self.max_sentences, self._tokenizer
            )
        else:
            sentences = frequency_snippet(
                annotation.text, self.max_sentences, self._tokenizer
            )
        return SnippetEntry(
            annotation_id=annotation.annotation_id,
            title=annotation.title,
            sentences=tuple(sentences),
        )

    def add_to(
        self,
        obj: SummaryObject,
        annotation: Annotation,
        contribution: SnippetEntry | None,
    ) -> None:
        if not isinstance(obj, SnippetSummary):
            raise TypeError(f"expected SnippetSummary, got {type(obj).__name__}")
        if contribution is not None:
            obj.add_entry(contribution)

    def config(self) -> dict[str, Any]:
        return {
            "method": self.method,
            "max_sentences": self.max_sentences,
            "documents_only": self.documents_only,
            "annotation_invariant": self.properties.annotation_invariant,
            "data_invariant": self.properties.data_invariant,
        }


class SnippetType(SummaryType):
    """Level-1 registration of the Snippet technique family."""

    name = TYPE_NAME

    def __init__(self, tokenizer: Tokenizer | None = None) -> None:
        self._tokenizer = tokenizer

    def create_instance(
        self, instance_name: str, config: Mapping[str, Any]
    ) -> SnippetInstance:
        properties = InstanceProperties(
            annotation_invariant=config.get("annotation_invariant", True),
            data_invariant=config.get("data_invariant", True),
        )
        return SnippetInstance(
            instance_name,
            method=config.get("method", "frequency"),
            max_sentences=config.get("max_sentences", 2),
            documents_only=config.get("documents_only", True),
            tokenizer=self._tokenizer,
            properties=properties,
        )

    def object_from_json(self, data: Mapping[str, Any]) -> SnippetSummary:
        return SnippetSummary.from_json(data)
