"""Text-mining substrate used by the summary types.

InsightNotes integrates classification, clustering, and text summarization
with the annotation engine.  This package provides the shared pieces those
techniques need: tokenization (:mod:`repro.text.tokenize`), sentence
splitting (:mod:`repro.text.sentences`), sparse term vectors and TF-IDF
weighting (:mod:`repro.text.vectorize`), and vector similarity measures
(:mod:`repro.text.similarity`).

Everything here is implemented from scratch over the standard library so the
summary types have no heavyweight dependencies.
"""

from repro.text.sentences import split_sentences
from repro.text.similarity import cosine_similarity, jaccard_similarity
from repro.text.tokenize import STOPWORDS, Tokenizer, tokenize
from repro.text.vectorize import (
    SparseVector,
    TfIdfVectorizer,
    term_frequencies,
)

__all__ = [
    "STOPWORDS",
    "SparseVector",
    "TfIdfVectorizer",
    "Tokenizer",
    "cosine_similarity",
    "jaccard_similarity",
    "split_sentences",
    "term_frequencies",
    "tokenize",
]
