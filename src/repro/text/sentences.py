"""Sentence splitting for the Snippet summary type.

Large-object annotations (attached articles, long observation reports) are
summarized by extracting their most representative sentences.  This module
provides the sentence segmentation those extractors run on.

The splitter is rule-based: it breaks on ``.``, ``!``, ``?`` followed by
whitespace and an upper-case/numeric start, while protecting common
abbreviations and decimal numbers.  That is accurate enough for the
synthetic and scientific prose the workloads generate, and — critically for
reproducibility — fully deterministic.
"""

from __future__ import annotations

import re

# Abbreviations after which a period does not end the sentence.
_ABBREVIATIONS: frozenset[str] = frozenset(
    {
        "dr", "mr", "mrs", "ms", "prof", "sp", "spp", "subsp", "var",
        "fig", "figs", "eq", "sec", "vs", "etc", "al", "e.g", "i.e",
        "approx", "ca", "cf", "no", "vol", "pp",
    }
)

_BOUNDARY_RE = re.compile(r"([.!?])\s+")


def _is_abbreviation(text_before: str) -> bool:
    """Return True when the text before a period ends in an abbreviation."""
    tail = text_before.rsplit(None, 1)[-1] if text_before.split() else ""
    tail = tail.lstrip("([\"'")
    stripped = tail.rstrip(".").lower()
    if stripped in _ABBREVIATIONS:
        return True
    # Single letters ("J. Smith") and initials ("U.S.") are abbreviations.
    return len(stripped) == 1 or bool(re.fullmatch(r"(?:[a-z]\.)+[a-z]?", tail.lower()))


def split_sentences(text: str) -> list[str]:
    """Split ``text`` into sentences.

    Returns the non-empty sentences in document order, each stripped of
    surrounding whitespace.  Newlines count as in-sentence whitespace so
    wrapped paragraphs stay together; blank lines always break sentences.
    """
    sentences: list[str] = []
    for paragraph in re.split(r"\n\s*\n", text):
        paragraph = " ".join(paragraph.split())
        if not paragraph:
            continue
        start = 0
        for match in _BOUNDARY_RE.finditer(paragraph):
            end = match.end(1)
            candidate = paragraph[start:end]
            rest = paragraph[match.end():]
            if match.group(1) == "." and _is_abbreviation(candidate):
                continue
            # Require the next sentence to start like one.
            if rest and not rest[0].isupper() and not rest[0].isdigit() and rest[0] not in "\"'(":
                continue
            sentence = candidate.strip()
            if sentence:
                sentences.append(sentence)
            start = match.end()
        tail = paragraph[start:].strip()
        if tail:
            sentences.append(tail)
    return sentences
