"""Vector and set similarity measures.

The Cluster summary type assigns each incoming annotation to the nearest
existing cluster when the cosine similarity to its centroid exceeds the
instance's threshold; representative election picks the member closest to
the centroid.  Jaccard similarity is used by tests and the quality
benchmarks as an independent check.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Set


def dot(left: Mapping[str, float], right: Mapping[str, float]) -> float:
    """Sparse dot product, iterating over the smaller vector."""
    if len(left) > len(right):
        left, right = right, left
    return sum(weight * right.get(token, 0.0) for token, weight in left.items())


def magnitude(vector: Mapping[str, float]) -> float:
    """Euclidean length of a sparse vector."""
    return math.sqrt(sum(weight * weight for weight in vector.values()))


def cosine_similarity(
    left: Mapping[str, float], right: Mapping[str, float]
) -> float:
    """Cosine similarity in [0, 1] for non-negative sparse vectors.

    Either vector being empty yields 0.0 — an empty annotation is similar
    to nothing, so it always starts its own cluster.
    """
    if not left or not right:
        return 0.0
    denominator = magnitude(left) * magnitude(right)
    if denominator == 0.0:
        return 0.0
    return dot(left, right) / denominator


def jaccard_similarity(left: Set[str], right: Set[str]) -> float:
    """Jaccard similarity of two token sets; 1.0 when both are empty."""
    if not left and not right:
        return 1.0
    union = len(left | right)
    if union == 0:
        return 1.0
    return len(left & right) / union
