"""Sparse term vectors and TF-IDF weighting.

The Cluster summary type keeps one centroid vector per cluster and updates
it incrementally as annotations arrive; the Snippet type scores sentences by
term weight.  Both work over the :class:`SparseVector` mapping defined here.

The :class:`TfIdfVectorizer` is *online*: document frequencies are updated
as each new annotation is observed, so it never needs the full corpus up
front — a requirement inherited from InsightNotes' incremental-maintenance
contract (new annotations arrive continuously and must be folded into the
summaries without recomputation).
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Mapping

from repro.text.tokenize import Tokenizer

# A sparse vector is simply a token -> weight mapping.
SparseVector = dict[str, float]


def term_frequencies(tokens: Iterable[str]) -> SparseVector:
    """Return raw term counts for ``tokens`` as a sparse vector."""
    return dict(Counter(tokens))


def normalize(vector: Mapping[str, float]) -> SparseVector:
    """Return ``vector`` scaled to unit Euclidean length.

    The zero vector is returned unchanged (as an empty dict) rather than
    raising, because empty annotations ("", punctuation only) legitimately
    tokenize to nothing.
    """
    norm = math.sqrt(sum(weight * weight for weight in vector.values()))
    if norm == 0.0:
        return {}
    return {token: weight / norm for token, weight in vector.items()}


class TfIdfVectorizer:
    """Online TF-IDF vectorizer.

    Each call to :meth:`add_document` updates the document-frequency table;
    :meth:`vector` weights a document's term counts by the *current* inverse
    document frequencies.  Weights therefore drift as the corpus grows —
    exactly the behaviour of the stream-clustering technique the paper
    integrates, where early cluster centroids are built from early IDF
    estimates and refreshed lazily.
    """

    def __init__(self, tokenizer: Tokenizer | None = None) -> None:
        self._tokenizer = tokenizer or Tokenizer()
        self._document_frequency: Counter[str] = Counter()
        self._num_documents = 0

    @property
    def num_documents(self) -> int:
        """Number of documents folded into the IDF table so far."""
        return self._num_documents

    def add_document(self, text: str) -> list[str]:
        """Fold ``text`` into the document-frequency table.

        Returns the token list so callers can vectorize without
        re-tokenizing.
        """
        tokens = self._tokenizer.tokens(text)
        self._document_frequency.update(set(tokens))
        self._num_documents += 1
        return tokens

    def remove_document(self, text: str) -> None:
        """Remove a previously added document from the IDF table.

        Used when an annotation's effect is projected out of a summary.
        Removing a document that was never added corrupts the table; callers
        are expected to pair add/remove exactly.
        """
        tokens = set(self._tokenizer.tokens(text))
        for token in tokens:
            remaining = self._document_frequency[token] - 1
            if remaining <= 0:
                del self._document_frequency[token]
            else:
                self._document_frequency[token] = remaining
        self._num_documents = max(0, self._num_documents - 1)

    def idf(self, token: str) -> float:
        """Smoothed inverse document frequency of ``token``."""
        df = self._document_frequency.get(token, 0)
        return math.log((1 + self._num_documents) / (1 + df)) + 1.0

    def vector(self, text: str, *, unit: bool = True) -> SparseVector:
        """Return the TF-IDF vector of ``text`` under current IDF weights."""
        return self.vector_from_tokens(self._tokenizer.tokens(text), unit=unit)

    def vector_from_tokens(
        self, tokens: Iterable[str], *, unit: bool = True
    ) -> SparseVector:
        """Return the TF-IDF vector for a pre-tokenized document."""
        counts = term_frequencies(tokens)
        weighted = {
            token: count * self.idf(token) for token, count in counts.items()
        }
        return normalize(weighted) if unit else weighted
