"""Tokenization for annotation text.

Annotations in InsightNotes are free-text values ("found eating stonewort",
"size seems wrong", attached article bodies).  The summary types — Naive
Bayes classification, stream clustering, snippet extraction — all consume a
normalized token stream produced here.

The tokenizer lower-cases, strips punctuation, drops stopwords and very
short tokens, and applies a light suffix-stripping stemmer.  It is
deliberately deterministic: identical text always produces the identical
token sequence, which the incremental-maintenance layer relies on when it
*removes* an annotation's effect from a summary (the removal must be the
exact inverse of the addition).
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

# A compact English stopword list.  Kept small on purpose: annotation text
# is short, and over-aggressive stopword removal hurts the classifier.
STOPWORDS: frozenset[str] = frozenset(
    """
    a about above after again all am an and any are as at be because been
    before being below between both but by could did do does doing down
    during each few for from further had has have having he her here hers
    him his how i if in into is it its itself just me more most my no nor
    not of off on once only or other our ours out over own same she should
    so some such than that the their theirs them then there these they this
    those through to too under until up very was we were what when where
    which while who whom why will with you your yours
    """.split()
)

_WORD_RE = re.compile(r"[a-z0-9]+(?:'[a-z]+)?")

# Suffixes stripped by the light stemmer, longest first so e.g. "ingly"
# wins over "ly".  This is intentionally far weaker than Porter: it only
# needs to conflate obvious inflections ("feeding"/"feeds"/"feed") without
# mangling domain vocabulary ("species" must not become "speci").
_SUFFIXES: tuple[str, ...] = ("ingly", "edly", "ing", "ed", "ly", "es", "s")

_SUFFIX_KEEP_WHOLE: frozenset[str] = frozenset(
    # Words that look inflected but are not; stripping would destroy them.
    {"species", "this", "is", "was", "has", "its", "during", "wings"}
)


def _stem(token: str) -> str:
    """Strip one inflectional suffix from ``token`` when safe.

    A suffix is stripped only when the remaining stem keeps at least three
    characters, which avoids reducing short words to meaningless stubs.
    """
    if token in _SUFFIX_KEEP_WHOLE:
        return token
    for suffix in _SUFFIXES:
        if token.endswith(suffix) and len(token) - len(suffix) >= 3:
            return token[: -len(suffix)]
    return token


@dataclass(frozen=True)
class Tokenizer:
    """Configurable text tokenizer.

    Parameters
    ----------
    stopwords:
        Tokens removed from the output stream.  Defaults to
        :data:`STOPWORDS`.
    min_length:
        Tokens shorter than this (before stemming) are dropped.
    stem:
        Whether to apply the light suffix stemmer.
    """

    stopwords: frozenset[str] = field(default=STOPWORDS)
    min_length: int = 2
    stem: bool = True

    def tokens(self, text: str) -> list[str]:
        """Return the token list for ``text``."""
        return list(self.iter_tokens(text))

    def iter_tokens(self, text: str) -> Iterator[str]:
        """Yield tokens from ``text`` one at a time."""
        for match in _WORD_RE.finditer(text.lower()):
            token = match.group()
            if len(token) < self.min_length or token in self.stopwords:
                continue
            yield _stem(token) if self.stem else token

    def vocabulary(self, texts: Iterable[str]) -> set[str]:
        """Return the set of distinct tokens across ``texts``."""
        vocab: set[str] = set()
        for text in texts:
            vocab.update(self.iter_tokens(text))
        return vocab


_DEFAULT_TOKENIZER = Tokenizer()


def tokenize(text: str) -> list[str]:
    """Tokenize ``text`` with the default tokenizer configuration."""
    return _DEFAULT_TOKENIZER.tokens(text)
