"""Annotated-database generation.

Builds a ready-to-query :class:`~repro.engine.session.InsightNotes`
session that mirrors the paper's demonstration setup:

* a ``birds`` relation (name, species, region, weight) and a ``sightings``
  relation (species, region, observer, count) sharing join keys;
* the four summary instances of Figure 1 — two classifiers (``ClassBird1``
  over Behavior/Disease/Anatomy/Other, ``ClassBird2`` over
  Provenance/Comment/Question/Other), one cluster (``SimCluster``), and
  one snippet instance (``TextSummary1``) — trained on a synthetic
  labelled corpus and linked to ``birds``;
* themed free-text annotations at a configurable annotations-per-row
  ratio (the paper quotes 30x-250x), a fraction of which are large
  document annotations and a fraction of which attach to multiple rows.

Ground-truth categories for every generated annotation are retained for
the quality benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.engine.session import InsightNotes
from repro.model.cell import CellRef
from repro.workloads.corpus import AnnotationFactory

_BIRD_NAMES = [
    "Swan Goose", "Mute Swan", "Snow Goose", "Tundra Swan", "Canada Goose",
    "Trumpeter Swan", "Brant", "Barnacle Goose", "Ross Goose", "Whooper Swan",
]
_SPECIES = [
    "Anser cygnoides", "Cygnus olor", "Anser caerulescens",
    "Cygnus columbianus", "Branta canadensis", "Cygnus buccinator",
    "Branta bernicla", "Branta leucopsis", "Anser rossii", "Cygnus cygnus",
]
_REGIONS = ["northeast", "southeast", "midwest", "mountain", "pacific"]
_OBSERVERS = ["aria", "ben", "carla", "dmitri", "elena", "farid"]

_GENE_SYMBOLS = [
    "BRCA1", "TP53", "MYC", "EGFR", "KRAS", "PTEN", "RB1", "APC",
    "VHL", "ATM",
]
_ORGANISMS = ["human", "mouse", "zebrafish", "fruitfly"]
_CHROMOSOMES = ["1", "2", "7", "13", "17", "X"]
_TISSUES = ["liver", "brain", "muscle", "kidney", "retina"]
_LABS = ["wetlab-a", "wetlab-b", "seqcore", "external"]

#: Ground-truth category -> GeneClasses label (genomics profile).
GENECLASSES_MAPPING = {
    "FunctionPrediction": "FunctionPrediction",
    "Experiment": "Experiment",
    "Provenance": "Provenance",
    "Comment": "Other",
    "Question": "Other",
}

#: Ground-truth category -> ClassBird1 label.
CLASSBIRD1_MAPPING = {
    "Behavior": "Behavior",
    "Disease": "Disease",
    "Anatomy": "Anatomy",
    "Provenance": "Other",
    "Comment": "Other",
    "Question": "Other",
}

#: Ground-truth category -> ClassBird2 label.
CLASSBIRD2_MAPPING = {
    "Provenance": "Provenance",
    "Comment": "Comment",
    "Question": "Question",
    "Behavior": "Other",
    "Disease": "Other",
    "Anatomy": "Other",
}


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the generated workload.

    ``annotations_per_row`` is the paper's headline ratio (30x / 120x /
    250x).  ``document_fraction`` of annotations are large documents;
    ``multi_row_fraction`` attach to several rows (exercising the
    summarize-once path); ``column_fraction`` attach to a single random
    column rather than the whole row (exercising projection semantics).
    """

    num_birds: int = 20
    num_sightings: int = 40
    annotations_per_row: int = 30
    document_fraction: float = 0.02
    multi_row_fraction: float = 0.05
    column_fraction: float = 0.3
    training_per_category: int = 12
    cluster_threshold: float = 0.35
    with_classifiers: bool = True
    with_cluster: bool = True
    with_snippet: bool = True
    annotate_sightings: bool = False
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_birds < 1:
            raise ValueError("num_birds must be >= 1")
        if self.annotations_per_row < 0:
            raise ValueError("annotations_per_row must be >= 0")
        for name in ("document_fraction", "multi_row_fraction", "column_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass
class GeneratedWorkload:
    """A populated session plus the generation ground truth."""

    session: InsightNotes
    config: WorkloadConfig
    bird_rows: list[int] = field(default_factory=list)
    sighting_rows: list[int] = field(default_factory=list)
    ground_truth: dict[int, str] = field(default_factory=dict)
    document_ids: list[int] = field(default_factory=list)

    @property
    def annotation_count(self) -> int:
        """Total annotations generated."""
        return len(self.ground_truth)

    def instance_names(self) -> list[str]:
        """Summary instances defined by the generator."""
        return self.session.catalog.instance_names()


def build_genomics_workload(
    config: WorkloadConfig | None = None,
    session: InsightNotes | None = None,
) -> GeneratedWorkload:
    """Generate an annotated *genomics* database.

    The biological counterpart of :func:`build_workload`: a ``genes``
    relation and an ``assays`` relation, annotated from the genomics
    domain profile, with a ``GeneClasses`` classifier (the
    FunctionPrediction / Provenance / ... label set the paper names for
    biological databases), a content cluster, and a snippet instance.

    ``config.num_birds`` / ``num_sightings`` are interpreted as gene and
    assay counts (the knobs are domain-neutral).
    """
    from repro.workloads.domains import GENOMICS

    config = config or WorkloadConfig()
    session = session or InsightNotes()
    rng = random.Random(config.seed)
    factory = AnnotationFactory(seed=config.seed, profile=GENOMICS)

    session.create_table("genes", ["symbol", "organism", "chromosome", "length"])
    for i in range(config.num_birds):
        symbol = _GENE_SYMBOLS[i % len(_GENE_SYMBOLS)]
        if i >= len(_GENE_SYMBOLS):
            symbol = f"{symbol}L{i // len(_GENE_SYMBOLS)}"
        session.insert(
            "genes",
            (
                symbol,
                rng.choice(_ORGANISMS),
                rng.choice(_CHROMOSOMES),
                rng.randint(900, 250_000),
            ),
        )
    session.create_table("assays", ["organism", "tissue", "lab", "reads"])
    for _ in range(config.num_sightings):
        session.insert(
            "assays",
            (
                rng.choice(_ORGANISMS),
                rng.choice(_TISSUES),
                rng.choice(_LABS),
                rng.randint(1_000, 900_000),
            ),
        )

    training = factory.training_set(config.training_per_category)
    if config.with_classifiers:
        session.define_classifier(
            "GeneClasses",
            labels=["FunctionPrediction", "Experiment", "Provenance", "Other"],
            training=[
                (text, GENECLASSES_MAPPING[category])
                for text, category in training
            ],
        )
        session.link("GeneClasses", "genes")
    if config.with_cluster:
        session.define_cluster("GeneCluster", threshold=config.cluster_threshold)
        session.link("GeneCluster", "genes")
    if config.with_snippet:
        session.define_snippet("GeneDocs", max_sentences=2)
        session.link("GeneDocs", "genes")

    workload = GeneratedWorkload(session=session, config=config)
    workload.bird_rows = [row_id for row_id, _ in session.db.rows("genes")]
    workload.sighting_rows = [row_id for row_id, _ in session.db.rows("assays")]
    columns = session.db.columns("genes")
    specs: list[dict] = []
    categories: list[tuple[str, bool]] = []
    for row_id in workload.bird_rows:
        for _ in range(config.annotations_per_row):
            if rng.random() < config.document_fraction:
                title, body = factory.draw_document()
                specs.append(
                    {
                        "text": body,
                        "table": "genes",
                        "row_id": row_id,
                        "document": True,
                        "title": title,
                        "author": rng.choice(_LABS),
                    }
                )
                categories.append(("Comment", True))
                continue
            text, category = factory.draw()
            spec: dict = {"text": text, "table": "genes", "row_id": row_id}
            if rng.random() < config.column_fraction:
                spec["columns"] = [rng.choice(columns)]
            spec["author"] = rng.choice(_LABS)
            specs.append(spec)
            categories.append((category, False))
    for annotation, (category, is_document) in zip(
        session.add_annotations(specs), categories
    ):
        workload.ground_truth[annotation.annotation_id] = category
        if is_document:
            workload.document_ids.append(annotation.annotation_id)
    return workload


def build_workload(
    config: WorkloadConfig | None = None,
    session: InsightNotes | None = None,
) -> GeneratedWorkload:
    """Generate a fully annotated database per ``config``."""
    config = config or WorkloadConfig()
    session = session or InsightNotes()
    rng = random.Random(config.seed)
    factory = AnnotationFactory(seed=config.seed)

    _create_tables(session, config, rng)
    workload = GeneratedWorkload(session=session, config=config)
    workload.bird_rows = [
        row_id for row_id, _values in session.db.rows("birds")
    ]
    workload.sighting_rows = [
        row_id for row_id, _values in session.db.rows("sightings")
    ]
    _define_instances(session, config, factory)
    _annotate(workload, factory, rng)
    return workload


def _create_tables(
    session: InsightNotes, config: WorkloadConfig, rng: random.Random
) -> None:
    session.create_table("birds", ["name", "species", "region", "weight"])
    for i in range(config.num_birds):
        name = _BIRD_NAMES[i % len(_BIRD_NAMES)]
        species = _SPECIES[i % len(_SPECIES)]
        if i >= len(_BIRD_NAMES):
            name = f"{name} {i // len(_BIRD_NAMES) + 1}"
        session.insert(
            "birds",
            (
                name,
                species,
                rng.choice(_REGIONS),
                round(rng.uniform(1.2, 14.0), 1),
            ),
        )
    session.create_table("sightings", ["species", "region", "observer", "count"])
    for _ in range(config.num_sightings):
        session.insert(
            "sightings",
            (
                rng.choice(_SPECIES[: max(1, config.num_birds)])
                if config.num_birds < len(_SPECIES)
                else rng.choice(_SPECIES),
                rng.choice(_REGIONS),
                rng.choice(_OBSERVERS),
                rng.randint(1, 120),
            ),
        )


def _define_instances(
    session: InsightNotes, config: WorkloadConfig, factory: AnnotationFactory
) -> None:
    tables = ["birds"] + (["sightings"] if config.annotate_sightings else [])
    training = factory.training_set(config.training_per_category)
    if config.with_classifiers:
        session.define_classifier(
            "ClassBird1",
            labels=["Behavior", "Disease", "Anatomy", "Other"],
            training=[
                (text, CLASSBIRD1_MAPPING[category]) for text, category in training
            ],
        )
        session.define_classifier(
            "ClassBird2",
            labels=["Provenance", "Comment", "Question", "Other"],
            training=[
                (text, CLASSBIRD2_MAPPING[category]) for text, category in training
            ],
        )
        for table in tables:
            session.link("ClassBird1", table)
            session.link("ClassBird2", table)
    if config.with_cluster:
        session.define_cluster("SimCluster", threshold=config.cluster_threshold)
        for table in tables:
            session.link("SimCluster", table)
    if config.with_snippet:
        session.define_snippet("TextSummary1", max_sentences=2)
        for table in tables:
            session.link("TextSummary1", table)


def _annotate(
    workload: GeneratedWorkload, factory: AnnotationFactory, rng: random.Random
) -> None:
    session = workload.session
    config = workload.config
    targets: list[tuple[str, list[int], tuple[str, ...]]] = [
        ("birds", workload.bird_rows, session.db.columns("birds")),
    ]
    if config.annotate_sightings:
        targets.append(
            ("sightings", workload.sighting_rows, session.db.columns("sightings"))
        )
    for table, row_ids, columns in targets:
        specs: list[dict] = []
        categories: list[tuple[str, bool]] = []
        for row_id in row_ids:
            for _ in range(config.annotations_per_row):
                if rng.random() < config.document_fraction:
                    title, body = factory.draw_document()
                    specs.append(
                        {
                            "text": body,
                            "table": table,
                            "row_id": row_id,
                            "document": True,
                            "title": title,
                            "author": rng.choice(_OBSERVERS),
                        }
                    )
                    categories.append(("Comment", True))
                    continue
                text, category = factory.draw()
                spec: dict = {"text": text, "table": table, "row_id": row_id}
                if rng.random() < config.column_fraction:
                    spec["columns"] = [rng.choice(columns)]
                if rng.random() < config.multi_row_fraction and len(row_ids) > 1:
                    other = rng.choice([r for r in row_ids if r != row_id])
                    column = rng.choice(columns)
                    spec = {
                        "text": text,
                        "cells": [
                            CellRef(table, row_id, column),
                            CellRef(table, other, column),
                        ],
                    }
                spec["author"] = rng.choice(_OBSERVERS)
                specs.append(spec)
                categories.append((category, False))
        # One bulk ingest per annotated table: the rng draw order above is
        # unchanged from the per-annotation loop, and ``add_annotations``
        # assigns ids in spec order, so the generated database (ids,
        # ground truth, summary state) is identical — just built through
        # the batch path the ingest benchmark measures.
        for annotation, (category, is_document) in zip(
            session.add_annotations(specs), categories
        ):
            workload.ground_truth[annotation.annotation_id] = category
            if is_document:
                workload.document_ids.append(annotation.annotation_id)
