"""Synthetic workload generation.

The paper demonstrates on the AKN ornithological database, where bird
watchers add millions of free-text observations and the annotation count
runs 30x-250x the record count.  Those datasets are not redistributable,
so this package generates the closest synthetic equivalent: bird relations
with themed free-text annotations (behavior / disease / anatomy /
provenance / comments / questions), attached documents, configurable
annotations-per-row ratios, multi-tuple annotations, plus query and
zoom-in reference streams for the benchmarks.

All generation is seeded and fully deterministic.
"""

from repro.workloads.corpus import (
    ANNOTATION_CATEGORIES,
    AnnotationFactory,
    CorpusGenerator,
)
from repro.workloads.domains import GENOMICS, ORNITHOLOGY, PROFILES, DomainProfile
from repro.workloads.generator import (
    GeneratedWorkload,
    WorkloadConfig,
    build_genomics_workload,
    build_workload,
)
from repro.workloads.queries import QueryWorkload
from repro.workloads.zoomin_workload import ZoomInWorkload, zipf_weights

__all__ = [
    "ANNOTATION_CATEGORIES",
    "AnnotationFactory",
    "CorpusGenerator",
    "DomainProfile",
    "GENOMICS",
    "GeneratedWorkload",
    "ORNITHOLOGY",
    "PROFILES",
    "QueryWorkload",
    "WorkloadConfig",
    "ZoomInWorkload",
    "build_genomics_workload",
    "build_workload",
    "zipf_weights",
]
