"""Domain profiles for synthetic annotation corpora.

The paper stresses that annotation semantics are domain-specific: an
ornithological database classifies annotations into Behavior / Disease /
Anatomy, a biological one into FunctionPrediction / Provenance / Comment
(§2.3).  A :class:`DomainProfile` packages one such domain — its
ground-truth categories and themed sentence pools — so the corpus
generator, workload builders, and quality benchmarks can target any
domain with the same machinery.

Two profiles ship: :data:`ORNITHOLOGY` (the AKN-style bird domain the
demo uses) and :data:`GENOMICS` (the gene-curation domain the paper's
extensibility discussion names).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping


@dataclass(frozen=True)
class DomainProfile:
    """One annotation domain: categories and their sentence pools.

    ``pools`` maps each category to ``verb`` / ``object`` / ``context``
    phrase lists; a sentence is one draw from each, concatenated.
    ``document_topics`` and ``document_sentences`` drive large-object
    (attached article) generation.
    """

    name: str
    pools: Mapping[str, Mapping[str, tuple[str, ...]]]
    document_topics: tuple[str, ...]
    document_sentences: tuple[str, ...]
    #: Default category mix for the annotation factory (must sum ~1).
    default_weights: Mapping[str, float] = field(default_factory=dict)

    @property
    def categories(self) -> tuple[str, ...]:
        """Ground-truth categories, in declaration order."""
        return tuple(self.pools)


def _freeze(
    pools: dict[str, dict[str, list[str]]]
) -> Mapping[str, Mapping[str, tuple[str, ...]]]:
    return MappingProxyType(
        {
            category: MappingProxyType(
                {slot: tuple(phrases) for slot, phrases in slots.items()}
            )
            for category, slots in pools.items()
        }
    )


ORNITHOLOGY = DomainProfile(
    name="ornithology",
    pools=_freeze(
        {
            "Behavior": {
                "verb": [
                    "observed feeding on", "seen foraging among",
                    "spotted diving for", "watched chasing",
                    "noticed courting near", "recorded nesting by",
                    "seen preening at", "observed migrating over",
                    "caught grazing on",
                ],
                "object": [
                    "stonewort beds", "small insects", "pond weeds",
                    "mollusks", "grass shoots", "floating algae",
                    "shallow reeds", "grain fields",
                ],
                "context": [
                    "at dawn", "during low tide", "in the early evening",
                    "after heavy rain", "throughout the morning",
                    "near the shoreline",
                ],
            },
            "Disease": {
                "verb": [
                    "shows symptoms of", "appears infected with",
                    "tested positive for",
                    "displays lesions consistent with", "suffering from",
                    "possible carrier of",
                ],
                "object": [
                    "avian influenza", "aspergillosis", "avian pox",
                    "botulism", "a fungal infection", "parasitic mites",
                    "west nile virus",
                ],
                "context": [
                    "on the left wing", "around the beak",
                    "across the plumage", "affecting flight",
                    "with visible fatigue", "spreading in the flock",
                ],
            },
            "Anatomy": {
                "verb": [
                    "has an unusually large", "shows a deformed",
                    "displays a vivid", "carries a distinctive",
                    "exhibits an elongated", "bears an asymmetric",
                ],
                "object": [
                    "bill", "wingspan", "tail fan", "neck", "crest",
                    "leg band area", "primary feather set", "breast patch",
                ],
                "context": [
                    "compared to the species norm", "for a juvenile",
                    "suggesting hybridization", "typical of older males",
                    "measuring well above average",
                    "unlike nearby individuals",
                ],
            },
            "Provenance": {
                "verb": [
                    "record imported from", "value derived from",
                    "entry curated by", "measurement copied from",
                    "data traced back to", "field validated against",
                ],
                "object": [
                    "the 2009 census files", "station logbook 47",
                    "the AKN archive", "a museum specimen card",
                    "the regional survey batch", "an upstream database dump",
                ],
                "context": [
                    "with manual corrections", "during the spring ingest",
                    "by the curation team", "under protocol B",
                    "before deduplication", "with checksum verification",
                ],
            },
            "Comment": {
                "verb": [
                    "great sighting of", "lovely example of",
                    "another report of", "routine update about",
                    "fun encounter with", "brief note on",
                ],
                "object": [
                    "this individual", "the local flock", "a returning pair",
                    "the banded bird", "this population",
                    "the resident group",
                ],
                "context": [
                    "worth sharing", "for the monthly log",
                    "nothing unusual otherwise", "thanks to the volunteers",
                    "photo attached elsewhere", "as discussed at the meetup",
                ],
            },
            "Question": {
                "verb": [
                    "can anyone confirm", "is it normal to see",
                    "does anyone know why", "should we re-check",
                    "has someone verified", "why does the record show",
                ],
                "object": [
                    "this weight value", "the reported range",
                    "such early migration", "the species id",
                    "this plumage pattern", "the duplicate entry",
                ],
                "context": [
                    "for this region?", "at this time of year?",
                    "in this habitat?", "given last year's data?",
                    "or is it an error?", "before we publish?",
                ],
            },
        }
    ),
    document_topics=(
        "migration corridors", "wetland conservation",
        "breeding success rates", "banding methodology",
        "diet composition studies", "population dynamics",
        "habitat fragmentation", "climate-driven range shifts",
    ),
    document_sentences=(
        "The study tracked {count} individuals across {seasons} seasons.",
        "Results indicate a significant shift in {topic} over the last decade.",
        "Field teams recorded observations at {count} monitoring stations.",
        "Earlier surveys of {topic} reported broadly consistent findings.",
        "The analysis controls for observer effort and seasonal variation.",
        "Sample sizes remain modest, so conclusions about {topic} are preliminary.",
        "Follow-up work will extend the transects into adjacent wetlands.",
        "The appendix lists raw counts for every participating station.",
        "Detection probability was estimated with standard occupancy models.",
        "These findings align with continental trends in {topic}.",
    ),
    default_weights=MappingProxyType(
        {
            "Behavior": 0.30,
            "Comment": 0.28,
            "Anatomy": 0.15,
            "Provenance": 0.12,
            "Question": 0.10,
            "Disease": 0.05,
        }
    ),
)


GENOMICS = DomainProfile(
    name="genomics",
    pools=_freeze(
        {
            "FunctionPrediction": {
                "verb": [
                    "predicted to regulate", "likely involved in",
                    "computationally linked to", "annotated as part of",
                    "inferred to control", "homology suggests a role in",
                ],
                "object": [
                    "dna repair pathways", "tumor suppression",
                    "lipid metabolism", "transcription initiation",
                    "membrane transport", "cell cycle checkpoints",
                    "chromatin remodeling",
                ],
                "context": [
                    "based on orthology evidence", "from the motif scan",
                    "with high confidence", "pending wet-lab validation",
                    "per the pathway model", "in stressed cell lines",
                ],
            },
            "Experiment": {
                "verb": [
                    "knockout assay shows", "expression profiling reveals",
                    "western blot confirms", "crispr screen indicates",
                    "co-immunoprecipitation detects", "qpcr measurements show",
                ],
                "object": [
                    "reduced viability", "elevated transcript levels",
                    "protein complex formation", "loss of function",
                    "tissue specific expression", "a binding interaction",
                ],
                "context": [
                    "under oxidative stress", "in liver tissue",
                    "across three replicates", "at 48 hours",
                    "in the mutant strain", "relative to wild type",
                ],
            },
            "Provenance": {
                "verb": [
                    "record imported from", "annotation merged from",
                    "entry curated by", "mapping lifted over from",
                    "identifiers reconciled against", "sequence copied from",
                ],
                "object": [
                    "the consortium release", "an older assembly",
                    "the swiss curation team", "refseq build 112",
                    "the submitter archive", "a legacy flat file",
                ],
                "context": [
                    "during the spring ingest", "with manual corrections",
                    "under pipeline v7", "before deduplication",
                    "with md5 verification", "as part of the merge",
                ],
            },
            "Comment": {
                "verb": [
                    "interesting gene regarding", "general note on",
                    "routine update about", "see also the discussion of",
                    "worth revisiting for", "minor remark concerning",
                ],
                "object": [
                    "this locus", "the paralog family", "the splice variants",
                    "the upstream region", "this accession",
                    "the naming history",
                ],
                "context": [
                    "for the next release", "per the meeting notes",
                    "nothing blocking", "as community feedback",
                    "for completeness", "while triaging tickets",
                ],
            },
            "Question": {
                "verb": [
                    "can anyone confirm", "is it expected that",
                    "why does the record show", "should we re-run",
                    "has someone verified", "does anyone know whether",
                ],
                "object": [
                    "this coordinate range", "the strand assignment",
                    "such low coverage", "the organism mapping",
                    "this duplicate symbol", "the reported length",
                ],
                "context": [
                    "for this assembly?", "before we publish?",
                    "given the new reads?", "or is it a lift-over bug?",
                    "in the primary source?", "against the browser view?",
                ],
            },
        }
    ),
    document_topics=(
        "comparative genomics", "variant calling pipelines",
        "gene family evolution", "expression atlases",
        "functional annotation transfer", "assembly quality",
    ),
    document_sentences=(
        "The pipeline processed {count} samples across {seasons} batches.",
        "Results indicate measurable bias in {topic} at low coverage.",
        "Replication across {count} cohorts supports the main finding.",
        "Earlier releases of {topic} reported broadly consistent calls.",
        "The appendix lists per-gene statistics for every cohort.",
        "Sample sizes remain modest, so conclusions about {topic} are preliminary.",
        "Follow-up work will target the unresolved paralog clusters.",
        "Quality metrics were computed with the standard toolchain.",
        "These findings align with published surveys of {topic}.",
    ),
    default_weights=MappingProxyType(
        {
            "FunctionPrediction": 0.25,
            "Experiment": 0.20,
            "Provenance": 0.20,
            "Comment": 0.25,
            "Question": 0.10,
        }
    ),
)


#: Profiles by name, for lookup in configs and CLIs.
PROFILES: Mapping[str, DomainProfile] = MappingProxyType(
    {profile.name: profile for profile in (ORNITHOLOGY, GENOMICS)}
)
