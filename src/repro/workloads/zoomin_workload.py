"""Zoom-in reference streams.

Interactive zoom-in traffic is highly skewed — users keep drilling into a
handful of recent, interesting results.  The EXP-Z1 benchmark therefore
replays Zipf-distributed reference streams over a set of QIDs, which is
where RCO's frequency/recency factors earn their keep against LRU/LFU.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass


def zipf_weights(count: int, exponent: float = 1.1) -> list[float]:
    """Zipf weights ``1/rank^exponent`` for ranks 1..count."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if exponent < 0:
        raise ValueError(f"exponent must be non-negative, got {exponent}")
    return [1.0 / (rank**exponent) for rank in range(1, count + 1)]


@dataclass(frozen=True)
class ZoomInReference:
    """One replayed zoom-in: which QID, which instance, which component."""

    qid: int
    instance: str
    index: int | None

    def command_text(self) -> str:
        """The corresponding ZOOMIN command."""
        text = f"ZOOMIN REFERENCE QID = {self.qid} ON {self.instance}"
        if self.index is not None:
            text += f" INDEX {self.index}"
        return text


class ZoomInWorkload:
    """Seeded Zipf-skewed zoom-in stream over known QIDs."""

    def __init__(
        self,
        qids: Sequence[int],
        instances: Sequence[str],
        exponent: float = 1.1,
        max_index: int = 4,
        seed: int = 13,
    ) -> None:
        if not qids:
            raise ValueError("qids must be non-empty")
        if not instances:
            raise ValueError("instances must be non-empty")
        self._qids = list(qids)
        self._instances = list(instances)
        self._weights = zipf_weights(len(self._qids), exponent)
        self._max_index = max_index
        self._rng = random.Random(seed)

    def draw(self) -> ZoomInReference:
        """One zoom-in reference draw."""
        qid = self._rng.choices(self._qids, weights=self._weights)[0]
        instance = self._rng.choice(self._instances)
        index: int | None = None
        if self._max_index > 0 and self._rng.random() < 0.8:
            index = self._rng.randint(1, self._max_index)
        return ZoomInReference(qid=qid, instance=instance, index=index)

    def stream(self, length: int) -> list[ZoomInReference]:
        """A reference stream of the given length."""
        return [self.draw() for _ in range(length)]
