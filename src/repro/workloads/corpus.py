"""Synthetic annotation text.

Generates free-text annotations in the style of real curation streams,
parameterized by a :class:`~repro.workloads.domains.DomainProfile` —
the AKN-style ornithology domain by default, genomics as the second
shipped profile.  Every generated annotation carries its ground-truth
category, which the quality benchmark (EXP-Q1) scores classifiers
against.

Texts are template-based over category word pools, so (a) a Naive Bayes
classifier genuinely has signal to learn, (b) same-category texts are
lexically similar enough for threshold clustering to group them, and (c)
generation is seeded and deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.workloads.domains import ORNITHOLOGY, DomainProfile

#: Ground-truth categories of the default (ornithology) profile.  The
#: first three match ClassBird1's labels in Figure 1; the last three
#: match ClassBird2's.
ANNOTATION_CATEGORIES: tuple[str, ...] = ORNITHOLOGY.categories


class CorpusGenerator:
    """Seeded generator of themed annotation texts for one domain."""

    def __init__(self, seed: int = 7, profile: DomainProfile = ORNITHOLOGY) -> None:
        self._rng = random.Random(seed)
        self.profile = profile

    def sentence(self, category: str) -> str:
        """One annotation sentence of the given ground-truth category."""
        pools = self.profile.pools.get(category)
        if pools is None:
            raise ValueError(
                f"unknown category {category!r}; expected one of "
                f"{self.profile.categories}"
            )
        rng = self._rng
        return (
            f"{rng.choice(pools['verb'])} {rng.choice(pools['object'])} "
            f"{rng.choice(pools['context'])}"
        )

    def passage(self, category: str, sentences: int = 2) -> str:
        """A multi-sentence annotation of one category.

        Field observations are rarely single clauses; the generator joins
        several themed sentences so raw annotation sizes resemble real
        curation notes.
        """
        return ". ".join(
            self.sentence(category) for _ in range(max(1, sentences))
        )

    def labelled_sentences(
        self, count: int, categories: tuple[str, ...] | None = None
    ) -> list[tuple[str, str]]:
        """``count`` ``(text, category)`` pairs, categories round-robin."""
        categories = categories or self.profile.categories
        return [
            (
                self.sentence(categories[i % len(categories)]),
                categories[i % len(categories)],
            )
            for i in range(count)
        ]

    def document(self, sentence_count: int = 12) -> tuple[str, str]:
        """A multi-sentence article; returns ``(title, body)``."""
        rng = self._rng
        topic = rng.choice(self.profile.document_topics)
        title = f"Report on {topic}"
        sentences = []
        for _ in range(sentence_count):
            template = rng.choice(self.profile.document_sentences)
            sentences.append(
                template.format(
                    topic=topic,
                    count=rng.randint(12, 480),
                    seasons=rng.randint(2, 9),
                )
            )
        return title, " ".join(sentences)


@dataclass
class AnnotationFactory:
    """Draws annotations with a configurable category mix.

    ``category_weights`` defaults to the profile's own skew (comments
    dominate, rare categories stay rare).
    """

    seed: int = 7
    category_weights: dict[str, float] | None = None
    profile: DomainProfile = ORNITHOLOGY

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._corpus = CorpusGenerator(self.seed * 31 + 1, profile=self.profile)
        if self.category_weights is None:
            defaults = dict(self.profile.default_weights)
            if not defaults:
                defaults = {
                    category: 1.0 for category in self.profile.categories
                }
            self.category_weights = defaults
        self._categories = list(self.category_weights)
        self._weights = [self.category_weights[c] for c in self._categories]

    def draw(self) -> tuple[str, str]:
        """One ``(text, ground_truth_category)`` draw of 1-3 sentences."""
        category = self._rng.choices(self._categories, weights=self._weights)[0]
        sentences = self._rng.randint(1, 3)
        return self._corpus.passage(category, sentences), category

    def draw_document(self, sentence_count: int = 12) -> tuple[str, str]:
        """One ``(title, body)`` document draw."""
        return self._corpus.document(sentence_count)

    def training_set(self, per_category: int = 12) -> list[tuple[str, str]]:
        """A balanced labelled training set for classifier instances."""
        examples: list[tuple[str, str]] = []
        for category in self._categories:
            for _ in range(per_category):
                examples.append((self._corpus.sentence(category), category))
        return examples
