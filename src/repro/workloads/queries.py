"""Query workload generation.

Produces the SQL mixes the benchmarks replay: point/range selections,
projections of varying width, select-project-join queries over
``birds``/``sightings``, grouping/aggregation, and summary-predicate
queries.  Each generated query is tagged with its class so benchmarks can
report per-class numbers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

_REGIONS = ["northeast", "southeast", "midwest", "mountain", "pacific"]


@dataclass(frozen=True)
class WorkloadQuery:
    """One generated query with its class tag."""

    sql: str
    query_class: str  # "select" | "project" | "spj" | "aggregate" | "summary"


class QueryWorkload:
    """Seeded generator of benchmark queries over the standard schema."""

    def __init__(self, seed: int = 11) -> None:
        self._rng = random.Random(seed)

    def selection(self) -> WorkloadQuery:
        """A selection over birds with a range or equality predicate."""
        rng = self._rng
        if rng.random() < 0.5:
            weight = round(rng.uniform(2.0, 12.0), 1)
            sql = f"SELECT name, species, weight FROM birds WHERE weight > {weight}"
        else:
            region = rng.choice(_REGIONS)
            sql = f"SELECT name, species FROM birds WHERE region = '{region}'"
        return WorkloadQuery(sql, "select")

    def projection(self, width: int = 2) -> WorkloadQuery:
        """A pure projection keeping ``width`` of birds' four columns."""
        columns = ["name", "species", "region", "weight"][: max(1, min(width, 4))]
        return WorkloadQuery(
            f"SELECT {', '.join(columns)} FROM birds", "project"
        )

    def spj(self) -> WorkloadQuery:
        """The Figure 2 shape: select-project-join over both relations."""
        region = self._rng.choice(_REGIONS)
        sql = (
            "SELECT b.name, b.species, s.observer, s.count "
            "FROM birds b, sightings s "
            f"WHERE b.species = s.species AND s.region = '{region}'"
        )
        return WorkloadQuery(sql, "spj")

    def aggregate(self) -> WorkloadQuery:
        """Grouping with aggregation over the join."""
        sql = (
            "SELECT b.species, count(*), avg(s.count) "
            "FROM birds b, sightings s WHERE b.species = s.species "
            "GROUP BY b.species ORDER BY count(*) DESC"
        )
        return WorkloadQuery(sql, "aggregate")

    def summary_predicate(self, instance: str = "ClassBird1",
                          label: str = "Disease") -> WorkloadQuery:
        """A summary-based filter — the paper's new operator class."""
        threshold = self._rng.randint(0, 3)
        sql = (
            "SELECT name, species FROM birds "
            f"WHERE SUMMARY_COUNT('{instance}', '{label}') > {threshold} "
            f"ORDER BY SUMMARY_COUNT('{instance}', '{label}') DESC"
        )
        return WorkloadQuery(sql, "summary")

    def mixed(self, count: int) -> list[WorkloadQuery]:
        """A shuffled mix across all query classes."""
        makers = [
            self.selection,
            lambda: self.projection(self._rng.randint(1, 4)),
            self.spj,
            self.aggregate,
            self.summary_predicate,
        ]
        queries = [makers[i % len(makers)]() for i in range(count)]
        self._rng.shuffle(queries)
        return queries
