"""The base-relation store.

Manages user tables — creation, insertion, point lookup, and full scans —
over a pluggable :class:`~repro.storage.backend.StorageBackend`:

* :class:`~repro.storage.backend.SingleFileBackend` (the default,
  ``shards=1``) is the engine's original topology: one writer connection
  serialized behind a write lock, plus a
  :class:`~repro.storage.pool.ConnectionPool` of per-thread read-only
  connections for file-backed databases (WAL readers proceed in parallel
  with the writer), falling back to the lock-serialized writer for
  ``:memory:`` databases, which SQLite cannot share across connections;
* :class:`~repro.storage.sharded.ShardedBackend` (``shards=N``)
  hash-partitions rows across ``N`` files, each with its own pool and
  independently serialized writer.  Inserts route by
  ``shard_of(table, row)``, bulk inserts fan per-shard sub-batches out
  concurrently, and :meth:`Database.scan` scatter-gathers: one producer
  per shard streams its ordered rows into a bounded queue and a k-way
  heap merge reassembles the single global rowid order — byte-identical
  to the single-file scan, including pushed-down filters and LIMIT.

Every stored row is addressed by its SQLite ``rowid``, which the
annotation store and summary catalog use as the stable tuple identity.
Under sharding the engine assigns rowids itself (monotonic per table,
initialized from the per-shard maxima) so identity stays table-global
even though each shard's file has its own rowid space.

Column types are dynamic (SQLite's natural behaviour); the engine's
expression evaluator applies Python semantics, so integers, floats, and
strings round-trip unchanged.
"""

from __future__ import annotations

import contextlib
import heapq
import queue
import sqlite3
import threading
from collections.abc import Callable, Iterator, Mapping, Sequence
from typing import Any

from repro.concurrency import make_lock
from repro.errors import StorageError, UnknownTableError
from repro.storage.backend import (
    META_SHARD,
    SingleFileBackend,
    StorageBackend,
)
from repro.storage.pool import ConnectionPool
from repro.storage.schema import SYSTEM_PREFIX, TableSchema
from repro.storage.sharded import ShardedBackend
from repro.storage.sqlsafe import (
    aggregate_select,
    placeholders,
    quote_ident,
    quoted_csv,
)

_SCHEMA_TABLE = f"{SYSTEM_PREFIX}schema"

#: Rows fetched per lock window when streaming a scan off the shared
#: in-memory connection — bounds how long a scan may hold the lock.
#: Scatter-gather producers use the same batch size per queue item.
_SCAN_FETCH_SIZE = 256

#: Batches a scatter-gather producer may buffer ahead of the merge —
#: bounds memory at (shards × depth × fetch size) rows per scan.
_SCAN_QUEUE_DEPTH = 4

#: End-of-stream marker on a producer queue.
_SCAN_DONE = object()


class _ScanError:
    """A producer-side exception in transit to the merging consumer."""

    __slots__ = ("error",)

    def __init__(self, error: BaseException) -> None:
        self.error = error


def _queue_put(
    target: "queue.Queue[Any]", item: Any, stop: threading.Event
) -> bool:
    """Put with periodic stop checks; False when the scan was abandoned.

    A producer must never block forever on a full queue: the consumer
    may stop early (LIMIT short-circuit, an exception, a dropped
    iterator), and its ``finally`` sets ``stop`` rather than draining
    every stream to exhaustion.
    """
    while not stop.is_set():
        try:
            target.put(item, timeout=0.05)
            return True
        except queue.Full:
            continue
    return False


class QueryCounter:
    """Counts SQL statements executed on the storage stack.

    Installed through :meth:`Database.track_queries`; the benchmarks and
    the scan-pipeline tests use it to assert roundtrip budgets (e.g. a
    block-prefetching scan must issue a bounded number of queries, not one
    per row).  Recording is lock-protected — trace callbacks fire from
    whichever thread executed the statement, including pooled readers.
    """

    def __init__(self) -> None:
        self.count = 0
        self.statements: list[str] = []
        self._lock = make_lock("database.trace_counter")

    def _record(self, sql: str) -> None:
        with self._lock:
            self.count += 1
            self.statements.append(sql)

    def by_prefix(self) -> dict[str, int]:
        """Statement counts keyed by their first keyword (SELECT, ...)."""
        grouped: dict[str, int] = {}
        with self._lock:
            statements = list(self.statements)
        for sql in statements:
            head = sql.lstrip().split(None, 1)
            key = head[0].upper() if head else ""
            grouped[key] = grouped.get(key, 0) + 1
        return grouped


class Database:
    """User relations over a pluggable SQLite storage backend.

    Parameters
    ----------
    path:
        SQLite database path; the default ``":memory:"`` keeps everything
        in RAM, which the tests and benchmarks use.
    serialize_reads:
        Force all reads through the lock-serialized writer connection
        even for file-backed databases — the pre-pool topology, kept as
        the concurrency benchmark's baseline mode.
    shards:
        Number of storage shards.  ``1`` (the default) is the original
        single-file engine, byte-identical to before the backend split;
        ``N >= 2`` hash-partitions rows across ``N`` files (file-backed
        paths only — see DESIGN.md §11).
    backend:
        An explicit :class:`~repro.storage.backend.StorageBackend`,
        overriding ``path`` / ``serialize_reads`` / ``shards`` (tests
        and embedders plugging in their own topology).
    """

    def __init__(
        self,
        path: str = ":memory:",
        serialize_reads: bool = False,
        shards: int = 1,
        backend: StorageBackend | None = None,
    ) -> None:
        if backend is not None:
            self._backend: StorageBackend = backend
        elif shards == 1:
            self._backend = SingleFileBackend(
                path, serialize_reads=serialize_reads
            )
        elif shards >= 2:
            self._backend = ShardedBackend(
                path, shards, serialize_reads=serialize_reads
            )
        else:
            raise StorageError(f"shards must be >= 1, got {shards}")
        self.path = self._backend.path
        # Nested track_queries contexts each get their own counter; the
        # single dispatcher fans every traced statement to all of them.
        self._trace_lock = make_lock("database.trace")
        self._trace_stack: list[QueryCounter] = []
        self._schemas: dict[str, TableSchema] = {}
        self._schema_lock = make_lock("database.schema")
        # Table-global rowid allocation for sharded backends (each
        # shard's file has its own rowid space, so SQLite cannot assign
        # them); lazily seeded from the per-shard maxima.
        self._rowid_lock = make_lock("database.rowid")
        self._rowid_counters: dict[str, int] = {}
        with self._backend.transaction(META_SHARD) as connection:
            connection.execute(
                f"""
                CREATE TABLE IF NOT EXISTS {_SCHEMA_TABLE} (
                    table_name TEXT PRIMARY KEY,
                    columns TEXT NOT NULL
                )
                """
            )
        self._load_schemas()
        if self._backend.shard_count > 1:
            self._replicate_missing_tables()

    @property
    def is_in_memory(self) -> bool:
        """True when the database lives in RAM (no durable file)."""
        return self._backend.is_in_memory

    # -- connection management -----------------------------------------

    @property
    def backend(self) -> StorageBackend:
        """The storage backend (topology introspection and tests)."""
        return self._backend

    @property
    def shard_count(self) -> int:
        """How many shards rows fan out over (1 for single-file)."""
        return self._backend.shard_count

    @property
    def connection(self) -> sqlite3.Connection:
        """The meta shard's writer connection, shared with other stores.

        Kept for single-threaded callers (tests, import tooling) that
        run their own statements; concurrent code must go through
        :meth:`transaction` / :meth:`read_connection` instead.  Raises
        :class:`RuntimeError` once the database is closed.
        """
        if self._backend.closed:
            raise RuntimeError(
                "Database is closed — no further statements can be served"
            )
        return self._backend.writer(META_SHARD)

    @property
    def pool(self) -> ConnectionPool:
        """The meta shard's read pool (monitoring and tests)."""
        return self._backend.pool(META_SHARD)

    def transaction(
        self, shard: int = META_SHARD
    ) -> contextlib.AbstractContextManager[sqlite3.Connection]:
        """One shard's writer, write-locked, in a transaction.

        Commits on clean exit, rolls back on exception — the concurrent
        replacement for the old ``with database.connection:`` blocks.
        """
        return self._backend.transaction(shard)

    def read_connection(
        self, shard: int = META_SHARD
    ) -> contextlib.AbstractContextManager[sqlite3.Connection]:
        """A connection for read-only statements (see the pool's rules)."""
        return self._backend.read(shard)

    def fetch_all(
        self, sql: str, params: Sequence[Any] = (), shard: int = META_SHARD
    ) -> list[tuple[Any, ...]]:
        """Run one read-only statement on a pooled connection."""
        with self._backend.read(shard) as connection:
            return connection.execute(sql, params).fetchall()

    def fetch_one(
        self, sql: str, params: Sequence[Any] = (), shard: int = META_SHARD
    ) -> tuple[Any, ...] | None:
        """Run one read-only statement; first row or None."""
        with self._backend.read(shard) as connection:
            return connection.execute(sql, params).fetchone()

    @contextlib.contextmanager
    def track_queries(self) -> Iterator[QueryCounter]:
        """Count every SQL statement executed while the context is open.

        Trace callbacks are installed on every shard's writer **and**
        every pooled read connection (present and future), so the counter
        sees queries from every store and every thread — exactly what the
        roundtrip-budget assertions need.  Contexts nest: each level gets
        its own counter and every traced statement is recorded by all
        currently open counters, inner and outer alike.
        """
        counter = QueryCounter()
        with self._trace_lock:
            self._trace_stack.append(counter)
            if len(self._trace_stack) == 1:
                self._backend.set_trace(self._dispatch_trace)
        try:
            yield counter
        finally:
            with self._trace_lock:
                self._trace_stack.remove(counter)
                if not self._trace_stack:
                    self._backend.set_trace(None)

    def _dispatch_trace(self, sql: str) -> None:
        with self._trace_lock:
            counters = list(self._trace_stack)
        for counter in counters:
            counter._record(sql)

    def close(self) -> None:
        """Close every connection of every shard.

        Idempotent.  Any later statement — through the pool or the
        :attr:`connection` property — raises a clear
        :class:`RuntimeError` instead of a ``sqlite3.ProgrammingError``
        surfacing deep inside an operator.
        """
        self._backend.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _load_schemas(self) -> None:
        rows = self.fetch_all(
            f"SELECT table_name, columns FROM {_SCHEMA_TABLE}"
        )
        for table_name, columns in rows:
            self._schemas[table_name] = TableSchema(
                table_name, tuple(columns.split(","))
            )

    def _replicate_missing_tables(self) -> None:
        """Create known user tables on shards that lack them.

        Covers reopening a sharded store with a higher shard count than
        it last ran with (new shard files start empty): DDL is
        replicated everywhere so routing never hits a missing table.
        Rows do **not** move — changing the shard count of a populated
        store is unsupported (routing addresses persisted placement).
        """
        for schema in self._schemas.values():
            ddl = (
                f"CREATE TABLE IF NOT EXISTS {quote_ident(schema.name)} "
                f"({quoted_csv(schema.columns)})"
            )
            for shard in range(self._backend.shard_count):
                with self._backend.transaction(shard) as connection:
                    connection.execute(ddl)

    # -- DDL -------------------------------------------------------------

    def create_table(self, name: str, columns: Sequence[str]) -> TableSchema:
        """Create a user table with the given column names.

        Sharded backends replicate the DDL to every shard (rows of one
        table spread across all of them) and record the schema row on
        the meta shard; per-shard DDL is not globally atomic, but
        ``CREATE``/``INSERT OR REPLACE`` make a re-run converge.
        """
        schema = TableSchema(name, tuple(columns))
        if name in self._schemas:
            raise StorageError(f"table already exists: {name!r}")
        ddl = (
            f"CREATE TABLE {quote_ident(name)} "
            f"({quoted_csv(schema.columns)})"
        )
        schema_row = (
            f"INSERT INTO {_SCHEMA_TABLE} (table_name, columns) "
            "VALUES (?, ?)"
        )
        if self._backend.shard_count == 1:
            with self._backend.transaction() as connection:
                connection.execute(ddl)
                connection.execute(
                    schema_row, (name, ",".join(schema.columns))
                )
        else:
            for shard in range(1, self._backend.shard_count):
                with self._backend.transaction(shard) as connection:
                    connection.execute(ddl)
            with self._backend.transaction(META_SHARD) as connection:
                connection.execute(ddl)
                connection.execute(
                    schema_row, (name, ",".join(schema.columns))
                )
        with self._schema_lock:
            self._schemas[name] = schema
        return schema

    def drop_table(self, name: str) -> None:
        """Drop a user table and its schema entry (on every shard)."""
        self.schema(name)  # raises for unknown tables
        drop = f"DROP TABLE {quote_ident(name)}"
        unregister = f"DELETE FROM {_SCHEMA_TABLE} WHERE table_name = ?"
        with self._backend.transaction(META_SHARD) as connection:
            connection.execute(drop)
            connection.execute(unregister, (name,))
        for shard in range(1, self._backend.shard_count):
            with self._backend.transaction(shard) as connection:
                connection.execute(drop)
        with self._schema_lock:
            del self._schemas[name]
        with self._rowid_lock:
            self._rowid_counters.pop(name, None)

    # -- catalog -----------------------------------------------------

    def tables(self) -> list[str]:
        """Names of all user tables, sorted."""
        return sorted(self._schemas)

    def has_table(self, name: str) -> bool:
        """True when ``name`` is a user table."""
        return name in self._schemas

    def schema(self, name: str) -> TableSchema:
        """Schema of ``name`` or raise :class:`UnknownTableError`."""
        try:
            return self._schemas[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def columns(self, name: str) -> tuple[str, ...]:
        """Column names of ``name`` in declaration order."""
        return self.schema(name).columns

    # -- rowid allocation ---------------------------------------------

    def _seed_rowid_floor(self, table: str) -> None:
        """Seed the table's allocation floor from the per-shard maxima.

        Called *before* taking ``_rowid_lock``, never under it — the
        MAX(rowid) probes are SQL, and IN001/IN007 forbid holding the
        rowid lock across a reader checkout.  Double-checked: racing
        seeders may both probe, but the merge keeps the highest floor,
        so a concurrent allocation that already advanced the counter is
        never rolled back.
        """
        with self._rowid_lock:
            if table in self._rowid_counters:
                return
        observed = 0
        for shard in range(self._backend.shard_count):
            row = self.fetch_one(
                f"SELECT MAX(rowid) FROM {quote_ident(table)}",
                shard=shard,
            )
            if row is not None and row[0] is not None:
                observed = max(observed, row[0])
        with self._rowid_lock:
            self._rowid_counters[table] = max(
                self._rowid_counters.get(table, 0), observed
            )

    def _allocate_rowids(self, table: str, count: int) -> int:
        """Reserve ``count`` consecutive rowids; returns the first.

        Mirrors SQLite's own assignment for plain rowid tables
        (``max(rowid) + 1``), so a sharded store hands out the same ids
        the single-file engine would.
        """
        self._seed_rowid_floor(table)
        with self._rowid_lock:
            current = self._rowid_counters.get(table, 0)
            self._rowid_counters[table] = current + count
            return current + 1

    def _note_explicit_rowid(self, table: str, row_id: int) -> None:
        """Raise the allocation floor past an explicitly pinned rowid."""
        self._seed_rowid_floor(table)
        with self._rowid_lock:
            current = self._rowid_counters.get(table, 0)
            self._rowid_counters[table] = max(current, row_id)

    # -- DML -------------------------------------------------------------

    def insert(
        self,
        table: str,
        values: Sequence[Any] | Mapping[str, Any],
        row_id: int | None = None,
    ) -> int:
        """Insert one row; returns its rowid.

        ``values`` is either a positional sequence matching the schema or
        a column-name mapping (missing columns become NULL).  An explicit
        ``row_id`` pins the rowid — used by import tooling, which must
        preserve annotation attachments keyed on rowids.
        """
        schema = self.schema(table)
        if isinstance(values, Mapping):
            unknown = set(values) - set(schema.columns)
            if unknown:
                raise StorageError(
                    f"unknown columns for {table!r}: {sorted(unknown)}"
                )
            row = tuple(values.get(column) for column in schema.columns)
        else:
            schema.check_values(values)
            row = tuple(values)
        if self._backend.shard_count > 1:
            return self._insert_sharded(table, schema, row, row_id)
        with self._backend.transaction() as connection:
            if row_id is None:
                marks = placeholders(len(schema.columns))
                cursor = connection.execute(
                    f"INSERT INTO {quote_ident(table)} VALUES ({marks})",
                    row,
                )
            else:
                marks = placeholders(1 + len(schema.columns))
                cursor = connection.execute(
                    f"INSERT INTO {quote_ident(table)} "
                    f"(rowid, {quoted_csv(schema.columns)}) "
                    f"VALUES ({marks})",
                    (row_id, *row),
                )
            rowid = cursor.lastrowid
        assert rowid is not None
        return rowid

    def _insert_sharded(
        self,
        table: str,
        schema: TableSchema,
        row: tuple[Any, ...],
        row_id: int | None,
    ) -> int:
        """Route one row to its home shard, with an engine-assigned
        rowid (each shard's file has a private rowid space)."""
        if row_id is None:
            row_id = self._allocate_rowids(table, 1)
        else:
            self._note_explicit_rowid(table, row_id)
        shard = self._backend.shard_of(table, row_id)
        marks = placeholders(1 + len(schema.columns))
        with self._backend.transaction(shard) as connection:
            connection.execute(
                f"INSERT INTO {quote_ident(table)} "
                f"(rowid, {quoted_csv(schema.columns)}) "
                f"VALUES ({marks})",
                (row_id, *row),
            )
        return row_id

    def insert_many(
        self, table: str, rows: Sequence[Sequence[Any]]
    ) -> list[int]:
        """Insert multiple positional rows; returns their rowids.

        Single-file: one transaction (and one write-lock window) for the
        whole batch; per-row execution because each row's assigned rowid
        is returned.  Sharded: rowids are pre-assigned, rows grouped by
        home shard, and the per-shard sub-batches committed concurrently
        — their commit waits overlap, which is the point of sharding.
        """
        schema = self.schema(table)
        if self._backend.shard_count > 1:
            return self._insert_many_sharded(table, schema, rows)
        marks = placeholders(len(schema.columns))
        sql = f"INSERT INTO {quote_ident(table)} VALUES ({marks})"
        row_ids: list[int] = []
        with self._backend.transaction() as connection:
            for row in rows:
                schema.check_values(row)
                cursor = connection.execute(sql, tuple(row))
                assert cursor.lastrowid is not None
                row_ids.append(cursor.lastrowid)
        return row_ids

    def _insert_many_sharded(
        self, table: str, schema: TableSchema, rows: Sequence[Sequence[Any]]
    ) -> list[int]:
        for row in rows:
            schema.check_values(row)
        if not rows:
            return []
        backend = self._backend
        assert isinstance(backend, ShardedBackend)
        first = self._allocate_rowids(table, len(rows))
        row_ids = list(range(first, first + len(rows)))
        by_shard: dict[int, list[tuple[Any, ...]]] = {}
        for row_id, row in zip(row_ids, rows):
            shard = backend.shard_of(table, row_id)
            by_shard.setdefault(shard, []).append((row_id, *row))
        marks = placeholders(1 + len(schema.columns))
        sql = (
            f"INSERT INTO {quote_ident(table)} "
            f"(rowid, {quoted_csv(schema.columns)}) VALUES ({marks})"
        )

        def write_shard(shard: int) -> Callable[[], None]:
            def thunk() -> None:
                with backend.transaction(shard) as connection:
                    connection.executemany(sql, by_shard[shard])

            return thunk

        backend.run_write_fanout(
            [write_shard(shard) for shard in sorted(by_shard)]
        )
        return row_ids

    def delete_row(self, table: str, row_id: int) -> None:
        """Delete one row by rowid (no-op when absent)."""
        self.schema(table)
        shard = self._backend.shard_of(table, row_id)
        with self._backend.transaction(shard) as connection:
            connection.execute(
                f"DELETE FROM {quote_ident(table)} WHERE rowid = ?",
                (row_id,),
            )

    # -- reads --------------------------------------------------------

    def get_row(self, table: str, row_id: int) -> tuple[Any, ...] | None:
        """Fetch one row's values by rowid, or None when absent."""
        self.schema(table)
        row = self.fetch_one(
            f"SELECT * FROM {quote_ident(table)} WHERE rowid = ?",
            (row_id,),
            shard=self._backend.shard_of(table, row_id),
        )
        return tuple(row) if row is not None else None

    def rows(self, table: str) -> Iterator[tuple[int, tuple[Any, ...]]]:
        """Scan ``table``, yielding ``(rowid, values)`` pairs."""
        return self.scan(table)

    def scan(
        self,
        table: str,
        where_sql: str | None = None,
        params: Sequence[Any] = (),
        limit: int | None = None,
        on_row_shard: Callable[[int], None] | None = None,
    ) -> Iterator[tuple[int, tuple[Any, ...]]]:
        """Scan ``table`` with an optional pushed-down filter and limit.

        ``where_sql`` is a parameterized WHERE fragment over the table's
        own (quoted) column names, compiled by the planner from sargable
        predicates (:mod:`repro.engine.pushdown`); ``limit`` truncates the
        scan inside SQLite.  Rows come out in rowid order either way, so
        pushdown never changes result order.

        File-backed databases stream lazily off the calling thread's
        read-only connection.  In-memory databases fetch in bounded
        batches so the shared-connection lock is never held across a
        ``yield`` (a consumer pausing mid-scan must not block writers).

        Sharded backends scatter-gather: the same statement runs on every
        shard concurrently (each with its own per-shard LIMIT — a global
        cap can only tighten per shard) and the ordered per-shard streams
        heap-merge back into global rowid order, stopping as soon as
        ``limit`` rows came out.  ``on_row_shard`` (sharded scans only)
        is called with the home shard of each yielded row, feeding the
        per-shard ``rows_scanned`` counters on ``ExecutionStats``.
        """
        self.schema(table)
        sql = f"SELECT rowid, * FROM {quote_ident(table)}"
        bound: tuple[Any, ...] = tuple(params)
        if where_sql is not None:
            sql += f" WHERE {where_sql}"
        sql += " ORDER BY rowid"
        if limit is not None:
            sql += " LIMIT ?"
            bound += (limit,)
        if self._backend.shard_count > 1:
            return self._scan_sharded(sql, bound, limit, on_row_shard)
        if self._backend.serialized_reads:
            return self._scan_serialized(sql, bound)
        return self._scan_streaming(sql, bound)

    def _scan_streaming(
        self, sql: str, bound: tuple[Any, ...]
    ) -> Iterator[tuple[int, tuple[Any, ...]]]:
        """Lazy scan on this thread's dedicated read-only connection."""
        with self._backend.read() as connection:
            cursor = connection.execute(sql, bound)
        # The connection is thread-local and dedicated — iterating after
        # the checkout window is safe (no lock was held to begin with).
        for row in cursor:
            yield row[0], tuple(row[1:])

    def _scan_serialized(
        self, sql: str, bound: tuple[Any, ...]
    ) -> Iterator[tuple[int, tuple[Any, ...]]]:
        """Batched scan on the lock-serialized shared connection."""
        with self._backend.read() as connection:
            cursor = connection.execute(sql, bound)
            rows = cursor.fetchmany(_SCAN_FETCH_SIZE)
        while rows:
            for row in rows:
                yield row[0], tuple(row[1:])
            if len(rows) < _SCAN_FETCH_SIZE:
                return
            with self._backend.read():
                rows = cursor.fetchmany(_SCAN_FETCH_SIZE)

    def _scan_sharded(
        self,
        sql: str,
        bound: tuple[Any, ...],
        limit: int | None,
        on_row_shard: Callable[[int], None] | None,
    ) -> Iterator[tuple[int, tuple[Any, ...]]]:
        """Scatter the statement over all shards, merge by rowid.

        One producer per shard runs ``sql`` on its shard's read
        connection and streams batches into a bounded queue; the
        consumer k-way heap-merges the (individually rowid-ordered)
        streams.  Heap entries are ``(rowid, shard, row)`` — the
        ``(rowid, shard)`` prefix is unique, so row payloads are never
        compared.  Early exit (LIMIT, exception, dropped iterator) sets
        the stop event; producers poll it on every queue put and on
        every fetch batch, so they always unwind.
        """
        backend = self._backend
        assert isinstance(backend, ShardedBackend)
        shards = backend.shard_count
        queues: list[queue.Queue[Any]] = [
            queue.Queue(maxsize=_SCAN_QUEUE_DEPTH) for _ in range(shards)
        ]
        stop = threading.Event()
        for shard in range(shards):
            backend.submit_scan(
                self._scan_producer, shard, sql, bound, queues[shard], stop
            )

        def stream(shard: int) -> Iterator[Any]:
            while True:
                item = queues[shard].get()
                if item is _SCAN_DONE:
                    return
                if isinstance(item, _ScanError):
                    raise item.error
                yield from item

        try:
            streams = [stream(shard) for shard in range(shards)]
            heap: list[tuple[int, int, Any]] = []
            for shard, rows in enumerate(streams):
                row = next(rows, None)
                if row is not None:
                    heapq.heappush(heap, (row[0], shard, row))
            emitted = 0
            while heap:
                rowid, shard, row = heapq.heappop(heap)
                if on_row_shard is not None:
                    on_row_shard(shard)
                yield rowid, tuple(row[1:])
                emitted += 1
                if limit is not None and emitted >= limit:
                    return
                nxt = next(streams[shard], None)
                if nxt is not None:
                    heapq.heappush(heap, (nxt[0], shard, nxt))
        finally:
            stop.set()
            # Unblock producers stuck on a full queue right away (they
            # would notice the event on their next put timeout anyway).
            for pending in queues:
                while True:
                    try:
                        pending.get_nowait()
                    except queue.Empty:
                        break

    def _scan_producer(
        self,
        shard: int,
        sql: str,
        bound: tuple[Any, ...],
        out: "queue.Queue[Any]",
        stop: threading.Event,
    ) -> None:
        """One shard's half of a scatter-gather scan.

        Batches are fetched inside read-checkout windows and handed off
        outside them — under ``serialize_reads`` a checkout holds the
        shard's write lock, and blocking on a full queue while holding
        it could deadlock against a consumer that needs the same shard.
        """
        try:
            with self._backend.read(shard) as connection:
                cursor = connection.execute(sql, bound)
                rows = cursor.fetchmany(_SCAN_FETCH_SIZE)
            while rows and not stop.is_set():
                if not _queue_put(out, rows, stop):
                    return
                if len(rows) < _SCAN_FETCH_SIZE:
                    break
                with self._backend.read(shard):
                    rows = cursor.fetchmany(_SCAN_FETCH_SIZE)
        except BaseException as exc:  # noqa: BLE001 - re-raised by consumer
            _queue_put(out, _ScanError(exc), stop)
            return
        _queue_put(out, _SCAN_DONE, stop)

    def row_count(self, table: str) -> int:
        """Number of rows in ``table`` (summed across shards)."""
        self.schema(table)
        sql = f"SELECT COUNT(*) FROM {quote_ident(table)}"
        total = 0
        for shard in range(self._backend.shard_count):
            row = self.fetch_one(sql, shard=shard)
            assert row is not None
            total += row[0]
        return total

    def fetch_value(
        self,
        sql: str,
        params: Sequence[Any] = (),
        shard: int = META_SHARD,
        default: Any = None,
    ) -> Any:
        """First column of the first row, or ``default`` on no rows."""
        row = self.fetch_one(sql, params, shard=shard)
        if row is None or row[0] is None:
            return default
        return row[0]

    def distinct_count(self, table: str, column: str) -> int:
        """Distinct non-NULL values of one column, for planner stats.

        On a sharded backend this is the per-shard **maximum** — distinct
        counts do not sum across partitions (the same value may live on
        several shards), and the maximum is a safe lower bound: the cost
        model dividing by it only ever *over*-estimates result sizes,
        which keeps plan choices conservative.
        """
        self.schema(table)
        sql = (
            f"SELECT COUNT(DISTINCT {quote_ident(column)}) "
            f"FROM {quote_ident(table)}"
        )
        best = 0
        for shard in range(self._backend.shard_count):
            value = self.fetch_value(sql, shard=shard, default=0)
            best = max(best, int(value))
        return best

    def scan_aggregate(
        self,
        table: str,
        key_columns: Sequence[str],
        aggregates: Sequence[tuple[str, str | None]],
        where_sql: str | None = None,
        params: Sequence[Any] = (),
    ) -> list[tuple[Any, ...]]:
        """Run one grouped aggregation inside SQLite.

        Produces one row per group — key values first, then one value
        per ``(function, column)`` aggregate, then a comma-separated
        ``GROUP_CONCAT`` of the member rowids (the operator reassembles
        provenance from it).  ``ORDER BY MIN(rowid)`` reproduces the
        first-seen group order of the in-engine
        :class:`~repro.engine.operators.GroupByOperator`, so pushing an
        aggregation down never changes result order.

        Single-shard only: GROUP_CONCAT membership and AVG cannot be
        merged across partial per-shard aggregates, and the planner
        never emits this node on a sharded backend.
        """
        if self._backend.shard_count > 1:
            raise StorageError(
                "scan_aggregate requires a single-shard backend; "
                "the planner must not push aggregation below a "
                "sharded scan"
            )
        self.schema(table)
        sql = (
            f"SELECT {aggregate_select(key_columns, aggregates)}, "
            f"GROUP_CONCAT(rowid) FROM {quote_ident(table)}"
        )
        if where_sql is not None:
            sql += f" WHERE {where_sql}"
        if key_columns:
            sql += f" GROUP BY {quoted_csv(key_columns)}"
        sql += " ORDER BY MIN(rowid)"
        # where_sql is a parameterized fragment from the pushdown
        # compiler — the same contract scan() relies on.
        return self.fetch_all(sql, params)  # insightlint: disable=IN003 -- vetted pushdown fragment
