"""The base-relation store.

Wraps one SQLite connection and manages user tables: creation, insertion,
point lookup, and full scans.  Every stored row is addressed by its SQLite
``rowid``, which the annotation store and summary catalog use as the stable
tuple identity.

Column types are dynamic (SQLite's natural behaviour); the engine's
expression evaluator applies Python semantics, so integers, floats, and
strings round-trip unchanged.
"""

from __future__ import annotations

import contextlib
import sqlite3
from collections.abc import Iterator, Mapping, Sequence
from typing import Any

from repro.errors import StorageError, UnknownTableError
from repro.storage.schema import SYSTEM_PREFIX, TableSchema

_SCHEMA_TABLE = f"{SYSTEM_PREFIX}schema"

#: Negative values mean KiB of page cache (SQLite convention); 16 MiB.
_DEFAULT_CACHE_KIB = 16 * 1024


class QueryCounter:
    """Counts SQL statements executed on a connection.

    Installed through :meth:`Database.track_queries`; the benchmarks and
    the scan-pipeline tests use it to assert roundtrip budgets (e.g. a
    block-prefetching scan must issue a bounded number of queries, not one
    per row).
    """

    def __init__(self) -> None:
        self.count = 0
        self.statements: list[str] = []

    def _record(self, sql: str) -> None:
        self.count += 1
        self.statements.append(sql)

    def by_prefix(self) -> dict[str, int]:
        """Statement counts keyed by their first keyword (SELECT, ...)."""
        grouped: dict[str, int] = {}
        for sql in self.statements:
            head = sql.lstrip().split(None, 1)
            key = head[0].upper() if head else ""
            grouped[key] = grouped.get(key, 0) + 1
        return grouped


class Database:
    """User relations over a shared SQLite connection.

    Parameters
    ----------
    path:
        SQLite database path; the default ``":memory:"`` keeps everything
        in RAM, which the tests and benchmarks use.
    """

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        self._connection = sqlite3.connect(path)
        self._connection.execute("PRAGMA foreign_keys = ON")
        self._apply_tuning()
        self._connection.execute(
            f"""
            CREATE TABLE IF NOT EXISTS {_SCHEMA_TABLE} (
                table_name TEXT PRIMARY KEY,
                columns TEXT NOT NULL
            )
            """
        )
        self._schemas: dict[str, TableSchema] = {}
        self._load_schemas()

    def _apply_tuning(self) -> None:
        """Throughput pragmas; journal settings only for file-backed DBs.

        WAL lets readers proceed during writes and batches fsyncs;
        ``synchronous=NORMAL`` is the documented safe pairing with WAL.
        Both are meaningless (WAL: unsupported) for in-memory databases,
        which the tests and benchmarks use, so those are skipped there.
        """
        self._connection.execute(f"PRAGMA cache_size = -{_DEFAULT_CACHE_KIB}")
        self._connection.execute("PRAGMA temp_store = MEMORY")
        if not self.is_in_memory:
            self._connection.execute("PRAGMA journal_mode = WAL")
            self._connection.execute("PRAGMA synchronous = NORMAL")

    @property
    def is_in_memory(self) -> bool:
        """True when the database lives in RAM (no durable file)."""
        return (
            self.path == ":memory:"
            or self.path == ""
            or "mode=memory" in self.path
        )

    # -- connection management -----------------------------------------

    @property
    def connection(self) -> sqlite3.Connection:
        """The underlying connection, shared with the other stores."""
        return self._connection

    @contextlib.contextmanager
    def track_queries(self) -> Iterator[QueryCounter]:
        """Count every SQL statement executed while the context is open.

        Connection-level (``sqlite3`` trace callback), so it sees queries
        from every store sharing this connection — exactly what the
        roundtrip-budget assertions need.  Nesting replaces the previous
        callback, so only the innermost tracker counts.
        """
        counter = QueryCounter()
        self._connection.set_trace_callback(counter._record)
        try:
            yield counter
        finally:
            self._connection.set_trace_callback(None)

    def close(self) -> None:
        """Close the connection; further operations will fail."""
        self._connection.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _load_schemas(self) -> None:
        rows = self._connection.execute(
            f"SELECT table_name, columns FROM {_SCHEMA_TABLE}"
        ).fetchall()
        for table_name, columns in rows:
            self._schemas[table_name] = TableSchema(
                table_name, tuple(columns.split(","))
            )

    # -- DDL -------------------------------------------------------------

    def create_table(self, name: str, columns: Sequence[str]) -> TableSchema:
        """Create a user table with the given column names."""
        schema = TableSchema(name, tuple(columns))
        if name in self._schemas:
            raise StorageError(f"table already exists: {name!r}")
        column_sql = ", ".join(f'"{column}"' for column in schema.columns)
        with self._connection:
            self._connection.execute(f'CREATE TABLE "{name}" ({column_sql})')
            self._connection.execute(
                f"INSERT INTO {_SCHEMA_TABLE} (table_name, columns) VALUES (?, ?)",
                (name, ",".join(schema.columns)),
            )
        self._schemas[name] = schema
        return schema

    def drop_table(self, name: str) -> None:
        """Drop a user table and its schema entry."""
        self.schema(name)  # raises for unknown tables
        with self._connection:
            self._connection.execute(f'DROP TABLE "{name}"')
            self._connection.execute(
                f"DELETE FROM {_SCHEMA_TABLE} WHERE table_name = ?", (name,)
            )
        del self._schemas[name]

    # -- catalog -----------------------------------------------------

    def tables(self) -> list[str]:
        """Names of all user tables, sorted."""
        return sorted(self._schemas)

    def has_table(self, name: str) -> bool:
        """True when ``name`` is a user table."""
        return name in self._schemas

    def schema(self, name: str) -> TableSchema:
        """Schema of ``name`` or raise :class:`UnknownTableError`."""
        try:
            return self._schemas[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def columns(self, name: str) -> tuple[str, ...]:
        """Column names of ``name`` in declaration order."""
        return self.schema(name).columns

    # -- DML -------------------------------------------------------------

    def insert(
        self,
        table: str,
        values: Sequence[Any] | Mapping[str, Any],
        row_id: int | None = None,
    ) -> int:
        """Insert one row; returns its rowid.

        ``values`` is either a positional sequence matching the schema or
        a column-name mapping (missing columns become NULL).  An explicit
        ``row_id`` pins the rowid — used by import tooling, which must
        preserve annotation attachments keyed on rowids.
        """
        schema = self.schema(table)
        if isinstance(values, Mapping):
            unknown = set(values) - set(schema.columns)
            if unknown:
                raise StorageError(
                    f"unknown columns for {table!r}: {sorted(unknown)}"
                )
            row = tuple(values.get(column) for column in schema.columns)
        else:
            schema.check_values(values)
            row = tuple(values)
        with self._connection:
            if row_id is None:
                placeholders = ", ".join("?" for _ in schema.columns)
                cursor = self._connection.execute(
                    f'INSERT INTO "{table}" VALUES ({placeholders})', row
                )
            else:
                placeholders = ", ".join("?" for _ in (row_id, *schema.columns))
                cursor = self._connection.execute(
                    f'INSERT INTO "{table}" (rowid, '
                    + ", ".join(f'"{c}"' for c in schema.columns)
                    + f") VALUES ({placeholders})",
                    (row_id, *row),
                )
        rowid = cursor.lastrowid
        assert rowid is not None
        return rowid

    def insert_many(
        self, table: str, rows: Sequence[Sequence[Any]]
    ) -> list[int]:
        """Insert multiple positional rows; returns their rowids."""
        return [self.insert(table, row) for row in rows]

    def delete_row(self, table: str, row_id: int) -> None:
        """Delete one row by rowid (no-op when absent)."""
        self.schema(table)
        with self._connection:
            self._connection.execute(
                f'DELETE FROM "{table}" WHERE rowid = ?', (row_id,)
            )

    # -- reads --------------------------------------------------------

    def get_row(self, table: str, row_id: int) -> tuple[Any, ...] | None:
        """Fetch one row's values by rowid, or None when absent."""
        self.schema(table)
        row = self._connection.execute(
            f'SELECT * FROM "{table}" WHERE rowid = ?', (row_id,)
        ).fetchone()
        return tuple(row) if row is not None else None

    def rows(self, table: str) -> Iterator[tuple[int, tuple[Any, ...]]]:
        """Scan ``table``, yielding ``(rowid, values)`` pairs."""
        return self.scan(table)

    def scan(
        self,
        table: str,
        where_sql: str | None = None,
        params: Sequence[Any] = (),
        limit: int | None = None,
    ) -> Iterator[tuple[int, tuple[Any, ...]]]:
        """Scan ``table`` with an optional pushed-down filter and limit.

        ``where_sql`` is a parameterized WHERE fragment over the table's
        own (quoted) column names, compiled by the planner from sargable
        predicates (:mod:`repro.engine.pushdown`); ``limit`` truncates the
        scan inside SQLite.  Rows come out in rowid order either way, so
        pushdown never changes result order.
        """
        self.schema(table)
        sql = f'SELECT rowid, * FROM "{table}"'
        bound: tuple[Any, ...] = tuple(params)
        if where_sql is not None:
            sql += f" WHERE {where_sql}"
        sql += " ORDER BY rowid"
        if limit is not None:
            sql += " LIMIT ?"
            bound += (limit,)
        cursor = self._connection.execute(sql, bound)
        for row in cursor:
            yield row[0], tuple(row[1:])

    def row_count(self, table: str) -> int:
        """Number of rows in ``table``."""
        self.schema(table)
        (count,) = self._connection.execute(
            f'SELECT COUNT(*) FROM "{table}"'
        ).fetchone()
        return count
