"""The base-relation store.

Manages user tables — creation, insertion, point lookup, and full scans —
over a small connection topology built for concurrent reads:

* one **writer** connection, serialized behind a write lock (the
  engine's single-writer model);
* a :class:`~repro.storage.pool.ConnectionPool` of per-thread
  **read-only** connections for file-backed databases (WAL readers
  proceed in parallel with the writer), falling back to the
  lock-serialized writer connection for ``:memory:`` databases, which
  SQLite cannot share across connections.

Every stored row is addressed by its SQLite ``rowid``, which the
annotation store and summary catalog use as the stable tuple identity.

Column types are dynamic (SQLite's natural behaviour); the engine's
expression evaluator applies Python semantics, so integers, floats, and
strings round-trip unchanged.
"""

from __future__ import annotations

import contextlib
import sqlite3
import threading
from collections.abc import Iterator, Mapping, Sequence
from typing import Any

from repro.errors import StorageError, UnknownTableError
from repro.storage.pool import ConnectionPool, connect
from repro.storage.schema import SYSTEM_PREFIX, TableSchema
from repro.storage.sqlsafe import placeholders, quote_ident, quoted_csv

_SCHEMA_TABLE = f"{SYSTEM_PREFIX}schema"

#: Negative values mean KiB of page cache (SQLite convention); 16 MiB.
_DEFAULT_CACHE_KIB = 16 * 1024

#: Rows fetched per lock window when streaming a scan off the shared
#: in-memory connection — bounds how long a scan may hold the lock.
_SCAN_FETCH_SIZE = 256


class QueryCounter:
    """Counts SQL statements executed on the storage stack.

    Installed through :meth:`Database.track_queries`; the benchmarks and
    the scan-pipeline tests use it to assert roundtrip budgets (e.g. a
    block-prefetching scan must issue a bounded number of queries, not one
    per row).  Recording is lock-protected — trace callbacks fire from
    whichever thread executed the statement, including pooled readers.
    """

    def __init__(self) -> None:
        self.count = 0
        self.statements: list[str] = []
        self._lock = threading.Lock()

    def _record(self, sql: str) -> None:
        with self._lock:
            self.count += 1
            self.statements.append(sql)

    def by_prefix(self) -> dict[str, int]:
        """Statement counts keyed by their first keyword (SELECT, ...)."""
        grouped: dict[str, int] = {}
        with self._lock:
            statements = list(self.statements)
        for sql in statements:
            head = sql.lstrip().split(None, 1)
            key = head[0].upper() if head else ""
            grouped[key] = grouped.get(key, 0) + 1
        return grouped


class Database:
    """User relations over a pooled SQLite connection topology.

    Parameters
    ----------
    path:
        SQLite database path; the default ``":memory:"`` keeps everything
        in RAM, which the tests and benchmarks use.
    serialize_reads:
        Force all reads through the lock-serialized writer connection
        even for file-backed databases — the pre-pool topology, kept as
        the concurrency benchmark's baseline mode.
    """

    def __init__(
        self, path: str = ":memory:", serialize_reads: bool = False
    ) -> None:
        self.path = path
        # check_same_thread=False (the pool factory's default): the
        # writer is shared across threads but every use is serialized
        # behind the pool's write lock (and, for in-memory databases,
        # reads take the same lock).
        self._connection = connect(path)
        self._connection.execute("PRAGMA foreign_keys = ON")
        self._apply_tuning()
        self._pool = ConnectionPool(
            path,
            in_memory=self.is_in_memory,
            writer=self._connection,
            configure_reader=self._configure_reader,
            serialize_reads=serialize_reads,
        )
        # Nested track_queries contexts each get their own counter; the
        # single dispatcher fans every traced statement to all of them.
        self._trace_lock = threading.Lock()
        self._trace_stack: list[QueryCounter] = []
        self._schemas: dict[str, TableSchema] = {}
        self._schema_lock = threading.Lock()
        with self.transaction() as connection:
            connection.execute(
                f"""
                CREATE TABLE IF NOT EXISTS {_SCHEMA_TABLE} (
                    table_name TEXT PRIMARY KEY,
                    columns TEXT NOT NULL
                )
                """
            )
        self._load_schemas()

    def _apply_tuning(self) -> None:
        """Throughput pragmas; journal settings only for file-backed DBs.

        WAL lets readers proceed during writes and batches fsyncs;
        ``synchronous=NORMAL`` is the documented safe pairing with WAL.
        Both are meaningless (WAL: unsupported) for in-memory databases,
        which the tests and benchmarks use, so those are skipped there.
        """
        self._connection.execute(f"PRAGMA cache_size = -{_DEFAULT_CACHE_KIB}")
        self._connection.execute("PRAGMA temp_store = MEMORY")
        if not self.is_in_memory:
            self._connection.execute("PRAGMA journal_mode = WAL")
            self._connection.execute("PRAGMA synchronous = NORMAL")

    def _configure_reader(self, connection: sqlite3.Connection) -> None:
        """Tuning for pooled read-only connections (no journal changes —
        the journal mode is a property of the database file)."""
        connection.execute(f"PRAGMA cache_size = -{_DEFAULT_CACHE_KIB}")
        connection.execute("PRAGMA temp_store = MEMORY")

    @property
    def is_in_memory(self) -> bool:
        """True when the database lives in RAM (no durable file)."""
        return (
            self.path == ":memory:"
            or self.path == ""
            or "mode=memory" in self.path
        )

    # -- connection management -----------------------------------------

    @property
    def connection(self) -> sqlite3.Connection:
        """The writer connection, shared with the other stores.

        Kept for single-threaded callers (tests, import tooling) that
        run their own statements; concurrent code must go through
        :meth:`transaction` / :meth:`read_connection` instead.  Raises
        :class:`RuntimeError` once the database is closed.
        """
        if self._pool.closed:
            raise RuntimeError(
                "Database is closed — no further statements can be served"
            )
        return self._connection

    @property
    def pool(self) -> ConnectionPool:
        """The read-connection pool (monitoring and tests)."""
        return self._pool

    @contextlib.contextmanager
    def transaction(self) -> Iterator[sqlite3.Connection]:
        """The writer connection, write-locked, in a transaction.

        Commits on clean exit, rolls back on exception — the concurrent
        replacement for the old ``with database.connection:`` blocks.
        """
        with self._pool.write() as connection:
            with connection:
                yield connection

    @contextlib.contextmanager
    def read_connection(self) -> Iterator[sqlite3.Connection]:
        """A connection for read-only statements (see the pool's rules)."""
        with self._pool.read() as connection:
            yield connection

    def fetch_all(
        self, sql: str, params: Sequence[Any] = ()
    ) -> list[tuple[Any, ...]]:
        """Run one read-only statement on a pooled connection."""
        with self._pool.read() as connection:
            return connection.execute(sql, params).fetchall()

    def fetch_one(
        self, sql: str, params: Sequence[Any] = ()
    ) -> tuple[Any, ...] | None:
        """Run one read-only statement; first row or None."""
        with self._pool.read() as connection:
            return connection.execute(sql, params).fetchone()

    @contextlib.contextmanager
    def track_queries(self) -> Iterator[QueryCounter]:
        """Count every SQL statement executed while the context is open.

        Trace callbacks are installed on the writer **and** every pooled
        read connection (present and future), so the counter sees queries
        from every store and every thread — exactly what the
        roundtrip-budget assertions need.  Contexts nest: each level gets
        its own counter and every traced statement is recorded by all
        currently open counters, inner and outer alike.
        """
        counter = QueryCounter()
        with self._trace_lock:
            self._trace_stack.append(counter)
            if len(self._trace_stack) == 1:
                self._pool.set_trace(self._dispatch_trace)
        try:
            yield counter
        finally:
            with self._trace_lock:
                self._trace_stack.remove(counter)
                if not self._trace_stack:
                    self._pool.set_trace(None)

    def _dispatch_trace(self, sql: str) -> None:
        with self._trace_lock:
            counters = list(self._trace_stack)
        for counter in counters:
            counter._record(sql)

    def close(self) -> None:
        """Close the writer and every pooled read connection.

        Idempotent.  Any later statement — through the pool or the
        :attr:`connection` property — raises a clear
        :class:`RuntimeError` instead of a ``sqlite3.ProgrammingError``
        surfacing deep inside an operator.
        """
        self._pool.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _load_schemas(self) -> None:
        rows = self.fetch_all(
            f"SELECT table_name, columns FROM {_SCHEMA_TABLE}"
        )
        for table_name, columns in rows:
            self._schemas[table_name] = TableSchema(
                table_name, tuple(columns.split(","))
            )

    # -- DDL -------------------------------------------------------------

    def create_table(self, name: str, columns: Sequence[str]) -> TableSchema:
        """Create a user table with the given column names."""
        schema = TableSchema(name, tuple(columns))
        if name in self._schemas:
            raise StorageError(f"table already exists: {name!r}")
        with self.transaction() as connection:
            connection.execute(
                f"CREATE TABLE {quote_ident(name)} "
                f"({quoted_csv(schema.columns)})"
            )
            connection.execute(
                f"INSERT INTO {_SCHEMA_TABLE} (table_name, columns) VALUES (?, ?)",
                (name, ",".join(schema.columns)),
            )
        with self._schema_lock:
            self._schemas[name] = schema
        return schema

    def drop_table(self, name: str) -> None:
        """Drop a user table and its schema entry."""
        self.schema(name)  # raises for unknown tables
        with self.transaction() as connection:
            connection.execute(f"DROP TABLE {quote_ident(name)}")
            connection.execute(
                f"DELETE FROM {_SCHEMA_TABLE} WHERE table_name = ?", (name,)
            )
        with self._schema_lock:
            del self._schemas[name]

    # -- catalog -----------------------------------------------------

    def tables(self) -> list[str]:
        """Names of all user tables, sorted."""
        return sorted(self._schemas)

    def has_table(self, name: str) -> bool:
        """True when ``name`` is a user table."""
        return name in self._schemas

    def schema(self, name: str) -> TableSchema:
        """Schema of ``name`` or raise :class:`UnknownTableError`."""
        try:
            return self._schemas[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def columns(self, name: str) -> tuple[str, ...]:
        """Column names of ``name`` in declaration order."""
        return self.schema(name).columns

    # -- DML -------------------------------------------------------------

    def insert(
        self,
        table: str,
        values: Sequence[Any] | Mapping[str, Any],
        row_id: int | None = None,
    ) -> int:
        """Insert one row; returns its rowid.

        ``values`` is either a positional sequence matching the schema or
        a column-name mapping (missing columns become NULL).  An explicit
        ``row_id`` pins the rowid — used by import tooling, which must
        preserve annotation attachments keyed on rowids.
        """
        schema = self.schema(table)
        if isinstance(values, Mapping):
            unknown = set(values) - set(schema.columns)
            if unknown:
                raise StorageError(
                    f"unknown columns for {table!r}: {sorted(unknown)}"
                )
            row = tuple(values.get(column) for column in schema.columns)
        else:
            schema.check_values(values)
            row = tuple(values)
        with self.transaction() as connection:
            if row_id is None:
                marks = placeholders(len(schema.columns))
                cursor = connection.execute(
                    f"INSERT INTO {quote_ident(table)} VALUES ({marks})",
                    row,
                )
            else:
                marks = placeholders(1 + len(schema.columns))
                cursor = connection.execute(
                    f"INSERT INTO {quote_ident(table)} "
                    f"(rowid, {quoted_csv(schema.columns)}) "
                    f"VALUES ({marks})",
                    (row_id, *row),
                )
            rowid = cursor.lastrowid
        assert rowid is not None
        return rowid

    def insert_many(
        self, table: str, rows: Sequence[Sequence[Any]]
    ) -> list[int]:
        """Insert multiple positional rows; returns their rowids.

        One transaction (and one write-lock window) for the whole batch;
        per-row execution because each row's assigned rowid is returned.
        """
        schema = self.schema(table)
        marks = placeholders(len(schema.columns))
        sql = f"INSERT INTO {quote_ident(table)} VALUES ({marks})"
        row_ids: list[int] = []
        with self.transaction() as connection:
            for row in rows:
                schema.check_values(row)
                cursor = connection.execute(sql, tuple(row))
                assert cursor.lastrowid is not None
                row_ids.append(cursor.lastrowid)
        return row_ids

    def delete_row(self, table: str, row_id: int) -> None:
        """Delete one row by rowid (no-op when absent)."""
        self.schema(table)
        with self.transaction() as connection:
            connection.execute(
                f"DELETE FROM {quote_ident(table)} WHERE rowid = ?",
                (row_id,),
            )

    # -- reads --------------------------------------------------------

    def get_row(self, table: str, row_id: int) -> tuple[Any, ...] | None:
        """Fetch one row's values by rowid, or None when absent."""
        self.schema(table)
        row = self.fetch_one(
            f"SELECT * FROM {quote_ident(table)} WHERE rowid = ?",
            (row_id,),
        )
        return tuple(row) if row is not None else None

    def rows(self, table: str) -> Iterator[tuple[int, tuple[Any, ...]]]:
        """Scan ``table``, yielding ``(rowid, values)`` pairs."""
        return self.scan(table)

    def scan(
        self,
        table: str,
        where_sql: str | None = None,
        params: Sequence[Any] = (),
        limit: int | None = None,
    ) -> Iterator[tuple[int, tuple[Any, ...]]]:
        """Scan ``table`` with an optional pushed-down filter and limit.

        ``where_sql`` is a parameterized WHERE fragment over the table's
        own (quoted) column names, compiled by the planner from sargable
        predicates (:mod:`repro.engine.pushdown`); ``limit`` truncates the
        scan inside SQLite.  Rows come out in rowid order either way, so
        pushdown never changes result order.

        File-backed databases stream lazily off the calling thread's
        read-only connection.  In-memory databases fetch in bounded
        batches so the shared-connection lock is never held across a
        ``yield`` (a consumer pausing mid-scan must not block writers).
        """
        self.schema(table)
        sql = f"SELECT rowid, * FROM {quote_ident(table)}"
        bound: tuple[Any, ...] = tuple(params)
        if where_sql is not None:
            sql += f" WHERE {where_sql}"
        sql += " ORDER BY rowid"
        if limit is not None:
            sql += " LIMIT ?"
            bound += (limit,)
        if self._pool.serialized_reads:
            return self._scan_serialized(sql, bound)
        return self._scan_streaming(sql, bound)

    def _scan_streaming(
        self, sql: str, bound: tuple[Any, ...]
    ) -> Iterator[tuple[int, tuple[Any, ...]]]:
        """Lazy scan on this thread's dedicated read-only connection."""
        with self._pool.read() as connection:
            cursor = connection.execute(sql, bound)
        # The connection is thread-local and dedicated — iterating after
        # the checkout window is safe (no lock was held to begin with).
        for row in cursor:
            yield row[0], tuple(row[1:])

    def _scan_serialized(
        self, sql: str, bound: tuple[Any, ...]
    ) -> Iterator[tuple[int, tuple[Any, ...]]]:
        """Batched scan on the lock-serialized shared connection."""
        with self._pool.read() as connection:
            cursor = connection.execute(sql, bound)
            rows = cursor.fetchmany(_SCAN_FETCH_SIZE)
        while rows:
            for row in rows:
                yield row[0], tuple(row[1:])
            if len(rows) < _SCAN_FETCH_SIZE:
                return
            with self._pool.read():
                rows = cursor.fetchmany(_SCAN_FETCH_SIZE)

    def row_count(self, table: str) -> int:
        """Number of rows in ``table``."""
        self.schema(table)
        row = self.fetch_one(
            f"SELECT COUNT(*) FROM {quote_ident(table)}"
        )
        assert row is not None
        return row[0]
