"""The hash-sharded storage backend.

Partitions the store across ``N`` SQLite files, each with its own
serialized writer and its own WAL read pool, so concurrent bulk-ingest
writers queue on *per-shard* write locks instead of one global one —
commit and checkpoint waits on different shards overlap instead of
serializing.  Placement:

* **base rows** live on ``shard_of(table, row_id)`` — a stable hash of
  the table name plus the row id, so consecutive rowids round-robin
  across shards and every scan fans out evenly;
* **summary state** is co-located with its base row (a scan block's
  state fetch routes each row to exactly one shard);
* **annotation bodies and their attachments** are co-located on
  ``shard_of_annotation(annotation_id)``, which slices the id space
  into :data:`~repro.storage.backend.ANNOTATION_BLOCK`-sized runs —
  a bulk-ingest batch of consecutive ids lands on one shard (two at a
  block boundary) in one or two transactions, so concurrent writers
  commit to *different* shards instead of queueing on every shard;
* **metadata** (the schema registry, instance definitions, links, the
  id sequence) lives on shard 0 (:data:`~repro.storage.backend.META_SHARD`),
  which doubles as a regular data shard — shard 0's file *is* the given
  path, so a ``shards=1`` database and a single-file database are the
  same layout on disk.

Routing must be a pure function of its arguments: it addresses
*persisted* placement, so it hashes with :func:`zlib.crc32` (stable
across processes and Python versions), never ``hash()``.

Cross-shard writes are per-shard atomic, not globally atomic: a bulk
ingest that spans shards commits one transaction per shard.  Readers on
another connection may observe one shard's half of a batch before the
other lands — same-shard state (a row and its attachments and summary
state) is always consistent, cross-shard state is eventually so.  See
DESIGN.md §11 for the full lock inventory and the memory-vs-file caveat
(in-memory databases cannot be sharded: each ``:memory:`` connection is
a private database, so there is nothing to fan out over).

The backend owns two small thread pools: a scatter pool that scan
producers run on (`Database` fans per-shard scan statements out and
merges the ordered streams) and a writer fan-out pool for per-shard
sub-batches of one logical bulk write.  They are separate so a burst of
scatter reads can never starve ingest of executor slots, or vice versa.
"""

from __future__ import annotations

import contextlib
import sqlite3
import zlib
from collections.abc import Callable, Iterator, Sequence
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any

from repro.errors import StorageError
from repro.storage.backend import (
    ANNOTATION_BLOCK,
    META_SHARD,
    tune_writer,
    is_memory_path,
    shard_path,
    tune_reader,
)
from repro.storage.pool import ConnectionPool, connect


class ShardedBackend:
    """``N`` SQLite files, each with its own writer lock and read pool.

    Parameters
    ----------
    path:
        Base database path; shard ``k`` lives at ``path`` (k = 0) or
        ``path.shardK``.  Must be file-backed.
    shards:
        Number of shards (>= 2; ``shards=1`` is
        :class:`~repro.storage.backend.SingleFileBackend`'s job).
    serialize_reads:
        Force each shard's reads through its lock-serialized writer
        connection (the benchmark baseline topology, per shard).
    """

    def __init__(
        self, path: str, shards: int, serialize_reads: bool = False
    ) -> None:
        if shards < 2:
            raise StorageError(
                f"ShardedBackend needs at least 2 shards, got {shards} — "
                "use SingleFileBackend for the single-file layout"
            )
        if is_memory_path(path):
            raise StorageError(
                "a sharded store must be file-backed: every "
                "sqlite3.connect(':memory:') is a private database, so "
                "there is no shared state to partition (see DESIGN.md §11)"
            )
        self.path = path
        self._shards = shards
        self._writers: list[sqlite3.Connection] = []
        self._pools: list[ConnectionPool] = []
        for shard in range(shards):
            writer = connect(shard_path(path, shard))
            tune_writer(writer, in_memory=False)
            self._writers.append(writer)
            self._pools.append(
                ConnectionPool(
                    shard_path(path, shard),
                    in_memory=False,
                    writer=writer,
                    configure_reader=tune_reader,
                    serialize_reads=serialize_reads,
                )
            )
        # Scan producers (one per shard per in-flight scatter-gather
        # scan) and per-shard write fan-out run on separate pools so
        # neither side can starve the other of slots.
        self._scan_executor = ThreadPoolExecutor(
            max_workers=max(8, shards * 4), thread_name_prefix="shard-scan"
        )
        self._write_executor = ThreadPoolExecutor(
            max_workers=shards, thread_name_prefix="shard-write"
        )
        self._closed = False

    # -- introspection --------------------------------------------------

    @property
    def shard_count(self) -> int:
        return self._shards

    @property
    def is_in_memory(self) -> bool:
        return False

    @property
    def serialized_reads(self) -> bool:
        return self._pools[0].serialized_reads

    @property
    def closed(self) -> bool:
        return self._closed

    def shard_paths(self) -> list[str]:
        """The database files, indexed by shard."""
        return [shard_path(self.path, shard) for shard in range(self._shards)]

    # -- routing --------------------------------------------------------

    def shard_of(self, table: str, row_id: int) -> int:
        """Home shard of a base row: stable hash of ``(table, row)``.

        Adding the row id (rather than hashing it) round-robins
        consecutive rowids of one table across shards — inserts and
        scans spread evenly whatever the id pattern.
        """
        return (zlib.crc32(table.encode("utf-8")) + row_id) % self._shards

    def shard_of_annotation(self, annotation_id: int) -> int:
        """Home shard of an annotation body and its attachment edges.

        Block-sliced rather than round-robin: ids ``k*B .. k*B + B-1``
        (``B`` = :data:`~repro.storage.backend.ANNOTATION_BLOCK`) share
        a shard, so a bulk batch of consecutive ids is written with one
        or two shard transactions instead of one per shard — the
        write-affinity that lets concurrent ingest threads commit on
        disjoint shard locks.  Load still spreads: successive blocks
        round-robin across shards.
        """
        return (annotation_id // ANNOTATION_BLOCK) % self._shards

    # -- checkout -------------------------------------------------------

    def _check_shard(self, shard: int) -> int:
        if not 0 <= shard < self._shards:
            raise StorageError(
                f"shard {shard} out of range (backend has {self._shards})"
            )
        return shard

    def writer(self, shard: int = META_SHARD) -> sqlite3.Connection:
        return self._writers[self._check_shard(shard)]

    def pool(self, shard: int = META_SHARD) -> ConnectionPool:
        return self._pools[self._check_shard(shard)]

    @contextlib.contextmanager
    def transaction(
        self, shard: int = META_SHARD
    ) -> Iterator[sqlite3.Connection]:
        with self._pools[self._check_shard(shard)].write() as connection:
            with connection:
                yield connection

    @contextlib.contextmanager
    def read(self, shard: int = META_SHARD) -> Iterator[sqlite3.Connection]:
        with self._pools[self._check_shard(shard)].read() as connection:
            yield connection

    # -- fan-out helpers ------------------------------------------------

    def submit_scan(self, fn: Callable[..., Any], *args: Any) -> "Future[Any]":
        """Run one scatter-gather scan producer on the scan pool."""
        if self._closed:
            raise RuntimeError(
                "sharded backend is closed — no further statements can "
                "be served"
            )
        return self._scan_executor.submit(fn, *args)

    def run_write_fanout(
        self, thunks: Sequence[Callable[[], Any]]
    ) -> list[Any]:
        """Run one logical write's per-shard sub-writes concurrently.

        Each thunk is one shard's transaction.  Narrow fan-outs (one or
        two shards — the common case for block-affine annotation
        batches) run inline in the calling thread: an executor hop costs
        more than it saves there, and under GIL pressure a handoff can
        stall for a full scheduler timeslice.  Wider fan-outs run on the
        writer pool so their commit waits overlap.  All submitted thunks
        are awaited even when one fails, so no sub-transaction is left
        in flight; the first failure is re-raised.
        """
        if len(thunks) <= 2:
            return [thunk() for thunk in thunks]
        futures = [self._write_executor.submit(thunk) for thunk in thunks]
        results: list[Any] = []
        first_error: BaseException | None = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return results

    # -- tracing, counters, teardown ------------------------------------

    def set_trace(self, callback: Callable[[str], None] | None) -> None:
        for pool in self._pools:
            pool.set_trace(callback)

    def counters(self) -> dict[str, dict[str, int]]:
        return {
            str(shard): pool.stats()
            for shard, pool in enumerate(self._pools)
        }

    def close(self) -> None:
        """Shut the executors down, then close every shard's pool."""
        if self._closed:
            return
        self._closed = True
        self._scan_executor.shutdown(wait=False, cancel_futures=True)
        self._write_executor.shutdown(wait=True, cancel_futures=True)
        for pool in self._pools:
            pool.close()
