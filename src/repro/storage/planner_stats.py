"""Persistence for the planner's catalog statistics.

The cost-based planner (DESIGN.md §13) prices plans from per-table
statistics — row counts, per-column distinct-value estimates, per-
instance summary-object cardinality and serialized size.  Those numbers
are collected by ``InsightNotes.analyze()`` and kept **current** in
memory by incremental upkeep on ingest; this module owns their durable
form: one meta-shard table mapping ``(table_name, stat_key)`` to a
numeric value, so a reopened session starts from the last ANALYZE
instead of from nothing.

Key namespace (all values REAL):

``row_count``
    Base rows in the table at analyze time.
``annotations``
    Attachment rows targeting the table.
``analyzed_at``
    Epoch seconds of the collecting ANALYZE.
``ndv:<column>``
    Distinct non-NULL values of one column (per-shard maximum on a
    sharded backend — a lower bound, which only makes the planner's
    selectivity estimates conservative).
``summary_count:<instance>`` / ``summary_bytes:<instance>``
    Stored summary objects of one linked instance on this table, and
    their total serialized size.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.storage.database import Database
from repro.storage.schema import SYSTEM_PREFIX

_PLANNER_STATS_TABLE = f"{SYSTEM_PREFIX}planner_stats"


class PlannerStatsStore:
    """The ``planner_stats`` system table: load/replace per-table stats.

    Metadata, like instance definitions and links, lives on the meta
    shard only — statistics describe whole tables, not row partitions.
    """

    def __init__(self, database: Database) -> None:
        self._db = database
        with database.transaction() as connection:
            connection.execute(
                f"""
                CREATE TABLE IF NOT EXISTS {_PLANNER_STATS_TABLE} (
                    table_name TEXT NOT NULL,
                    stat_key TEXT NOT NULL,
                    stat_value REAL NOT NULL,
                    PRIMARY KEY (table_name, stat_key)
                )
                """
            )

    def replace_table(self, table: str, stats: Mapping[str, float]) -> None:
        """Atomically replace every persisted stat of one table."""
        with self._db.transaction() as connection:
            connection.execute(
                f"DELETE FROM {_PLANNER_STATS_TABLE} WHERE table_name = ?",
                (table,),
            )
            connection.executemany(
                f"INSERT INTO {_PLANNER_STATS_TABLE} "
                "(table_name, stat_key, stat_value) VALUES (?, ?, ?)",
                [(table, key, float(value)) for key, value in stats.items()],
            )

    def load_table(self, table: str) -> dict[str, float]:
        """Persisted stats of one table ({} when never analyzed)."""
        rows = self._db.fetch_all(
            f"SELECT stat_key, stat_value FROM {_PLANNER_STATS_TABLE} "
            "WHERE table_name = ?",
            (table,),
        )
        return {key: value for key, value in rows}

    def load_all(self) -> dict[str, dict[str, float]]:
        """Every persisted stat, grouped by table."""
        rows = self._db.fetch_all(
            f"SELECT table_name, stat_key, stat_value "
            f"FROM {_PLANNER_STATS_TABLE}"
        )
        loaded: dict[str, dict[str, float]] = {}
        for table, key, value in rows:
            loaded.setdefault(table, {})[key] = value
        return loaded

    def delete_table(self, table: str) -> None:
        """Drop one table's persisted stats (table dropped or renamed)."""
        with self._db.transaction() as connection:
            connection.execute(
                f"DELETE FROM {_PLANNER_STATS_TABLE} WHERE table_name = ?",
                (table,),
            )

    def clear(self) -> None:
        """Drop every persisted stat (the stats-staleness tests use this)."""
        with self._db.transaction() as connection:
            connection.execute(f"DELETE FROM {_PLANNER_STATS_TABLE}")
