"""The read-connection pool.

One SQLite file can serve many readers at once under WAL journaling —
each reader on its **own** connection sees a consistent committed
snapshot while a single writer proceeds in parallel.  The engine's
concurrent read path builds on exactly that:

* **file-backed databases** get one lazily created *read-only*
  connection per thread (``PRAGMA query_only = ON``), registered here so
  teardown and statement tracing reach all of them;
* **in-memory databases** cannot share state across connections (each
  ``sqlite3.connect(":memory:")`` is a brand-new database), so reads
  fall back to the shared writer connection, serialized under the write
  lock;
* **writes** always go through the one writer connection, serialized
  under the write lock — the engine's single-writer model.

The pool never hands a connection to user code directly; the
:class:`~repro.storage.database.Database` wraps checkout in
``read()`` / ``write()`` context managers and routes every statement
through them.  After :meth:`close`, any checkout raises a clear
:class:`RuntimeError` instead of letting a dangling connection surface
as a ``sqlite3.ProgrammingError`` deep inside an operator.
"""

from __future__ import annotations

import contextlib
import sqlite3
import threading
import time
from collections.abc import Callable, Iterator

from repro.concurrency import make_lock, make_rlock


def connect(
    path: str, *, check_same_thread: bool = False
) -> sqlite3.Connection:
    """The engine's single doorway to ``sqlite3.connect``.

    Every connection in the system — the writer, the pooled readers, and
    auxiliary stores such as the zoom-in result cache — is opened here,
    so review of connection handling starts and ends in this module
    (insightlint rule IN002 rejects raw ``sqlite3.connect`` anywhere
    else).  ``check_same_thread`` defaults to ``False`` because every
    caller serializes cross-thread use behind its own lock or keeps the
    connection thread-local.
    """
    return sqlite3.connect(path, check_same_thread=check_same_thread)


class ConnectionPool:
    """Per-thread read-only connections plus one serialized writer.

    Parameters
    ----------
    path:
        The database path, used to open additional read connections.
    in_memory:
        True for RAM-resident databases, which cannot be shared across
        connections — reads then serialize on the writer connection.
    writer:
        The already-configured writer connection (owned by the
        :class:`~repro.storage.database.Database`; the pool closes it).
    configure_reader:
        Applied to every new read connection before it is switched to
        ``query_only`` — the place for page-cache and temp-store tuning.
    serialize_reads:
        Force the in-memory behaviour (all reads on the writer, under
        the write lock) even for file-backed databases.  This is the
        pre-pool engine's topology, kept as the benchmark baseline.
    """

    def __init__(
        self,
        path: str,
        in_memory: bool,
        writer: sqlite3.Connection,
        configure_reader: Callable[[sqlite3.Connection], None] | None = None,
        serialize_reads: bool = False,
    ) -> None:
        self._path = path
        self._in_memory = in_memory
        self._serialize_reads = in_memory or serialize_reads
        self._writer = writer
        self._configure_reader = configure_reader
        self._write_lock = make_rlock("pool.write", guards_io=True)
        # Guards the reader registry, the trace callback, and _closed.
        self._registry_lock = make_lock("pool.registry")
        self._readers: list[sqlite3.Connection] = []
        self._local = threading.local()
        self._trace: Callable[[str], None] | None = None
        self._closed = False
        # Checkout counters — observability for the scatter-gather and
        # per-shard-writer paths (never on a hot lock: one uncontended
        # lock acquisition per checkout, not per statement).
        self._stats_lock = make_lock("pool.stats")
        self._read_checkouts = 0
        self._write_batches = 0
        self._write_wait_s = 0.0

    # -- introspection --------------------------------------------------

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    @property
    def serialized_reads(self) -> bool:
        """True when reads share the writer connection (in-memory DBs)."""
        return self._serialize_reads

    @property
    def reader_count(self) -> int:
        """How many read-only connections have been opened so far."""
        with self._registry_lock:
            return len(self._readers)

    def stats(self) -> dict[str, int]:
        """Checkout counters: read checkouts, write batches, readers.

        ``read_checkouts`` counts :meth:`read` context entries (one per
        read-side checkout window, not per statement); ``write_batches``
        counts :meth:`write` entries — with every write path batching
        its statements into one checkout, this is the number of writer
        transactions the pool served.  ``write_wait_ms`` accumulates
        time spent *waiting* for the write lock across all checkouts —
        the writer-contention signal a served system watches (a healthy
        single-writer deployment keeps it near zero; growth means
        writers are queueing on each other).
        """
        with self._stats_lock:
            counters: dict[str, int] = {
                "read_checkouts": self._read_checkouts,
                "write_batches": self._write_batches,
                "write_wait_ms": int(self._write_wait_s * 1000),
            }
        counters["readers"] = self.reader_count
        return counters

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                "connection pool is closed — the Database it belongs to "
                "was closed; no further statements can be served"
            )

    # -- checkout -------------------------------------------------------

    @contextlib.contextmanager
    def read(self) -> Iterator[sqlite3.Connection]:
        """Check out a connection for read-only statements.

        File-backed: the calling thread's cached read-only connection,
        with **no lock held** — WAL readers neither block each other nor
        the writer.  In-memory: the shared writer connection under the
        write lock, so reads and writes strictly alternate.
        """
        self._check_open()
        with self._stats_lock:
            self._read_checkouts += 1
        if self._serialize_reads:
            with self._write_lock:
                self._check_open()
                yield self._writer
            return
        connection = getattr(self._local, "reader", None)
        if connection is None:
            connection = self._open_reader()
        yield connection

    @contextlib.contextmanager
    def write(self) -> Iterator[sqlite3.Connection]:
        """Check out the writer connection under the write lock.

        The lock is re-entrant, so a write path may nest (e.g. a bulk
        helper invoked inside an open transaction block).
        """
        self._check_open()
        with self._stats_lock:
            self._write_batches += 1
        waiting_since = time.perf_counter()
        with self._write_lock:
            waited = time.perf_counter() - waiting_since
            with self._stats_lock:
                self._write_wait_s += waited
            self._check_open()
            yield self._writer

    def _open_reader(self) -> sqlite3.Connection:
        """Open, tune, and register this thread's read-only connection.

        ``check_same_thread=False`` because teardown and trace
        installation legitimately touch the connection from other
        threads; statement execution stays thread-local by construction.
        """
        connection = connect(self._path)
        if self._configure_reader is not None:
            self._configure_reader(connection)
        connection.execute("PRAGMA query_only = ON")
        with self._registry_lock:
            if self._closed:
                connection.close()
                self._check_open()
            self._readers.append(connection)
            if self._trace is not None:
                connection.set_trace_callback(self._trace)
        self._local.reader = connection
        return connection

    # -- statement tracing ----------------------------------------------

    def set_trace(self, callback: Callable[[str], None] | None) -> None:
        """Install (or clear) a trace callback on **every** connection.

        Covers the writer, all existing read connections, and — because
        the callback is remembered — read connections opened later, so a
        query-counting context sees statements from pooled readers too.
        """
        with self._registry_lock:
            self._trace = callback
            if self._closed:
                return
            self._writer.set_trace_callback(callback)
            for connection in self._readers:
                connection.set_trace_callback(callback)

    # -- teardown -------------------------------------------------------

    def close(self) -> None:
        """Close every pooled connection and the writer (idempotent).

        Taken under the write lock so an in-flight write transaction
        finishes before its connection disappears.
        """
        with self._write_lock:
            with self._registry_lock:
                if self._closed:
                    return
                self._closed = True
                readers, self._readers = self._readers, []
            for connection in readers:
                connection.close()
            self._writer.close()
