"""The summary catalog.

Persists levels 2 and 3 of the summarization hierarchy:

* **instance definitions** — name, type, and the type-specific
  configuration (labels, trained model, thresholds, invariant flags);
* **links** — the many-to-many relation between instances and user tables
  (Figure 4): linking instance *I* to table *R* means every *R* tuple's
  annotations are summarized by *I*;
* **summary state** — the per-(instance, table, row) summary objects,
  stored as JSON and rebuilt through the type registry.

Live instances are cached after first resolution, so the trained model is
deserialized once per session.  Summary state reads go through a bounded
LRU deserialization cache keyed by ``(instance, table, row_id)`` — repeated
queries over the same rows skip both the SQLite roundtrip and the
``json.loads`` + ``object_from_json`` rebuild.  The cache also remembers
*absence* (rows that were never summarized), which full-table scans hit
constantly.  Every write path (:meth:`save_object`, :meth:`delete_object`,
:meth:`unlink`, :meth:`drop_instance`) invalidates the affected entries.

The catalog is shared across concurrent queries: the deserialization LRU
and the live-instance map are guarded by fine-grained locks, and the lock
is never held across SQL — cache probe under the lock, fetch on a pooled
read connection outside it, fill under the lock again.  Two threads
missing the same key may both fetch (a benign double-read); the second
fill simply overwrites the first with an equal object.

Under a sharded backend the instance definitions and links stay on the
meta shard (small, metadata-shaped), while summary state is co-located
with its base row on ``shard_of(table, row_id)`` — the scan path's
block fetches group rows by home shard and hit each shard once per
block.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from collections.abc import Callable, Iterator, Sequence

from repro.concurrency import make_lock
from repro.errors import (
    CatalogError,
    DuplicateInstanceError,
    UnknownInstanceError,
)
from repro.storage.backend import META_SHARD
from repro.storage.database import Database
from repro.storage.schema import SYSTEM_PREFIX
from repro.storage.sqlsafe import placeholders
from repro.summaries.base import SummaryInstance, SummaryObject
from repro.summaries.registry import SummaryTypeRegistry, default_registry

_INSTANCES_TABLE = f"{SYSTEM_PREFIX}instances"
_LINKS_TABLE = f"{SYSTEM_PREFIX}links"
_STATE_TABLE = f"{SYSTEM_PREFIX}summary_state"

#: Default bound of the deserialization cache (objects + absence markers).
DEFAULT_OBJECT_CACHE_SIZE = 8192

#: Sentinel distinguishing "cached as absent" from "not cached".
_ABSENT = object()


class SummaryCatalog:
    """Persistent catalog of summary instances, links, and state.

    Parameters
    ----------
    database, registry:
        The shared storage stack and the summary type registry.
    object_cache_size:
        Bound of the deserialization LRU (``0`` disables caching — the
        benchmarks use this to emulate the uncached per-row path).
    """

    def __init__(
        self,
        database: Database,
        registry: SummaryTypeRegistry | None = None,
        object_cache_size: int = DEFAULT_OBJECT_CACHE_SIZE,
    ) -> None:
        if object_cache_size < 0:
            raise ValueError(
                f"object_cache_size must be >= 0, got {object_cache_size}"
            )
        self._db = database
        self.registry = registry or default_registry()
        self._live_instances: dict[str, SummaryInstance] = {}
        self._instances_lock = make_lock("catalog.instances")
        self._object_cache_size = object_cache_size
        # (instance, table, row_id) -> SummaryObject | _ABSENT, LRU-ordered.
        self._object_cache: OrderedDict[tuple[str, str, int], object] = (
            OrderedDict()
        )
        # Guards the LRU and its hit/miss counters; never held across SQL.
        self._cache_lock = make_lock("catalog.cache")
        self.cache_hits = 0
        self.cache_misses = 0
        for shard in range(database.shard_count):
            with database.transaction(shard) as connection:
                if shard == META_SHARD:
                    # Instance definitions and links are metadata — they
                    # stay on the meta shard; only per-row summary state
                    # fans out with its base rows.
                    connection.execute(
                        f"""
                        CREATE TABLE IF NOT EXISTS {_INSTANCES_TABLE} (
                            instance_name TEXT PRIMARY KEY,
                            type_name TEXT NOT NULL,
                            config TEXT NOT NULL
                        )
                        """
                    )
                    connection.execute(
                        f"""
                        CREATE TABLE IF NOT EXISTS {_LINKS_TABLE} (
                            instance_name TEXT NOT NULL,
                            table_name TEXT NOT NULL,
                            PRIMARY KEY (instance_name, table_name)
                        )
                        """
                    )
                connection.execute(
                    f"""
                    CREATE TABLE IF NOT EXISTS {_STATE_TABLE} (
                        instance_name TEXT NOT NULL,
                        table_name TEXT NOT NULL,
                        row_id INTEGER NOT NULL,
                        object TEXT NOT NULL,
                        PRIMARY KEY (instance_name, table_name, row_id)
                    )
                    """
                )
                # The scan path looks state up by (table, row) across all
                # linked instances; the primary key leads with
                # instance_name, so without this index those lookups walk
                # the whole table.
                connection.execute(
                    f"""
                    CREATE INDEX IF NOT EXISTS {_STATE_TABLE}_by_table_row
                    ON {_STATE_TABLE} (table_name, row_id, instance_name)
                    """
                )

    # -- deserialization cache ------------------------------------------

    def configure_object_cache(self, size: int) -> None:
        """Resize (``0``: disable and clear) the deserialization cache."""
        if size < 0:
            raise ValueError(f"object_cache_size must be >= 0, got {size}")
        with self._cache_lock:
            self._object_cache_size = size
            if size == 0:
                self._object_cache.clear()
            else:
                while len(self._object_cache) > size:
                    self._object_cache.popitem(last=False)

    def object_cache_info(self) -> dict[str, int]:
        """Hit/miss/size counters for monitoring and tests."""
        with self._cache_lock:
            return {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "entries": len(self._object_cache),
                "capacity": self._object_cache_size,
            }

    def _cache_get(self, key: tuple[str, str, int]) -> object:
        """Cached object, ``_ABSENT``, or None when not cached."""
        with self._cache_lock:
            cached = self._object_cache.get(key)
            if cached is not None:
                self._object_cache.move_to_end(key)
                self.cache_hits += 1
            else:
                self.cache_misses += 1
            return cached

    def _cache_put(self, key: tuple[str, str, int], value: object) -> None:
        with self._cache_lock:
            if self._object_cache_size == 0:
                return
            self._object_cache[key] = value
            self._object_cache.move_to_end(key)
            while len(self._object_cache) > self._object_cache_size:
                self._object_cache.popitem(last=False)

    def _cache_invalidate(self, key: tuple[str, str, int]) -> None:
        with self._cache_lock:
            self._object_cache.pop(key, None)

    def _cache_invalidate_pair(
        self, instance_name: str, table_name: str | None
    ) -> None:
        """Drop all cached entries of an instance (optionally one table)."""
        with self._cache_lock:
            stale = [
                key
                for key in self._object_cache
                if key[0] == instance_name
                and (table_name is None or key[1] == table_name)
            ]
            for key in stale:
                del self._object_cache[key]

    # -- instance definitions -----------------------------------------

    def define_instance(
        self, type_name: str, instance_name: str, config: dict
    ) -> SummaryInstance:
        """Create, persist, and return a new summary instance."""
        if self.has_instance(instance_name):
            raise DuplicateInstanceError(instance_name)
        instance = self.registry.create_instance(type_name, instance_name, config)
        with self._db.transaction() as connection:
            connection.execute(
                f"""
                INSERT INTO {_INSTANCES_TABLE}
                    (instance_name, type_name, config) VALUES (?, ?, ?)
                """,
                (instance_name, type_name, json.dumps(instance.config())),
            )
        with self._instances_lock:
            self._live_instances[instance_name] = instance
        return instance

    def save_instance_config(self, instance_name: str) -> None:
        """Re-persist a live instance's configuration.

        Call after mutating instance state that must survive restarts —
        typically after training a classifier's model.
        """
        instance = self.get_instance(instance_name)
        with self._db.transaction() as connection:
            connection.execute(
                f"UPDATE {_INSTANCES_TABLE} SET config = ? WHERE instance_name = ?",
                (json.dumps(instance.config()), instance_name),
            )

    def drop_instance(self, instance_name: str) -> None:
        """Remove an instance, its links, and all its summary state.

        Summary state lives on every shard, so the purge fans out; the
        definition and links go with the meta shard's sub-transaction.
        """
        if not self.has_instance(instance_name):
            raise UnknownInstanceError(instance_name)

        def purge(shard: int) -> Callable[[], None]:
            def thunk() -> None:
                with self._db.transaction(shard) as connection:
                    connection.execute(
                        f"DELETE FROM {_STATE_TABLE} WHERE instance_name = ?",
                        (instance_name,),
                    )
                    if shard == META_SHARD:
                        connection.execute(
                            f"DELETE FROM {_LINKS_TABLE} "
                            "WHERE instance_name = ?",
                            (instance_name,),
                        )
                        connection.execute(
                            f"DELETE FROM {_INSTANCES_TABLE} "
                            "WHERE instance_name = ?",
                            (instance_name,),
                        )

            return thunk

        self._db.backend.run_write_fanout(
            [purge(shard) for shard in range(self._db.shard_count)]
        )
        with self._instances_lock:
            self._live_instances.pop(instance_name, None)
        self._cache_invalidate_pair(instance_name, None)

    def has_instance(self, instance_name: str) -> bool:
        """True when the instance is defined."""
        with self._instances_lock:
            if instance_name in self._live_instances:
                return True
        row = self._db.fetch_one(
            f"SELECT 1 FROM {_INSTANCES_TABLE} WHERE instance_name = ?",
            (instance_name,),
        )
        return row is not None

    def get_instance(self, instance_name: str) -> SummaryInstance:
        """Resolve a live instance, deserializing it on first access.

        Two threads racing the first access may both deserialize; the
        first registration wins so every caller shares one live object
        (instance state — e.g. a trained model — must stay singular).
        """
        with self._instances_lock:
            if instance_name in self._live_instances:
                return self._live_instances[instance_name]
        row = self._db.fetch_one(
            f"""
            SELECT type_name, config FROM {_INSTANCES_TABLE}
            WHERE instance_name = ?
            """,
            (instance_name,),
        )
        if row is None:
            raise UnknownInstanceError(instance_name)
        type_name, config_json = row
        try:
            instance = self.registry.create_instance(
                type_name, instance_name, json.loads(config_json)
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise CatalogError(
                f"corrupted configuration for instance {instance_name!r} "
                f"(type {type_name!r}): {exc}"
            ) from exc
        with self._instances_lock:
            return self._live_instances.setdefault(instance_name, instance)

    def instance_names(self) -> list[str]:
        """All defined instance names, sorted."""
        rows = self._db.fetch_all(
            f"SELECT instance_name FROM {_INSTANCES_TABLE} ORDER BY instance_name"
        )
        return [row[0] for row in rows]

    # -- links ----------------------------------------------------------

    def link(self, instance_name: str, table_name: str) -> None:
        """Link an instance to a user table (idempotent)."""
        if not self.has_instance(instance_name):
            raise UnknownInstanceError(instance_name)
        self._db.schema(table_name)  # raises for unknown tables
        with self._db.transaction() as connection:
            connection.execute(
                f"""
                INSERT OR IGNORE INTO {_LINKS_TABLE}
                    (instance_name, table_name) VALUES (?, ?)
                """,
                (instance_name, table_name),
            )

    def unlink(self, instance_name: str, table_name: str) -> None:
        """Remove a link and the instance's state for that table."""
        if not self.has_instance(instance_name):
            raise UnknownInstanceError(instance_name)

        def purge(shard: int) -> Callable[[], None]:
            def thunk() -> None:
                with self._db.transaction(shard) as connection:
                    if shard == META_SHARD:
                        connection.execute(
                            f"""
                            DELETE FROM {_LINKS_TABLE}
                            WHERE instance_name = ? AND table_name = ?
                            """,
                            (instance_name, table_name),
                        )
                    connection.execute(
                        f"""
                        DELETE FROM {_STATE_TABLE}
                        WHERE instance_name = ? AND table_name = ?
                        """,
                        (instance_name, table_name),
                    )

            return thunk

        self._db.backend.run_write_fanout(
            [purge(shard) for shard in range(self._db.shard_count)]
        )
        self._cache_invalidate_pair(instance_name, table_name)

    def is_linked(self, instance_name: str, table_name: str) -> bool:
        """True when the instance is linked to the table."""
        row = self._db.fetch_one(
            f"""
            SELECT 1 FROM {_LINKS_TABLE}
            WHERE instance_name = ? AND table_name = ?
            """,
            (instance_name, table_name),
        )
        return row is not None

    def instances_for_table(self, table_name: str) -> list[SummaryInstance]:
        """Live instances linked to ``table_name``, name-sorted.

        One JOIN against the instances table instead of one definition
        lookup per link — already-live instances skip deserialization.
        """
        rows = self._db.fetch_all(
            f"""
            SELECT l.instance_name, i.type_name, i.config
            FROM {_LINKS_TABLE} l
            JOIN {_INSTANCES_TABLE} i ON i.instance_name = l.instance_name
            WHERE l.table_name = ? ORDER BY l.instance_name
            """,
            (table_name,),
        )
        instances: list[SummaryInstance] = []
        for instance_name, type_name, config_json in rows:
            with self._instances_lock:
                live = self._live_instances.get(instance_name)
            if live is None:
                try:
                    live = self.registry.create_instance(
                        type_name, instance_name, json.loads(config_json)
                    )
                except (ValueError, KeyError, TypeError) as exc:
                    raise CatalogError(
                        f"corrupted configuration for instance "
                        f"{instance_name!r} (type {type_name!r}): {exc}"
                    ) from exc
                with self._instances_lock:
                    live = self._live_instances.setdefault(instance_name, live)
            instances.append(live)
        return instances

    def links(self) -> list[tuple[str, str]]:
        """All ``(instance, table)`` links, sorted."""
        rows = self._db.fetch_all(
            f"""
            SELECT instance_name, table_name FROM {_LINKS_TABLE}
            ORDER BY instance_name, table_name
            """
        )
        return [(row[0], row[1]) for row in rows]

    # -- summary state ------------------------------------------------

    def save_object(
        self, instance_name: str, table_name: str, row_id: int, obj: SummaryObject
    ) -> None:
        """Persist the summary object for one base row (upsert)."""
        self.save_objects([(instance_name, table_name, row_id, obj)])

    def save_objects(
        self,
        entries: Sequence[tuple[str, str, int, SummaryObject]],
    ) -> int:
        """Bulk :meth:`save_object`: one ``executemany`` upsert, one
        transaction.

        The bulk ingestion write-back path — a batch that touched N
        summary objects persists them with a single
        BEGIN/executemany/COMMIT instead of N separate transactions.
        Serialization happens before the transaction opens, so a
        ``to_json`` failure never leaves a half-written batch.  Returns
        the number of objects written.
        """
        if not entries:
            return 0
        by_shard: dict[int, list[tuple[str, str, int, str]]] = {}
        backend = self._db.backend
        for instance_name, table_name, row_id, obj in entries:
            if obj.instance_name != instance_name:
                raise CatalogError(
                    f"object belongs to instance {obj.instance_name!r}, "
                    f"not {instance_name!r}"
                )
            by_shard.setdefault(backend.shard_of(table_name, row_id), []).append(
                (instance_name, table_name, row_id, json.dumps(obj.to_json()))
            )

        def write_shard(shard: int) -> Callable[[], None]:
            def thunk() -> None:
                with self._db.transaction(shard) as connection:
                    connection.executemany(
                        f"""
                        INSERT INTO {_STATE_TABLE}
                            (instance_name, table_name, row_id, object)
                        VALUES (?, ?, ?, ?)
                        ON CONFLICT (instance_name, table_name, row_id)
                        DO UPDATE SET object = excluded.object
                        """,
                        by_shard[shard],
                    )

            return thunk

        backend.run_write_fanout(
            [write_shard(shard) for shard in sorted(by_shard)]
        )
        # Drop rather than insert: the objects are live maintenance state
        # that keeps mutating; the cache must only hold settled state.
        for instance_name, table_name, row_id, _obj in entries:
            self._cache_invalidate((instance_name, table_name, row_id))
        return len(entries)

    def load_object(
        self, instance_name: str, table_name: str, row_id: int
    ) -> SummaryObject | None:
        """Load one row's summary object, or None when never summarized.

        Served from the deserialization cache when possible.  Callers
        must not mutate the returned object in place — take a
        :meth:`~repro.summaries.base.SummaryObject.for_query` copy (the
        scan path) or :meth:`~repro.summaries.base.SummaryObject.copy`
        before mutating.
        """
        key = (instance_name, table_name, row_id)
        cached = self._cache_get(key)
        if cached is not None:
            return None if cached is _ABSENT else cached  # type: ignore[return-value]
        row = self._db.fetch_one(
            f"""
            SELECT object FROM {_STATE_TABLE}
            WHERE instance_name = ? AND table_name = ? AND row_id = ?
            """,
            (instance_name, table_name, row_id),
            shard=self._db.backend.shard_of(table_name, row_id),
        )
        if row is None:
            self._cache_put(key, _ABSENT)
            return None
        obj = self._deserialize_object(row[0], instance_name, table_name, row_id)
        self._cache_put(key, obj)
        return obj

    def load_objects_for_table(
        self,
        instance_names: Sequence[str],
        table_name: str,
        row_ids: Sequence[int],
    ) -> dict[tuple[str, int], SummaryObject]:
        """Bulk :meth:`load_object` for a block of rows.

        Returns ``(instance_name, row_id) -> object`` with never-summarized
        pairs simply absent.  Cache hits (including cached absences) are
        served from the LRU; the remaining pairs are fetched in **one**
        SQL query per block (chunked only to respect SQLite's
        bound-variable limit), then cached.  The same mutation rules as
        :meth:`load_object` apply.
        """
        result: dict[tuple[str, int], SummaryObject] = {}
        missing: set[tuple[str, int]] = set()
        # One lock window for the whole block's probes — per-pair
        # locking would acquire the lock instances x rows times.
        with self._cache_lock:
            cache = self._object_cache
            for instance_name in instance_names:
                for row_id in row_ids:
                    cached = cache.get((instance_name, table_name, row_id))
                    if cached is None:
                        self.cache_misses += 1
                        missing.add((instance_name, row_id))
                        continue
                    cache.move_to_end((instance_name, table_name, row_id))
                    self.cache_hits += 1
                    if cached is not _ABSENT:
                        result[(instance_name, row_id)] = cached  # type: ignore[assignment]
        if not missing:
            return result
        fetch_instances = sorted({pair[0] for pair in missing})
        instance_marks = placeholders(len(fetch_instances))
        # Route each row to its home shard: one query per (shard, chunk).
        backend = self._db.backend
        rows_by_shard: dict[int, list[int]] = {}
        for row_id in sorted({pair[1] for pair in missing}):
            rows_by_shard.setdefault(
                backend.shard_of(table_name, row_id), []
            ).append(row_id)
        for shard in sorted(rows_by_shard):
            fetch_rows = rows_by_shard[shard]
            for chunk_start in range(0, len(fetch_rows), 500):
                chunk = fetch_rows[chunk_start : chunk_start + 500]
                row_marks = placeholders(len(chunk))
                rows = self._db.fetch_all(
                    f"""
                    SELECT instance_name, row_id, object FROM {_STATE_TABLE}
                    WHERE table_name = ?
                      AND instance_name IN ({instance_marks})
                      AND row_id IN ({row_marks})
                    """,
                    (table_name, *fetch_instances, *chunk),
                    shard=shard,
                )
                for instance_name, row_id, payload in rows:
                    pair = (instance_name, row_id)
                    if pair not in missing:
                        continue  # over-fetched: the pair was already cached
                    missing.discard(pair)
                    obj = self._deserialize_object(
                        payload, instance_name, table_name, row_id
                    )
                    self._cache_put((instance_name, table_name, row_id), obj)
                    result[pair] = obj
        for instance_name, row_id in missing:  # never summarized
            self._cache_put((instance_name, table_name, row_id), _ABSENT)
        return result

    def _deserialize_object(
        self, payload: str, instance_name: str, table_name: str, row_id: int
    ) -> SummaryObject:
        """Rebuild a stored object, wrapping corruption in CatalogError."""
        try:
            return self.registry.object_from_json(json.loads(payload))
        except (ValueError, KeyError, TypeError) as exc:
            raise CatalogError(
                f"corrupted summary state for instance {instance_name!r} on "
                f"{table_name}[{row_id}]: {exc}"
            ) from exc

    def delete_object(
        self, instance_name: str, table_name: str, row_id: int
    ) -> None:
        """Drop one row's persisted summary object (no-op when absent)."""
        shard = self._db.backend.shard_of(table_name, row_id)
        with self._db.transaction(shard) as connection:
            connection.execute(
                f"""
                DELETE FROM {_STATE_TABLE}
                WHERE instance_name = ? AND table_name = ? AND row_id = ?
                """,
                (instance_name, table_name, row_id),
            )
        self._cache_invalidate((instance_name, table_name, row_id))

    def iter_objects(
        self, instance_name: str, table_name: str
    ) -> Iterator[tuple[int, SummaryObject]]:
        """Iterate ``(row_id, object)`` for one instance/table pair."""
        rows: list[tuple] = []
        for shard in range(self._db.shard_count):
            rows.extend(
                self._db.fetch_all(
                    f"""
                    SELECT row_id, object FROM {_STATE_TABLE}
                    WHERE instance_name = ? AND table_name = ?
                    ORDER BY row_id
                    """,
                    (instance_name, table_name),
                    shard=shard,
                )
            )
        rows.sort(key=lambda row: row[0])
        for row_id, object_json in rows:
            yield row_id, self._deserialize_object(
                object_json, instance_name, table_name, row_id
            )

    def summary_bytes(self, table_name: str | None = None) -> int:
        """Total serialized size of stored summary objects."""
        total = 0
        for shard in range(self._db.shard_count):
            if table_name is None:
                row = self._db.fetch_one(
                    f"SELECT COALESCE(SUM(LENGTH(object)), 0) "
                    f"FROM {_STATE_TABLE}",
                    shard=shard,
                )
            else:
                row = self._db.fetch_one(
                    f"""
                    SELECT COALESCE(SUM(LENGTH(object)), 0) FROM {_STATE_TABLE}
                    WHERE table_name = ?
                    """,
                    (table_name,),
                    shard=shard,
                )
            assert row is not None
            total += row[0]
        return total

    def object_statistics(self, table_name: str) -> dict[str, tuple[int, int]]:
        """Per-instance ``(object_count, total_bytes)`` for one table.

        Feeds the planner's catalog statistics: hydration cost scales
        with how many summary objects a scan must load and how large
        their serialized forms are.  Counts and byte totals both sum
        cleanly across shards (each stored object lives on exactly one
        shard).
        """
        merged: dict[str, tuple[int, int]] = {}
        for shard in range(self._db.shard_count):
            rows = self._db.fetch_all(
                f"""
                SELECT instance_name, COUNT(*),
                       COALESCE(SUM(LENGTH(object)), 0)
                FROM {_STATE_TABLE}
                WHERE table_name = ? GROUP BY instance_name
                """,
                (table_name,),
                shard=shard,
            )
            for instance_name, count, total in rows:
                have = merged.get(instance_name, (0, 0))
                merged[instance_name] = (have[0] + count, have[1] + total)
        return merged
