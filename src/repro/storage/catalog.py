"""The summary catalog.

Persists levels 2 and 3 of the summarization hierarchy:

* **instance definitions** — name, type, and the type-specific
  configuration (labels, trained model, thresholds, invariant flags);
* **links** — the many-to-many relation between instances and user tables
  (Figure 4): linking instance *I* to table *R* means every *R* tuple's
  annotations are summarized by *I*;
* **summary state** — the per-(instance, table, row) summary objects,
  stored as JSON and rebuilt through the type registry.

Live instances are cached after first resolution, so the trained model is
deserialized once per session.
"""

from __future__ import annotations

import json
from collections.abc import Iterator

from repro.errors import (
    CatalogError,
    DuplicateInstanceError,
    UnknownInstanceError,
)
from repro.storage.database import Database
from repro.storage.schema import SYSTEM_PREFIX
from repro.summaries.base import SummaryInstance, SummaryObject
from repro.summaries.registry import SummaryTypeRegistry, default_registry

_INSTANCES_TABLE = f"{SYSTEM_PREFIX}instances"
_LINKS_TABLE = f"{SYSTEM_PREFIX}links"
_STATE_TABLE = f"{SYSTEM_PREFIX}summary_state"


class SummaryCatalog:
    """Persistent catalog of summary instances, links, and state."""

    def __init__(
        self,
        database: Database,
        registry: SummaryTypeRegistry | None = None,
    ) -> None:
        self._db = database
        self.registry = registry or default_registry()
        self._live_instances: dict[str, SummaryInstance] = {}
        connection = database.connection
        with connection:
            connection.execute(
                f"""
                CREATE TABLE IF NOT EXISTS {_INSTANCES_TABLE} (
                    instance_name TEXT PRIMARY KEY,
                    type_name TEXT NOT NULL,
                    config TEXT NOT NULL
                )
                """
            )
            connection.execute(
                f"""
                CREATE TABLE IF NOT EXISTS {_LINKS_TABLE} (
                    instance_name TEXT NOT NULL,
                    table_name TEXT NOT NULL,
                    PRIMARY KEY (instance_name, table_name)
                )
                """
            )
            connection.execute(
                f"""
                CREATE TABLE IF NOT EXISTS {_STATE_TABLE} (
                    instance_name TEXT NOT NULL,
                    table_name TEXT NOT NULL,
                    row_id INTEGER NOT NULL,
                    object TEXT NOT NULL,
                    PRIMARY KEY (instance_name, table_name, row_id)
                )
                """
            )

    # -- instance definitions -----------------------------------------

    def define_instance(
        self, type_name: str, instance_name: str, config: dict
    ) -> SummaryInstance:
        """Create, persist, and return a new summary instance."""
        if self.has_instance(instance_name):
            raise DuplicateInstanceError(instance_name)
        instance = self.registry.create_instance(type_name, instance_name, config)
        with self._db.connection:
            self._db.connection.execute(
                f"""
                INSERT INTO {_INSTANCES_TABLE}
                    (instance_name, type_name, config) VALUES (?, ?, ?)
                """,
                (instance_name, type_name, json.dumps(instance.config())),
            )
        self._live_instances[instance_name] = instance
        return instance

    def save_instance_config(self, instance_name: str) -> None:
        """Re-persist a live instance's configuration.

        Call after mutating instance state that must survive restarts —
        typically after training a classifier's model.
        """
        instance = self.get_instance(instance_name)
        with self._db.connection:
            self._db.connection.execute(
                f"UPDATE {_INSTANCES_TABLE} SET config = ? WHERE instance_name = ?",
                (json.dumps(instance.config()), instance_name),
            )

    def drop_instance(self, instance_name: str) -> None:
        """Remove an instance, its links, and all its summary state."""
        if not self.has_instance(instance_name):
            raise UnknownInstanceError(instance_name)
        with self._db.connection:
            self._db.connection.execute(
                f"DELETE FROM {_STATE_TABLE} WHERE instance_name = ?",
                (instance_name,),
            )
            self._db.connection.execute(
                f"DELETE FROM {_LINKS_TABLE} WHERE instance_name = ?",
                (instance_name,),
            )
            self._db.connection.execute(
                f"DELETE FROM {_INSTANCES_TABLE} WHERE instance_name = ?",
                (instance_name,),
            )
        self._live_instances.pop(instance_name, None)

    def has_instance(self, instance_name: str) -> bool:
        """True when the instance is defined."""
        if instance_name in self._live_instances:
            return True
        row = self._db.connection.execute(
            f"SELECT 1 FROM {_INSTANCES_TABLE} WHERE instance_name = ?",
            (instance_name,),
        ).fetchone()
        return row is not None

    def get_instance(self, instance_name: str) -> SummaryInstance:
        """Resolve a live instance, deserializing it on first access."""
        if instance_name in self._live_instances:
            return self._live_instances[instance_name]
        row = self._db.connection.execute(
            f"""
            SELECT type_name, config FROM {_INSTANCES_TABLE}
            WHERE instance_name = ?
            """,
            (instance_name,),
        ).fetchone()
        if row is None:
            raise UnknownInstanceError(instance_name)
        type_name, config_json = row
        try:
            instance = self.registry.create_instance(
                type_name, instance_name, json.loads(config_json)
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise CatalogError(
                f"corrupted configuration for instance {instance_name!r} "
                f"(type {type_name!r}): {exc}"
            ) from exc
        self._live_instances[instance_name] = instance
        return instance

    def instance_names(self) -> list[str]:
        """All defined instance names, sorted."""
        rows = self._db.connection.execute(
            f"SELECT instance_name FROM {_INSTANCES_TABLE} ORDER BY instance_name"
        ).fetchall()
        return [row[0] for row in rows]

    # -- links ----------------------------------------------------------

    def link(self, instance_name: str, table_name: str) -> None:
        """Link an instance to a user table (idempotent)."""
        if not self.has_instance(instance_name):
            raise UnknownInstanceError(instance_name)
        self._db.schema(table_name)  # raises for unknown tables
        with self._db.connection:
            self._db.connection.execute(
                f"""
                INSERT OR IGNORE INTO {_LINKS_TABLE}
                    (instance_name, table_name) VALUES (?, ?)
                """,
                (instance_name, table_name),
            )

    def unlink(self, instance_name: str, table_name: str) -> None:
        """Remove a link and the instance's state for that table."""
        if not self.has_instance(instance_name):
            raise UnknownInstanceError(instance_name)
        with self._db.connection:
            self._db.connection.execute(
                f"""
                DELETE FROM {_LINKS_TABLE}
                WHERE instance_name = ? AND table_name = ?
                """,
                (instance_name, table_name),
            )
            self._db.connection.execute(
                f"""
                DELETE FROM {_STATE_TABLE}
                WHERE instance_name = ? AND table_name = ?
                """,
                (instance_name, table_name),
            )

    def is_linked(self, instance_name: str, table_name: str) -> bool:
        """True when the instance is linked to the table."""
        row = self._db.connection.execute(
            f"""
            SELECT 1 FROM {_LINKS_TABLE}
            WHERE instance_name = ? AND table_name = ?
            """,
            (instance_name, table_name),
        ).fetchone()
        return row is not None

    def instances_for_table(self, table_name: str) -> list[SummaryInstance]:
        """Live instances linked to ``table_name``, name-sorted."""
        rows = self._db.connection.execute(
            f"""
            SELECT instance_name FROM {_LINKS_TABLE}
            WHERE table_name = ? ORDER BY instance_name
            """,
            (table_name,),
        ).fetchall()
        return [self.get_instance(row[0]) for row in rows]

    def links(self) -> list[tuple[str, str]]:
        """All ``(instance, table)`` links, sorted."""
        rows = self._db.connection.execute(
            f"""
            SELECT instance_name, table_name FROM {_LINKS_TABLE}
            ORDER BY instance_name, table_name
            """
        ).fetchall()
        return [(row[0], row[1]) for row in rows]

    # -- summary state ------------------------------------------------

    def save_object(
        self, instance_name: str, table_name: str, row_id: int, obj: SummaryObject
    ) -> None:
        """Persist the summary object for one base row (upsert)."""
        if obj.instance_name != instance_name:
            raise CatalogError(
                f"object belongs to instance {obj.instance_name!r}, "
                f"not {instance_name!r}"
            )
        with self._db.connection:
            self._db.connection.execute(
                f"""
                INSERT INTO {_STATE_TABLE}
                    (instance_name, table_name, row_id, object)
                VALUES (?, ?, ?, ?)
                ON CONFLICT (instance_name, table_name, row_id)
                DO UPDATE SET object = excluded.object
                """,
                (instance_name, table_name, row_id, json.dumps(obj.to_json())),
            )

    def load_object(
        self, instance_name: str, table_name: str, row_id: int
    ) -> SummaryObject | None:
        """Load one row's summary object, or None when never summarized."""
        row = self._db.connection.execute(
            f"""
            SELECT object FROM {_STATE_TABLE}
            WHERE instance_name = ? AND table_name = ? AND row_id = ?
            """,
            (instance_name, table_name, row_id),
        ).fetchone()
        if row is None:
            return None
        return self._deserialize_object(row[0], instance_name, table_name, row_id)

    def _deserialize_object(
        self, payload: str, instance_name: str, table_name: str, row_id: int
    ) -> SummaryObject:
        """Rebuild a stored object, wrapping corruption in CatalogError."""
        try:
            return self.registry.object_from_json(json.loads(payload))
        except (ValueError, KeyError, TypeError) as exc:
            raise CatalogError(
                f"corrupted summary state for instance {instance_name!r} on "
                f"{table_name}[{row_id}]: {exc}"
            ) from exc

    def delete_object(
        self, instance_name: str, table_name: str, row_id: int
    ) -> None:
        """Drop one row's persisted summary object (no-op when absent)."""
        with self._db.connection:
            self._db.connection.execute(
                f"""
                DELETE FROM {_STATE_TABLE}
                WHERE instance_name = ? AND table_name = ? AND row_id = ?
                """,
                (instance_name, table_name, row_id),
            )

    def iter_objects(
        self, instance_name: str, table_name: str
    ) -> Iterator[tuple[int, SummaryObject]]:
        """Iterate ``(row_id, object)`` for one instance/table pair."""
        cursor = self._db.connection.execute(
            f"""
            SELECT row_id, object FROM {_STATE_TABLE}
            WHERE instance_name = ? AND table_name = ?
            ORDER BY row_id
            """,
            (instance_name, table_name),
        )
        for row_id, object_json in cursor:
            yield row_id, self._deserialize_object(
                object_json, instance_name, table_name, row_id
            )

    def summary_bytes(self, table_name: str | None = None) -> int:
        """Total serialized size of stored summary objects."""
        if table_name is None:
            (total,) = self._db.connection.execute(
                f"SELECT COALESCE(SUM(LENGTH(object)), 0) FROM {_STATE_TABLE}"
            ).fetchone()
        else:
            (total,) = self._db.connection.execute(
                f"""
                SELECT COALESCE(SUM(LENGTH(object)), 0) FROM {_STATE_TABLE}
                WHERE table_name = ?
                """,
                (table_name,),
            ).fetchone()
        return total
