"""Storage backends: the connection topology behind the Database facade.

A backend owns everything about *where* bytes live and *which lock and
connection* a statement runs on; :class:`~repro.storage.database.Database`
and the stores above it own *what* is stored.  The split is the
:class:`StorageBackend` protocol:

* **shards** — a backend exposes ``shard_count`` numbered shards.  Shard
  ``0`` (:data:`META_SHARD`) always carries the engine metadata (the
  schema registry, summary instance definitions and links, the id
  sequence); data tables exist on every shard.
* **routing** — :meth:`~StorageBackend.shard_of` maps a ``(table, row)``
  cell to its home shard, :meth:`~StorageBackend.shard_of_annotation`
  maps an annotation id.  Routing is a pure, stable function of its
  arguments (it addresses *persisted* placement, so it must never
  depend on process state such as ``hash()`` randomization).
* **checkout** — :meth:`~StorageBackend.transaction` /
  :meth:`~StorageBackend.read` hand out a connection of one shard's
  pool, with the same locking rules as the single-file engine: one
  serialized writer and WAL-pooled readers *per shard*.

:class:`SingleFileBackend` is the compatibility baseline: exactly the
pre-sharding topology (one file, one writer, one
:class:`~repro.storage.pool.ConnectionPool`) wearing the protocol.  The
hash-partitioned fan-out lives in
:class:`~repro.storage.sharded.ShardedBackend`.
"""

from __future__ import annotations

import contextlib
import sqlite3
from collections.abc import Callable, Iterator, Sequence
from typing import Protocol, runtime_checkable

from repro.storage.pool import ConnectionPool, connect

#: The shard that carries engine metadata (schema registry, instance
#: definitions, links, id sequences).  Also a regular data shard.
META_SHARD = 0

#: Negative values mean KiB of page cache (SQLite convention); 16 MiB.
DEFAULT_CACHE_KIB = 16 * 1024

#: Annotation ids are placed in runs of this many consecutive ids per
#: shard (``shard = (id // ANNOTATION_BLOCK) % shards``), so a bulk
#: batch of contiguous ids commits to one shard — write affinity —
#: while successive blocks still round-robin the load.  Sized to match
#: the id-run grant (one granted run = exactly one block = one shard).
#: Part of the persisted placement: changing it strands existing
#: sharded stores.
ANNOTATION_BLOCK = 128


def is_memory_path(path: str) -> bool:
    """True when ``path`` names a RAM-resident SQLite database."""
    return path == ":memory:" or path == "" or "mode=memory" in path


def shard_path(path: str, shard: int) -> str:
    """The database file of ``shard``: shard 0 is ``path`` itself, so a
    ``shards=1`` layout is indistinguishable from a plain single file."""
    return path if shard == 0 else f"{path}.shard{shard}"


def tune_writer(connection: sqlite3.Connection, in_memory: bool) -> None:
    """Throughput pragmas; journal settings only for file-backed DBs.

    WAL lets readers proceed during writes and batches fsyncs;
    ``synchronous=NORMAL`` is the documented safe pairing with WAL.
    Both are meaningless (WAL: unsupported) for in-memory databases,
    which the tests and benchmarks use, so those are skipped there.
    """
    connection.execute("PRAGMA foreign_keys = ON")
    connection.execute(f"PRAGMA cache_size = -{DEFAULT_CACHE_KIB}")
    connection.execute("PRAGMA temp_store = MEMORY")
    if not in_memory:
        connection.execute("PRAGMA journal_mode = WAL")
        connection.execute("PRAGMA synchronous = NORMAL")


def tune_reader(connection: sqlite3.Connection) -> None:
    """Tuning for pooled read-only connections (no journal changes — the
    journal mode is a property of the database file)."""
    connection.execute(f"PRAGMA cache_size = -{DEFAULT_CACHE_KIB}")
    connection.execute("PRAGMA temp_store = MEMORY")


@runtime_checkable
class StorageBackend(Protocol):
    """The connection-topology contract the storage stack codes against."""

    path: str

    @property
    def shard_count(self) -> int:
        """How many shards the backend fans data out over (>= 1)."""
        ...

    @property
    def is_in_memory(self) -> bool:
        """True when the database lives in RAM (no durable file)."""
        ...

    @property
    def serialized_reads(self) -> bool:
        """True when reads share the writer connection (in-memory DBs)."""
        ...

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        ...

    def shard_of(self, table: str, row_id: int) -> int:
        """Home shard of a base row (and everything co-located with it)."""
        ...

    def shard_of_annotation(self, annotation_id: int) -> int:
        """Home shard of an annotation body and its attachment edges."""
        ...

    def writer(self, shard: int = META_SHARD) -> sqlite3.Connection:
        """One shard's raw writer connection (single-threaded callers)."""
        ...

    def pool(self, shard: int = META_SHARD) -> ConnectionPool:
        """One shard's connection pool (monitoring and tests)."""
        ...

    def transaction(
        self, shard: int = META_SHARD
    ) -> contextlib.AbstractContextManager[sqlite3.Connection]:
        """One shard's writer, write-locked, in a transaction."""
        ...

    def read(
        self, shard: int = META_SHARD
    ) -> contextlib.AbstractContextManager[sqlite3.Connection]:
        """A connection of one shard for read-only statements."""
        ...

    def run_write_fanout(
        self, thunks: Sequence[Callable[[], object]]
    ) -> list[object]:
        """Run one logical write's per-shard sub-writes; sharded
        backends overlap their commit waits, single-file runs inline."""
        ...

    def set_trace(self, callback: Callable[[str], None] | None) -> None:
        """Install (or clear) a trace callback on every connection of
        every shard."""
        ...

    def counters(self) -> dict[str, dict[str, int]]:
        """Per-shard pool checkout counters, keyed by shard index."""
        ...

    def close(self) -> None:
        """Close every connection of every shard (idempotent)."""
        ...


class SingleFileBackend:
    """The compatibility baseline: one file, one writer, one pool.

    Byte-identical to the pre-backend engine — the writer is opened and
    tuned exactly as before, and every checkout routes through the same
    :class:`~repro.storage.pool.ConnectionPool`.  ``shard_of`` maps
    everything to shard 0.
    """

    def __init__(self, path: str = ":memory:", serialize_reads: bool = False
                 ) -> None:
        self.path = path
        # check_same_thread=False (the pool factory's default): the
        # writer is shared across threads but every use is serialized
        # behind the pool's write lock (and, for in-memory databases,
        # reads take the same lock).
        self._writer = connect(path)
        tune_writer(self._writer, self.is_in_memory)
        self._pool = ConnectionPool(
            path,
            in_memory=self.is_in_memory,
            writer=self._writer,
            configure_reader=tune_reader,
            serialize_reads=serialize_reads,
        )

    # -- introspection --------------------------------------------------

    @property
    def shard_count(self) -> int:
        return 1

    @property
    def is_in_memory(self) -> bool:
        return is_memory_path(self.path)

    @property
    def serialized_reads(self) -> bool:
        return self._pool.serialized_reads

    @property
    def closed(self) -> bool:
        return self._pool.closed

    # -- routing --------------------------------------------------------

    def shard_of(self, table: str, row_id: int) -> int:
        return 0

    def shard_of_annotation(self, annotation_id: int) -> int:
        return 0

    # -- checkout -------------------------------------------------------

    def writer(self, shard: int = META_SHARD) -> sqlite3.Connection:
        return self._writer

    def pool(self, shard: int = META_SHARD) -> ConnectionPool:
        return self._pool

    @contextlib.contextmanager
    def transaction(
        self, shard: int = META_SHARD
    ) -> Iterator[sqlite3.Connection]:
        with self._pool.write() as connection:
            with connection:
                yield connection

    @contextlib.contextmanager
    def read(self, shard: int = META_SHARD) -> Iterator[sqlite3.Connection]:
        with self._pool.read() as connection:
            yield connection

    def run_write_fanout(
        self, thunks: Sequence[Callable[[], object]]
    ) -> list[object]:
        """Inline, in order — there is only one writer lock to wait on."""
        return [thunk() for thunk in thunks]

    # -- tracing, counters, teardown ------------------------------------

    def set_trace(self, callback: Callable[[str], None] | None) -> None:
        self._pool.set_trace(callback)

    def counters(self) -> dict[str, dict[str, int]]:
        return {"0": self._pool.stats()}

    def close(self) -> None:
        self._pool.close()
