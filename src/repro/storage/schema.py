"""Table schema descriptors.

The engine is dynamically typed (SQLite stores whatever Python hands it),
so a schema is just an ordered list of column names plus validation
helpers.  Column names must be valid identifiers because they appear
unquoted in the small SQL dialect.
"""

from __future__ import annotations

import re
from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import SchemaError, UnknownColumnError

_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

#: Names reserved for the engine's own bookkeeping tables.
SYSTEM_PREFIX = "_in_"


def validate_identifier(name: str, what: str = "identifier") -> str:
    """Return ``name`` if it is a valid SQL identifier, else raise."""
    if not _IDENTIFIER_RE.fullmatch(name):
        raise SchemaError(f"invalid {what}: {name!r}")
    return name


@dataclass(frozen=True, slots=True)
class TableSchema:
    """An ordered, validated column list for one base table."""

    name: str
    columns: tuple[str, ...]

    def __post_init__(self) -> None:
        validate_identifier(self.name, "table name")
        if self.name.startswith(SYSTEM_PREFIX):
            raise SchemaError(
                f"table name {self.name!r} collides with the system prefix "
                f"{SYSTEM_PREFIX!r}"
            )
        if not self.columns:
            raise SchemaError(f"table {self.name!r} has no columns")
        seen: set[str] = set()
        for column in self.columns:
            validate_identifier(column, "column name")
            if column in seen:
                raise SchemaError(
                    f"duplicate column {column!r} in table {self.name!r}"
                )
            seen.add(column)

    def column_index(self, column: str) -> int:
        """Position of ``column``, raising for unknown names."""
        try:
            return self.columns.index(column)
        except ValueError:
            raise UnknownColumnError(self.name, column) from None

    def has_column(self, column: str) -> bool:
        """True when ``column`` belongs to this table."""
        return column in self.columns

    def check_values(self, values: Sequence[object]) -> None:
        """Validate a row's arity against the schema."""
        if len(values) != len(self.columns):
            raise SchemaError(
                f"table {self.name!r} expects {len(self.columns)} values, "
                f"got {len(values)}"
            )
